//! Overload protection for the DSSP proxy: deadline-aware admission,
//! a per-home-link circuit breaker, and brownout mode.
//!
//! The paper's scalability story ends at the knee — past it, unbounded
//! queues turn every response uselessly late while still burning home
//! server capacity on answers nobody will wait for. This module sheds
//! early instead:
//!
//! 1. **Admission** ([`AdmissionController`]) — a request whose
//!    *projected* completion (current queue wait + a service estimate)
//!    already violates its deadline is rejected at arrival, before it
//!    costs anything. Shedding at the door keeps goodput flat where
//!    accept-everything collapses.
//! 2. **Circuit breaker** ([`CircuitBreaker`]) — consecutive
//!    home-server failures trip the breaker `Closed → Open`; while open
//!    every home trip is refused locally (no queue pressure on a link
//!    that is already down, no retry storm). After `open_micros` of sim
//!    time the breaker admits exactly one `HalfOpen` probe: success
//!    closes it, failure re-opens it for another window.
//! 3. **Brownout** ([`BrownoutController`]) — while the breaker is open
//!    or the recent shed ratio crosses a threshold, within-lease cache
//!    hits are served *degraded* (reusing the PR 2 degraded-serve path)
//!    and misses fast-reject with [`Overloaded`]. Leases still bound
//!    staleness — brownout never serves beyond-lease data, which the
//!    chaos oracle enforces end to end.
//!
//! Everything runs on the simulated clock passed by the caller, so runs
//! replay bit-identically per seed.

/// Why a request was shed. Stable codes for trace events and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Deadline-aware admission: projected completion past the deadline.
    Admission,
    /// The home-link circuit breaker was open.
    BreakerOpen,
    /// Brownout mode fast-rejected a cache miss.
    Brownout,
    /// A bounded queue (netsim `try_serve`/`try_send`) turned it away.
    QueueFull,
}

impl ShedReason {
    pub fn code(self) -> u8 {
        match self {
            ShedReason::Admission => 0,
            ShedReason::BreakerOpen => 1,
            ShedReason::Brownout => 2,
            ShedReason::QueueFull => 3,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ShedReason::Admission => "admission",
            ShedReason::BreakerOpen => "breaker_open",
            ShedReason::Brownout => "brownout",
            ShedReason::QueueFull => "queue_full",
        }
    }
}

/// A request turned away by deadline-aware admission: the projection
/// that condemned it. Mirrors netsim's `Rejected` for bounded queues,
/// but lives here because `scs-dssp` does not depend on `scs-netsim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// When the request was offered (µs, sim time).
    pub now_micros: u64,
    /// Projected completion: `now + queue wait + service estimate`.
    pub projected_completion_micros: u64,
    /// The absolute deadline it would have missed.
    pub deadline_micros: u64,
    /// Jobs queued ahead of it at the bottleneck.
    pub queue_depth: usize,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission rejected: projected completion {}us past deadline {}us ({} queued)",
            self.projected_completion_micros, self.deadline_micros, self.queue_depth
        )
    }
}

impl std::error::Error for Rejected {}

/// Why the overload layer refused to serve a request. Chains to the
/// underlying [`Rejected`] via `std::error::Error::source`, matching the
/// `NodeError → StorageError` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overloaded {
    /// Deadline-aware admission shed it at arrival.
    Admission(Rejected),
    /// The circuit breaker is open; retry after it may have half-opened.
    BreakerOpen { retry_after_micros: u64 },
    /// Brownout mode fast-rejected a cache miss.
    Brownout,
    /// A bounded queue refused it (depth/wait cap exceeded).
    QueueFull,
}

impl Overloaded {
    pub fn reason(&self) -> ShedReason {
        match self {
            Overloaded::Admission(_) => ShedReason::Admission,
            Overloaded::BreakerOpen { .. } => ShedReason::BreakerOpen,
            Overloaded::Brownout => ShedReason::Brownout,
            Overloaded::QueueFull => ShedReason::QueueFull,
        }
    }
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Overloaded::Admission(r) => write!(f, "overloaded: {r}"),
            Overloaded::BreakerOpen { retry_after_micros } => {
                write!(
                    f,
                    "overloaded: breaker open, retry after {retry_after_micros}us"
                )
            }
            Overloaded::Brownout => write!(f, "overloaded: brownout, miss fast-rejected"),
            Overloaded::QueueFull => write!(f, "overloaded: bounded queue full"),
        }
    }
}

impl std::error::Error for Overloaded {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Overloaded::Admission(r) => Some(r),
            Overloaded::BreakerOpen { .. } | Overloaded::Brownout | Overloaded::QueueFull => None,
        }
    }
}

/// A snapshot of the bottleneck queue ahead of a candidate request.
/// The proxy itself is queue-less in the simulation (queueing lives in
/// the netsim service centers), so the caller bridges the two worlds by
/// passing what the home-side queue looks like right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueState {
    /// Delay (µs) a job arriving now would wait before service starts.
    pub projected_wait_micros: u64,
    /// Jobs in system (queued + in service).
    pub depth: usize,
}

/// Deadline-aware admission parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Relative deadline (µs) a request must meet to count as goodput.
    pub deadline_micros: u64,
    /// Estimated service demand (µs) for a home trip, added to the
    /// observed queue wait when projecting completion.
    pub service_estimate_micros: u64,
    /// Hard cap on bottleneck queue depth (`None` = wait-based only).
    pub max_queue_depth: Option<usize>,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            deadline_micros: 2_000_000, // the paper's 2 s SLA bound
            service_estimate_micros: 10_000,
            max_queue_depth: None,
        }
    }
}

/// Stateless deadline-aware admission check: shed a request at arrival
/// when, given the queue it would join, it could not finish in time
/// anyway.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionController {
    pub config: AdmissionConfig,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        AdmissionController { config }
    }

    /// Admit or reject a request offered at `now` against `queue`.
    pub fn admit(&self, now_micros: u64, queue: &QueueState) -> Result<(), Rejected> {
        let projected = now_micros
            .saturating_add(queue.projected_wait_micros)
            .saturating_add(self.config.service_estimate_micros);
        let deadline = now_micros.saturating_add(self.config.deadline_micros);
        let too_deep = self
            .config
            .max_queue_depth
            .is_some_and(|cap| queue.depth > cap);
        if projected > deadline || too_deep {
            return Err(Rejected {
                now_micros,
                projected_completion_micros: projected,
                deadline_micros: deadline,
                queue_depth: queue.depth,
            });
        }
        Ok(())
    }
}

/// Circuit-breaker state. Codes are stable for trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Tripped: all home trips refused until the probe interval elapses.
    Open,
    /// Probe window: exactly one request may try the home server.
    HalfOpen,
}

impl BreakerState {
    pub fn code(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip `Closed → Open`.
    pub failure_threshold: u32,
    /// Sim time (µs) the breaker stays open before half-opening.
    pub open_micros: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_micros: 200_000,
        }
    }
}

/// A state transition, reported so the caller can count and trace it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    pub from: BreakerState,
    pub to: BreakerState,
    pub at_micros: u64,
}

/// Per-home-link circuit breaker on the simulated clock.
///
/// Protocol: call [`CircuitBreaker::poll`] with the current sim time to
/// apply any due `Open → HalfOpen` transition, then
/// [`CircuitBreaker::try_acquire`] before a home trip; report the trip's
/// outcome with [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`].
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_micros: u64,
    probe_in_flight: bool,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_micros: 0,
            probe_in_flight: false,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// When an open breaker will admit its probe (µs, sim time).
    pub fn probe_due_micros(&self) -> u64 {
        self.opened_at_micros
            .saturating_add(self.config.open_micros)
    }

    /// Applies any time-based transition (`Open → HalfOpen` once the
    /// probe interval has elapsed); returns it if one fired.
    pub fn poll(&mut self, now_micros: u64) -> Option<BreakerTransition> {
        if self.state == BreakerState::Open && now_micros >= self.probe_due_micros() {
            self.probe_in_flight = false;
            return Some(self.transition(BreakerState::HalfOpen, now_micros));
        }
        None
    }

    /// Whether a home trip may proceed right now. In `HalfOpen` this
    /// admits exactly one probe; concurrent callers are refused until
    /// the probe reports back.
    pub fn try_acquire(&mut self, now_micros: u64) -> bool {
        self.poll(now_micros);
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Report a successful home trip. Closes a half-open breaker.
    pub fn on_success(&mut self, now_micros: u64) -> Option<BreakerTransition> {
        self.consecutive_failures = 0;
        match self.state {
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                Some(self.transition(BreakerState::Closed, now_micros))
            }
            _ => None,
        }
    }

    /// Report a failed (or exhausted-retries) home trip. Trips a closed
    /// breaker at the threshold; re-opens a half-open one immediately.
    pub fn on_failure(&mut self, now_micros: u64) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.opened_at_micros = now_micros;
                    return Some(self.transition(BreakerState::Open, now_micros));
                }
                None
            }
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                self.opened_at_micros = now_micros;
                Some(self.transition(BreakerState::Open, now_micros))
            }
            BreakerState::Open => None,
        }
    }

    fn transition(&mut self, to: BreakerState, at_micros: u64) -> BreakerTransition {
        let from = self.state;
        self.state = to;
        if to == BreakerState::Closed || to == BreakerState::Open {
            self.consecutive_failures = 0;
        }
        BreakerTransition {
            from,
            to,
            at_micros,
        }
    }
}

/// Brownout tuning: the shed-ratio trigger evaluated over fixed windows
/// of sim time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Window width (µs) over which the shed ratio is measured.
    pub window_micros: u64,
    /// Shed ratio (shed / offered in the previous window) at or above
    /// which brownout engages even with the breaker closed.
    pub shed_ratio_threshold: f64,
    /// Minimum offered requests in the window before the ratio counts
    /// (guards tiny-sample flapping).
    pub min_offered: u64,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            window_micros: 100_000,
            shed_ratio_threshold: 0.5,
            min_offered: 10,
        }
    }
}

/// Tracks offered/shed counts per window and decides whether brownout
/// mode is active: it is whenever the breaker is open, or when the last
/// *completed* window shed at or above the threshold.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    config: BrownoutConfig,
    window_start_micros: u64,
    offered: u64,
    shed: u64,
    last_window_hot: bool,
}

impl BrownoutController {
    pub fn new(config: BrownoutConfig) -> BrownoutController {
        BrownoutController {
            config,
            window_start_micros: 0,
            offered: 0,
            shed: 0,
            last_window_hot: false,
        }
    }

    /// Record one offered request and whether it was shed.
    pub fn record(&mut self, now_micros: u64, shed: bool) {
        self.roll(now_micros);
        self.offered += 1;
        if shed {
            self.shed += 1;
        }
    }

    /// Whether brownout is active at `now` given the breaker's state.
    pub fn active(&mut self, now_micros: u64, breaker_open: bool) -> bool {
        self.roll(now_micros);
        breaker_open || self.last_window_hot
    }

    fn roll(&mut self, now_micros: u64) {
        let width = self.config.window_micros.max(1);
        if now_micros < self.window_start_micros + width {
            return;
        }
        // Close out the elapsed window; windows with too few samples (or
        // skipped entirely while idle) read as cool.
        let elapsed_one = now_micros < self.window_start_micros + 2 * width;
        self.last_window_hot = elapsed_one
            && self.offered >= self.config.min_offered
            && (self.shed as f64) >= self.config.shed_ratio_threshold * (self.offered as f64);
        self.window_start_micros = now_micros - (now_micros % width);
        self.offered = 0;
        self.shed = 0;
    }
}

/// The full overload-protection configuration for a proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverloadConfig {
    pub admission: AdmissionConfig,
    pub breaker: BreakerConfig,
    pub brownout: BrownoutConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_rejects_doomed_requests() {
        let a = AdmissionController::new(AdmissionConfig {
            deadline_micros: 100,
            service_estimate_micros: 30,
            max_queue_depth: None,
        });
        let ok = QueueState {
            projected_wait_micros: 70,
            depth: 3,
        };
        assert!(a.admit(1_000, &ok).is_ok(), "70 + 30 = 100 ≤ deadline");
        let late = QueueState {
            projected_wait_micros: 71,
            depth: 3,
        };
        let r = a.admit(1_000, &late).unwrap_err();
        assert_eq!(r.projected_completion_micros, 1_101);
        assert_eq!(r.deadline_micros, 1_100);
        assert_eq!(r.queue_depth, 3);
    }

    #[test]
    fn admission_depth_cap() {
        let a = AdmissionController::new(AdmissionConfig {
            deadline_micros: 1_000_000,
            service_estimate_micros: 0,
            max_queue_depth: Some(2),
        });
        let shallow = QueueState {
            projected_wait_micros: 0,
            depth: 2,
        };
        assert!(a.admit(0, &shallow).is_ok());
        let deep = QueueState {
            projected_wait_micros: 0,
            depth: 3,
        };
        assert!(a.admit(0, &deep).is_err());
    }

    #[test]
    fn breaker_trips_after_threshold() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_micros: 100,
        });
        assert!(b.try_acquire(0));
        assert!(b.on_failure(1).is_none());
        assert!(b.on_failure(2).is_none());
        let t = b.on_failure(3).expect("third consecutive failure trips");
        assert_eq!((t.from, t.to), (BreakerState::Closed, BreakerState::Open));
        assert!(!b.try_acquire(50), "open refuses");
        assert_eq!(b.probe_due_micros(), 103);
    }

    #[test]
    fn breaker_success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            open_micros: 100,
        });
        assert!(b.on_failure(1).is_none());
        assert!(b.on_success(2).is_none(), "streak broken");
        assert!(b.on_failure(3).is_none(), "back to 1 failure");
        assert!(b.on_failure(4).is_some(), "2 consecutive trips");
    }

    #[test]
    fn breaker_half_open_single_probe() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_micros: 100,
        });
        b.on_failure(10);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(109), "still open just before the interval");
        assert!(b.try_acquire(110), "probe admitted at the boundary");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.try_acquire(111), "second concurrent probe refused");
        let t = b.on_success(112).expect("probe success closes");
        assert_eq!(t.to, BreakerState::Closed);
        assert!(b.try_acquire(113));
    }

    #[test]
    fn breaker_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_micros: 100,
        });
        b.on_failure(0);
        assert!(b.try_acquire(100));
        let t = b.on_failure(105).expect("probe failure re-opens");
        assert_eq!((t.from, t.to), (BreakerState::HalfOpen, BreakerState::Open));
        assert!(!b.try_acquire(204), "new interval counts from the re-open");
        assert!(b.try_acquire(205));
    }

    #[test]
    fn brownout_engages_on_shed_ratio_and_breaker() {
        let mut bo = BrownoutController::new(BrownoutConfig {
            window_micros: 100,
            shed_ratio_threshold: 0.5,
            min_offered: 4,
        });
        // Window [0, 100): 4 offered, 3 shed — hot.
        for (t, shed) in [(10, true), (20, true), (30, false), (40, true)] {
            bo.record(t, shed);
        }
        assert!(!bo.active(50, false), "current window not yet closed");
        assert!(bo.active(150, false), "previous window ≥ 50% shed");
        // Window [100, 200): quiet; from 200 on brownout releases.
        assert!(!bo.active(250, false));
        // Breaker open forces brownout regardless of shed history.
        assert!(bo.active(260, true));
    }

    #[test]
    fn brownout_ignores_tiny_samples_and_stale_windows() {
        let mut bo = BrownoutController::new(BrownoutConfig {
            window_micros: 100,
            shed_ratio_threshold: 0.5,
            min_offered: 4,
        });
        bo.record(10, true);
        bo.record(20, true);
        assert!(
            !bo.active(150, false),
            "2 offered < min_offered: ratio does not count"
        );
        // A hot window followed by a long idle gap must not linger.
        for t in [210, 220, 230, 240] {
            bo.record(t, true);
        }
        assert!(!bo.active(1_000, false), "hot window is long past");
    }

    #[test]
    fn overloaded_error_chains_to_rejection() {
        use std::error::Error;
        let r = Rejected {
            now_micros: 5,
            projected_completion_micros: 40,
            deadline_micros: 25,
            queue_depth: 9,
        };
        let o = Overloaded::Admission(r);
        assert_eq!(o.reason(), ShedReason::Admission);
        let src = o.source().expect("admission chains to Rejected");
        assert!(src.to_string().contains("projected completion 40us"));
        assert!(Overloaded::Brownout.source().is_none());
        assert!(Overloaded::QueueFull.source().is_none());
        assert!(Overloaded::BreakerOpen {
            retry_after_micros: 7
        }
        .source()
        .is_none());
        assert!(o.to_string().contains("overloaded"));
    }

    #[test]
    fn shed_reason_codes_are_stable() {
        assert_eq!(ShedReason::Admission.code(), 0);
        assert_eq!(ShedReason::BreakerOpen.code(), 1);
        assert_eq!(ShedReason::Brownout.code(), 2);
        assert_eq!(ShedReason::QueueFull.code(), 3);
        assert_eq!(ShedReason::Brownout.name(), "brownout");
        assert_eq!(BreakerState::Closed.code(), 0);
        assert_eq!(BreakerState::Open.code(), 1);
        assert_eq!(BreakerState::HalfOpen.code(), 2);
        assert_eq!(BreakerState::HalfOpen.name(), "half_open");
    }
}
