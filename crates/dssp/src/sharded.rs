//! The sharded home tier: one [`HomeServer`] per partition, per-shard
//! epoched invalidation streams, and scatter-gather routing.
//!
//! A [`ShardedHome`] splits the master database across N shards under a
//! [`PartitionMap`] (see `scs-storage`): every shard carries the full
//! catalog but only its own rows, and every shard runs its own
//! [`HomeServer`] — its own WAL, its own monotone update epoch, and its
//! own invalidation stream, labeled with the shard id (stream id =
//! shard id) on the freshness plane. The single global epoch of the
//! classic home becomes a *vector* of per-shard epochs; replicas merge
//! the streams with one gap/duplicate cursor per shard (see
//! `Dssp::apply_invalidation_from`).
//!
//! Routing:
//!
//! * **updates** route to the owning shard ([`PartitionMap::shard_for_update`])
//!   and consume one epoch on that shard's stream only;
//! * **single-shard queries** (the common case — the §2.1 workloads
//!   restrict by key) route to the one owner and execute there;
//! * **cross-shard queries** scatter-gather: the participants' rows for
//!   the query's tables are gathered into a scratch database carrying
//!   the shared catalog, the plan executes once over the merged rows,
//!   and each participant is charged an equal share of the service
//!   time. Gathering whole tables is the simplest correct merge — join
//!   pushdown is a later optimization, and the home-bound cost model in
//!   `scs-netsim` prices the gather traffic explicitly.
//!
//! Referential integrity across shards: a shard database applies
//! statements *unchecked* (its FK parents may live elsewhere), so the
//! sharded home verifies every FK probe of an insert against the
//! parent's owner shard **before** routing ([`Database::fk_probes`] /
//! [`PartitionMap::shard_for_key`] / [`Database::fk_parent_exists`]). A
//! violation is refused up front and consumes **no epoch on any
//! stream** — exactly the classic home's "failed updates change
//! nothing" contract, lifted across shards.
//!
//! A 1-shard [`ShardedHome`] built over [`PartitionMap::single`] is
//! op-for-op equivalent to a classic [`HomeServer`]: every statement
//! routes to shard 0, stream 0, and the epoch sequence, WAL, and
//! invalidation messages are identical (pinned by a satellite test).

use crate::delivery::InvalidationMsg;
use crate::home::HomeServer;
use scs_sqlkit::{Query, Update};
use scs_storage::{Database, PartitionMap, QueryResult, StorageError, UpdateEffect};
use scs_telemetry::SharedProvenance;

/// One query answered by the sharded home tier.
#[derive(Debug, Clone)]
pub struct ShardedQueryResponse {
    pub result: QueryResult,
    /// Participating shards, ascending. One element = routed; more =
    /// scatter-gathered.
    pub shards: Vec<usize>,
}

/// One update applied by the sharded home tier.
#[derive(Debug, Clone)]
pub struct ShardedUpdateResponse {
    pub effect: UpdateEffect,
    /// The owning shard — also the invalidation stream `msg` rides on.
    pub shard: usize,
    /// Epoch-stamped for the owning shard's stream.
    pub msg: InvalidationMsg,
}

/// The home tier as a set of per-shard [`HomeServer`]s behind one
/// routing facade.
#[derive(Debug, Clone)]
pub struct ShardedHome {
    map: PartitionMap,
    shards: Vec<HomeServer>,
    /// Cross-shard scatter-gather queries executed (0 when every query
    /// pins one shard).
    scatter_queries: u64,
    /// Updates refused by the cross-shard FK handshake before routing.
    fk_rejects: u64,
}

impl ShardedHome {
    /// Partitions `db` under `map` and boots one [`HomeServer`] per
    /// shard, each labeled with its shard id as its invalidation-stream
    /// id. Panics if the map references a column the schema lacks
    /// (partitioning is configuration; a bad map is a bug, not input).
    pub fn new(db: Database, map: PartitionMap) -> ShardedHome {
        let shard_dbs = map
            .partition(&db)
            .expect("partition map must agree with the schema");
        let shards = shard_dbs
            .into_iter()
            .enumerate()
            .map(|(id, sdb)| {
                let mut h = HomeServer::new(sdb);
                h.set_stream_label(id as u64);
                h
            })
            .collect();
        ShardedHome {
            map,
            shards,
            scatter_queries: 0,
            fk_rejects: 0,
        }
    }

    /// The partition map routing this tier.
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's home server (read access).
    pub fn shard(&self, id: usize) -> &HomeServer {
        &self.shards[id]
    }

    /// One shard's home server (the chaos harnesses crash/recover
    /// individual shards through this).
    pub fn shard_mut(&mut self, id: usize) -> &mut HomeServer {
        &mut self.shards[id]
    }

    /// The per-shard epoch vector: `epochs()[s]` is stream `s`'s tip.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|h| h.epoch()).collect()
    }

    /// Stream `shard`'s current epoch.
    pub fn epoch_of(&self, shard: usize) -> u64 {
        self.shards[shard].epoch()
    }

    /// Cross-shard scatter-gather queries executed.
    pub fn scatter_queries(&self) -> u64 {
        self.scatter_queries
    }

    /// Updates refused by the cross-shard FK handshake (no epoch was
    /// consumed on any stream for these).
    pub fn fk_rejects(&self) -> u64 {
        self.fk_rejects
    }

    /// Attaches one shared freshness plane to every shard; each shard
    /// stamps commits on its own stream (stream id = shard id).
    pub fn attach_provenance(&mut self, prov: SharedProvenance) {
        for h in &mut self.shards {
            h.attach_provenance(prov.clone());
        }
    }

    /// Advances every shard's simulated clock.
    pub fn set_sim_time_micros(&mut self, micros: u64) {
        for h in &mut self.shards {
            h.set_sim_time_micros(micros);
        }
    }

    /// Executes a query: routed to the one owner shard when the
    /// partition map pins it, scatter-gathered across the participants
    /// otherwise.
    pub fn execute_query(&mut self, q: &Query) -> Result<ShardedQueryResponse, StorageError> {
        let shards = self.map.shards_for_query(q);
        if let [only] = shards[..] {
            let result = self.shards[only].execute_query(q)?;
            return Ok(ShardedQueryResponse { result, shards });
        }
        self.scatter_queries += 1;
        let start = std::time::Instant::now();
        let result = self.gathered_database(q)?.execute(q)?;
        let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let share = elapsed / shards.len().max(1) as u64;
        for &s in &shards {
            self.shards[s].note_scatter_query(share);
        }
        Ok(ShardedQueryResponse { result, shards })
    }

    /// Builds the scatter-gather scratch database: the shared catalog
    /// plus, for each table the query reads, that table's rows gathered
    /// from every shard owning a slice of it.
    fn gathered_database(&self, q: &Query) -> Result<Database, StorageError> {
        let mut scratch = Database::new();
        let catalog = self.shards[0].database();
        for name in catalog.table_names() {
            scratch.create_table(catalog.table(name)?.schema().clone())?;
        }
        let mut tables: Vec<&str> = q.template.from.iter().map(|t| t.table.as_str()).collect();
        tables.sort_unstable();
        tables.dedup();
        for name in tables {
            for owner in self.map.table_shards(name) {
                for (_, row) in self.shards[owner].database().table(name)?.iter() {
                    // `insert_row` skips FK checks (bulk-load path) —
                    // gathered rows may have parents in tables the
                    // query never reads.
                    scratch.insert_row(name, row.clone())?;
                }
            }
        }
        Ok(scratch)
    }

    /// Applies an update: cross-shard FK probes verify against the
    /// parents' owner shards first, then the statement routes to its
    /// owning shard, whose stream gains exactly one epoch. A refused
    /// update — FK violation or any storage error — consumes no epoch
    /// on any stream.
    pub fn execute_update(&mut self, u: &Update) -> Result<ShardedUpdateResponse, StorageError> {
        // Any shard can plan the statement (full catalog everywhere);
        // shard 0 stands in for routing decisions and probe extraction.
        let owner = self.map.shard_for_update(self.shards[0].database(), u)?;
        for (fk, key) in self.shards[0].database().fk_probes(u)? {
            let holders = match self
                .map
                .shard_for_key(&fk.parent_table, &fk.parent_columns, &key)
            {
                Some(s) => vec![s],
                None => self.map.table_shards(&fk.parent_table),
            };
            let mut found = false;
            for s in holders {
                if self.shards[s].database().fk_parent_exists(&fk, &key)? {
                    found = true;
                    break;
                }
            }
            if !found {
                self.fk_rejects += 1;
                return Err(StorageError::ForeignKeyViolation {
                    table: u.template.table().to_string(),
                    constraint: format!(
                        "({}) -> {}({})",
                        fk.columns.join(", "),
                        fk.parent_table,
                        fk.parent_columns.join(", ")
                    ),
                });
            }
        }
        let (effect, msg) = self.shards[owner].apply_update_unchecked(u)?;
        Ok(ShardedUpdateResponse {
            effect,
            shard: owner,
            msg,
        })
    }
}
