//! DSSP runtime statistics.

/// Counters accumulated by a [`crate::Dssp`] proxy. The hit rate and
/// invalidation volume are the mechanism behind the paper's Figure 8:
/// lower exposure ⇒ more invalidations ⇒ lower hit rate ⇒ more home-server
/// load ⇒ lower scalability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsspStats {
    pub queries: u64,
    pub hits: u64,
    pub misses: u64,
    pub updates: u64,
    /// Total cache entries invalidated across all updates.
    pub invalidations: u64,
    /// Total cache entries examined by invalidation passes.
    pub entries_scanned: u64,
}

impl DsspStats {
    /// Cache hit rate in `[0, 1]` (0 when no queries ran).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Mean entries invalidated per update (0 when no updates ran).
    pub fn invalidations_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.invalidations as f64 / self.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = DsspStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.invalidations_per_update(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = DsspStats {
            queries: 10,
            hits: 7,
            misses: 3,
            updates: 4,
            invalidations: 6,
            entries_scanned: 40,
        };
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.invalidations_per_update() - 1.5).abs() < 1e-12);
    }
}
