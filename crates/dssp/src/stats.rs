//! DSSP runtime statistics.

/// Counters accumulated by a [`crate::Dssp`] proxy. The hit rate and
/// invalidation volume are the mechanism behind the paper's Figure 8:
/// lower exposure ⇒ more invalidations ⇒ lower hit rate ⇒ more home-server
/// load ⇒ lower scalability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsspStats {
    pub queries: u64,
    pub hits: u64,
    pub misses: u64,
    pub updates: u64,
    /// Total cache entries invalidated across all updates.
    pub invalidations: u64,
    /// Total cache entries examined by invalidation passes.
    pub entries_scanned: u64,
    /// Cache entries dropped by capacity pressure (not by invalidation).
    pub evictions: u64,
}

impl DsspStats {
    /// Folds another proxy's counters into this one — the tenant
    /// roll-up operation. Associative and commutative.
    pub fn merge(&mut self, other: &DsspStats) {
        self.queries += other.queries;
        self.hits += other.hits;
        self.misses += other.misses;
        self.updates += other.updates;
        self.invalidations += other.invalidations;
        self.entries_scanned += other.entries_scanned;
        self.evictions += other.evictions;
    }

    /// Cache hit rate in `[0, 1]` (0 when no queries ran).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Mean entries invalidated per update (0 when no updates ran).
    pub fn invalidations_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.invalidations as f64 / self.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = DsspStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.invalidations_per_update(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = DsspStats {
            queries: 10,
            hits: 7,
            misses: 3,
            updates: 4,
            invalidations: 6,
            entries_scanned: 40,
            evictions: 2,
        };
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.invalidations_per_update() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fieldwise_and_is_associative() {
        let mk = |n: u64| DsspStats {
            queries: 10 * n,
            hits: 7 * n,
            misses: 3 * n,
            updates: 4 * n,
            invalidations: 6 * n,
            entries_scanned: 40 * n,
            evictions: n,
        };
        let (a, b, c) = (mk(1), mk(2), mk(5));

        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, mk(8));
    }
}
