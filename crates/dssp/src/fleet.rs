//! Multi-proxy scale-out: a fleet of DSSP proxies per tenant.
//!
//! The paper's evaluation (§5, Fig. 8–10) measures scalability as *max
//! users vs. number of DSSP proxy servers*, with the home server
//! broadcasting invalidations to every proxy. [`ProxyFleet`] reproduces
//! that deployment: N [`Dssp`] replicas share one [`HomeServer`], a
//! load balancer routes each client operation to one replica
//! ([`RoutingMode`]), and every epoch-stamped invalidation fans out to
//! *all* replicas over per-proxy delivery pipes
//! ([`scs_netsim::fault::FaultyChannel`]).
//!
//! Fanout is **batched and coalesced** ([`FanoutConfig`]): the home
//! side buffers notifications and ships an [`InvalidationBatch`] when
//! the buffer fills or a flush interval elapses; duplicate
//! invalidations for the same update content within a batch coalesce
//! to the latest-epoch representative. [`FanoutConfig::immediate`]
//! degenerates to one message per batch, and a single-proxy immediate
//! fleet over reliable pipes behaves exactly like a standalone proxy
//! (pinned by test).
//!
//! Fault-tolerance semantics are per replica: each proxy tracks its
//! own epoch stream position, detects gaps independently (a dropped
//! batch flushes only the replica that missed it), recovers on its own
//! [`RecoveryMode`](crate::delivery::RecoveryMode), and — when
//! overload protection is configured —
//! owns its own circuit breaker and brownout state. Staleness anywhere
//! in the fleet stays bounded by the per-entry lease, which the chaos
//! property tests in `tests/fleet.rs` verify against a ground-truth
//! oracle.

use crate::delivery::{splitmix64, InvalidationBatch, InvalidationMsg};
use crate::home::HomeServer;
use crate::proxy::{Dssp, DsspConfig, QueryResponse, UpdateResponse};
use crate::stats::DsspStats;
use scs_netsim::fault::{ChannelStats, FaultSpec, FaultyChannel};
use scs_sqlkit::{Query, Update};
use scs_storage::StorageError;
use scs_telemetry::{
    shared_provenance, FlushTrigger, SharedProvenance, SpanId, SpanPhase, SpanRecorder,
};

/// How the fleet's load balancer picks a replica for an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Cycle through replicas in order. Spreads load evenly but scatters
    /// each template's working set over every cache (N cold misses per
    /// result).
    RoundRobin,
    /// Consistent hashing by template id over a ring of virtual nodes:
    /// one template's queries always land on the same replica, so its
    /// working set is cached exactly once, and adding/removing a replica
    /// remaps only the ring arcs it owned.
    HashByTemplate,
}

impl RoutingMode {
    pub fn name(self) -> &'static str {
        match self {
            RoutingMode::RoundRobin => "round_robin",
            RoutingMode::HashByTemplate => "hash_by_template",
        }
    }
}

/// When the home side ships its buffered invalidations.
#[derive(Debug, Clone, Copy)]
pub struct FanoutConfig {
    /// Flush as soon as this many notifications are buffered.
    pub max_batch: usize,
    /// Flush once the oldest buffered notification has waited this long
    /// (simulated µs). `0` means every notification ships immediately.
    pub flush_interval_micros: u64,
}

impl FanoutConfig {
    /// One message per batch, shipped synchronously — the unbatched
    /// baseline.
    pub fn immediate() -> FanoutConfig {
        FanoutConfig {
            max_batch: 1,
            flush_interval_micros: 0,
        }
    }

    /// Buffer up to `max_batch` notifications or `flush_interval_micros`
    /// of simulated time, whichever fills first.
    pub fn batched(max_batch: usize, flush_interval_micros: u64) -> FanoutConfig {
        assert!(max_batch >= 1, "a batch holds at least one message");
        FanoutConfig {
            max_batch,
            flush_interval_micros,
        }
    }
}

/// Fleet shape: replica count, routing, fanout cadence, and the fault
/// behaviour of the per-proxy delivery pipes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    pub proxies: usize,
    pub routing: RoutingMode,
    pub fanout: FanoutConfig,
    /// Fault spec applied to every per-proxy pipe (each pipe draws from
    /// its own seeded stream, so replicas fail independently).
    pub pipe_spec: FaultSpec,
    /// Base seed for the pipe streams; pipe `p` uses `seed ^ p`.
    pub pipe_seed: u64,
}

impl FleetConfig {
    /// N replicas, reliable pipes, immediate fanout: the paper's
    /// perfect-delivery broadcast.
    pub fn reliable(proxies: usize, routing: RoutingMode) -> FleetConfig {
        FleetConfig {
            proxies,
            routing,
            fanout: FanoutConfig::immediate(),
            pipe_spec: FaultSpec::none(),
            pipe_seed: 0,
        }
    }
}

/// A query response plus which replica served it.
#[derive(Debug)]
pub struct FleetQueryResponse {
    pub proxy: usize,
    pub resp: QueryResponse,
    /// Invalidation batches delivered at the serving replica *before*
    /// the query ran (the simulation driver charges their scan work to
    /// this operation's CPU cost).
    pub delivered: DeliveryTotals,
}

/// An update response plus which replica forwarded it. The inner
/// response's `scanned`/`invalidated` totals count what *delivering
/// due fanout batches during this call* removed across the whole fleet
/// — with batching or pipe latency the work lands on later calls, so
/// the totals here can be 0 even though entries will die.
#[derive(Debug)]
pub struct FleetUpdateResponse {
    pub proxy: usize,
    pub resp: UpdateResponse,
    /// The home server's epoch after this update (its notification is
    /// in the fanout buffer or in flight).
    pub epoch: u64,
}

/// What a pump delivered: batches applied plus the entry scan/kill
/// totals of the invalidation passes they ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryTotals {
    pub batches: usize,
    pub scanned: usize,
    pub invalidated: usize,
}

impl DeliveryTotals {
    fn absorb(&mut self, other: DeliveryTotals) {
        self.batches += other.batches;
        self.scanned += other.scanned;
        self.invalidated += other.invalidated;
    }
}

/// Aggregate fanout accounting for the whole fleet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// Batches flushed (each is sent once per replica).
    pub batches: u64,
    /// Messages retained across all flushed batches.
    pub msgs: u64,
    /// Messages coalesced away before shipping.
    pub coalesced: u64,
    /// Per-pipe channel counters (drop/duplicate/delay/delivered).
    pub pipes: Vec<ChannelStats>,
}

/// Virtual nodes per replica on the consistent-hash ring. Enough to
/// spread a handful of templates roughly evenly without making ring
/// construction noticeable.
const RING_VNODES: usize = 16;

/// N proxies, one home server, a router in front and a fanout behind.
pub struct ProxyFleet {
    proxies: Vec<Dssp>,
    pipes: Vec<FaultyChannel<InvalidationBatch>>,
    home: HomeServer,
    routing: RoutingMode,
    /// Sorted `(point, replica)` ring for [`RoutingMode::HashByTemplate`].
    ring: Vec<(u64, usize)>,
    fanout: FanoutConfig,
    rr_cursor: usize,
    /// Buffered notifications awaiting flush, ascending by epoch.
    pending: Vec<InvalidationMsg>,
    /// Sim time the oldest pending notification entered the buffer.
    pending_since: u64,
    now_micros: u64,
    batches: u64,
    msgs: u64,
    coalesced: u64,
    /// Fleet-layer span recorder: routing decisions and fanout flushes
    /// (replica-side spans live in each proxy's own recorder).
    spans: SpanRecorder,
    /// Tenant label stamped on fleet-layer spans.
    tenant: u32,
    /// The freshness plane, when enabled: commit/flush/send/arrival
    /// stamps shared by the home server and every replica.
    prov: Option<SharedProvenance>,
}

impl ProxyFleet {
    /// Builds the fleet: each replica gets its own cache and telemetry
    /// from a clone of `config` (same app id, hence the same tenant
    /// encryption key), its replica index stamped on trace events, and
    /// its own delivery pipe seeded independently.
    pub fn new(config: DsspConfig, home: HomeServer, fleet: FleetConfig) -> ProxyFleet {
        assert!(fleet.proxies >= 1, "a fleet has at least one proxy");
        let mut proxies = Vec::with_capacity(fleet.proxies);
        let mut pipes = Vec::with_capacity(fleet.proxies);
        for p in 0..fleet.proxies {
            let mut dssp = Dssp::new(config.clone());
            dssp.set_proxy_label(p as u32);
            proxies.push(dssp);
            pipes.push(FaultyChannel::new(
                fleet.pipe_seed ^ p as u64,
                fleet.pipe_spec.clone(),
            ));
        }
        let ring = Self::build_ring(fleet.proxies);
        ProxyFleet {
            proxies,
            pipes,
            home,
            routing: fleet.routing,
            ring,
            fanout: fleet.fanout,
            rr_cursor: 0,
            pending: Vec::new(),
            pending_since: 0,
            now_micros: 0,
            batches: 0,
            msgs: 0,
            coalesced: 0,
            spans: SpanRecorder::disabled(),
            tenant: 0,
            prov: None,
        }
    }

    /// Turns on span recording at the fleet layer (routing, fanout
    /// flush) *and* on every replica (request pipeline, batch apply),
    /// each with its own `capacity` cap.
    pub fn enable_span_recording(&mut self, capacity: usize) {
        self.spans = SpanRecorder::enabled(capacity);
        for proxy in &mut self.proxies {
            proxy.enable_span_recording(capacity);
        }
    }

    /// The fleet-layer span trees (empty unless
    /// [`ProxyFleet::enable_span_recording`] was called).
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Turns on the freshness plane: one shared provenance log wired
    /// through the home server (commit stamps), the fanout layer
    /// (flush/send stamps), and every replica (arrival, invalidate,
    /// store, serve stamps). Returns the shared handle; also available
    /// later via [`ProxyFleet::provenance`].
    pub fn enable_provenance(&mut self) -> SharedProvenance {
        let prov = shared_provenance(self.proxies.len());
        self.home.attach_provenance(prov.clone());
        for (p, proxy) in self.proxies.iter_mut().enumerate() {
            proxy.attach_provenance(prov.clone(), p);
        }
        self.prov = Some(prov.clone());
        prov
    }

    /// The freshness plane handle, if [`ProxyFleet::enable_provenance`]
    /// was called.
    pub fn provenance(&self) -> Option<&SharedProvenance> {
        self.prov.as_ref()
    }

    /// Sets (or clears) the staleness lease on every replica's cache.
    pub fn set_lease_micros(&mut self, lease: Option<u64>) {
        for proxy in &mut self.proxies {
            proxy.set_lease_micros(lease);
        }
    }

    fn build_ring(n: usize) -> Vec<(u64, usize)> {
        let mut ring = Vec::with_capacity(n * RING_VNODES);
        for p in 0..n {
            for v in 0..RING_VNODES {
                // Domain-separated point: replica index in the high
                // half, vnode in the low, through one splitmix round.
                let point = splitmix64(((p as u64) << 32) ^ v as u64 ^ 0x72696e67); // "ring"
                ring.push((point, p));
            }
        }
        ring.sort_unstable();
        ring
    }

    /// The replica an operation on `template_id` routes to.
    pub fn route(&mut self, template_id: usize) -> usize {
        let timer = self.spans.timer();
        let p = match self.routing {
            RoutingMode::RoundRobin => {
                let p = self.rr_cursor;
                self.rr_cursor = (self.rr_cursor + 1) % self.proxies.len();
                p
            }
            RoutingMode::HashByTemplate => self.route_by_hash(template_id),
        };
        self.spans.record_closed(
            self.now_micros,
            SpanPhase::Routing,
            SpanId::NONE,
            self.tenant,
            Some(template_id as u32),
            timer,
        );
        p
    }

    fn route_by_hash(&self, template_id: usize) -> usize {
        let h = splitmix64(template_id as u64 ^ 0x74706c); // "tpl"
        let i = match self.ring.binary_search_by(|&(point, _)| point.cmp(&h)) {
            Ok(i) => i,
            // First point clockwise of the hash; wrap past the top.
            Err(i) => i % self.ring.len(),
        };
        self.ring[i].1
    }

    /// Routes a query to its replica, delivering any fanout batches due
    /// at that replica first (per-pipe FIFO order is preserved).
    pub fn execute_query(&mut self, q: &Query) -> Result<FleetQueryResponse, StorageError> {
        let p = self.route(q.template_id);
        let delivered = self.pump(p);
        let resp = self.proxies[p].execute_query(q, &mut self.home)?;
        Ok(FleetQueryResponse {
            proxy: p,
            resp,
            delivered,
        })
    }

    /// Routes an update through a replica to the home server. The
    /// epoch-stamped notification enters the fanout buffer — the
    /// forwarding replica does **not** invalidate inline; like every
    /// other replica it waits for its own pipe's batch, so delivery
    /// semantics are uniform across the fleet. With
    /// [`FanoutConfig::immediate`] over zero-latency reliable pipes the
    /// batch applies before this call returns.
    pub fn execute_update(&mut self, u: &Update) -> Result<FleetUpdateResponse, StorageError> {
        use crate::delivery::{FtUpdateOutcome, HomeLink, RetryPolicy};
        let p = self.route(u.template_id);
        self.pump(p);
        let ft = self.proxies[p].execute_update_ft(
            u,
            &mut self.home,
            &HomeLink::reliable(),
            &RetryPolicy::no_retries(),
        )?;
        let (effect, msg) = match ft.outcome {
            FtUpdateOutcome::Applied { effect, msg } => (effect, msg),
            FtUpdateOutcome::Unavailable => unreachable!("reliable link cannot be unavailable"),
        };
        let epoch = msg.epoch;
        self.offer(msg);
        // Deliver anything already due (with immediate fanout over
        // zero-latency pipes that includes the batch just sent).
        let delivered = self.pump_all();
        Ok(FleetUpdateResponse {
            proxy: p,
            resp: UpdateResponse {
                effect,
                scanned: delivered.scanned,
                invalidated: delivered.invalidated,
            },
            epoch,
        })
    }

    /// Buffers a notification, flushing on the size trigger.
    fn offer(&mut self, msg: InvalidationMsg) {
        if self.pending.is_empty() {
            self.pending_since = self.now_micros;
        }
        self.pending.push(msg);
        if self.pending.len() >= self.fanout.max_batch {
            self.flush_fanout_with(FlushTrigger::Size);
        }
    }

    /// Coalesces and ships the pending buffer to every replica's pipe.
    /// Stamped on the freshness plane as an explicit drain.
    pub fn flush_fanout(&mut self) {
        self.flush_fanout_with(FlushTrigger::Drain);
    }

    fn flush_fanout_with(&mut self, trigger: FlushTrigger) {
        let msgs = std::mem::take(&mut self.pending);
        let Some(batch) = InvalidationBatch::coalesce(msgs) else {
            return;
        };
        self.batches += 1;
        self.msgs += batch.len() as u64;
        self.coalesced += batch.coalesced;
        let timer = self.spans.timer();
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::FanoutFlush,
            SpanId::NONE,
            self.tenant,
            batch.msgs.first().map(|m| m.update.template_id as u32),
        );
        let batch_id = self.prov.as_ref().map(|prov| {
            prov.lock().unwrap().note_flush(
                batch.first_epoch,
                batch.last_epoch,
                batch.len() as u64,
                batch.coalesced,
                self.now_micros,
                trigger,
                batch.retained_payloads(),
            )
        });
        for (p, pipe) in self.pipes.iter_mut().enumerate() {
            pipe.send(self.now_micros, batch.clone());
            if let (Some(prov), Some(id)) = (&self.prov, batch_id) {
                prov.lock().unwrap().note_send(p, id, self.now_micros);
            }
        }
        self.spans.close(root, timer);
    }

    /// Flushes the buffer if the oldest pending notification has waited
    /// out the configured interval.
    fn maybe_flush(&mut self) {
        if !self.pending.is_empty()
            && self.now_micros.saturating_sub(self.pending_since)
                >= self.fanout.flush_interval_micros
        {
            self.flush_fanout_with(FlushTrigger::Interval);
        }
    }

    /// Delivers every batch due at replica `p` (duplicates and gap
    /// recoveries included in `batches`; their scans are not).
    pub fn pump(&mut self, p: usize) -> DeliveryTotals {
        use crate::delivery::BatchOutcome;
        let due = self.pipes[p].poll(self.now_micros);
        let mut totals = DeliveryTotals {
            batches: due.len(),
            ..DeliveryTotals::default()
        };
        for batch in due {
            if let BatchOutcome::Applied {
                scanned,
                invalidated,
                ..
            } = self.proxies[p].apply_batch(&batch)
            {
                totals.scanned += scanned;
                totals.invalidated += invalidated;
            }
        }
        totals
    }

    /// Delivers every due batch at every replica.
    pub fn pump_all(&mut self) -> DeliveryTotals {
        let mut totals = DeliveryTotals::default();
        for p in 0..self.proxies.len() {
            totals.absorb(self.pump(p));
        }
        totals
    }

    /// Advances the fleet clock: every replica's lease/trace clock moves,
    /// the interval flush fires if due, and deliveries due by `micros`
    /// drain to their replicas.
    pub fn set_sim_time_micros(&mut self, micros: u64) {
        self.now_micros = micros;
        self.home.set_sim_time_micros(micros);
        for proxy in &mut self.proxies {
            proxy.set_sim_time_micros(micros);
        }
        self.maybe_flush();
        self.pump_all();
    }

    /// End of run: ship whatever is buffered and deliver everything
    /// still in flight, regardless of due time.
    pub fn drain(&mut self) {
        self.flush_fanout();
        for p in 0..self.proxies.len() {
            let rest = self.pipes[p].drain();
            for batch in rest {
                self.proxies[p].apply_batch(&batch);
            }
        }
    }

    /// Stamps the tenant label on every replica's trace events (set by
    /// `DsspNode` registration).
    pub fn set_tenant_label(&mut self, tenant: u32) {
        self.tenant = tenant;
        for proxy in &mut self.proxies {
            proxy.set_tenant_label(tenant);
        }
    }

    /// Crash + restart one replica: its cache is lost and its epoch
    /// re-handshakes from the home server (see [`Dssp::restart`]). The
    /// other replicas are untouched — recovery is independent.
    pub fn restart_proxy(&mut self, p: usize) {
        let epoch = self.home.epoch();
        self.proxies[p].restart(epoch);
    }

    pub fn len(&self) -> usize {
        self.proxies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.proxies.is_empty()
    }

    pub fn routing(&self) -> RoutingMode {
        self.routing
    }

    pub fn proxy(&self, p: usize) -> &Dssp {
        &self.proxies[p]
    }

    pub fn proxy_mut(&mut self, p: usize) -> &mut Dssp {
        &mut self.proxies[p]
    }

    pub fn home(&self) -> &HomeServer {
        &self.home
    }

    pub fn home_mut(&mut self) -> &mut HomeServer {
        &mut self.home
    }

    /// Notifications buffered but not yet shipped.
    pub fn pending_fanout(&self) -> usize {
        self.pending.len()
    }

    /// Fanout accounting, including per-pipe fault counters.
    pub fn fanout_stats(&self) -> FanoutStats {
        FanoutStats {
            batches: self.batches,
            msgs: self.msgs,
            coalesced: self.coalesced,
            pipes: self.pipes.iter().map(|p| p.stats()).collect(),
        }
    }

    /// Fleet-wide counter roll-up ([`DsspStats::merge`] across replicas).
    pub fn rollup_stats(&self) -> DsspStats {
        let mut total = DsspStats::default();
        for proxy in &self.proxies {
            total.merge(&proxy.stats());
        }
        total
    }

    /// Fleet-wide metrics roll-up: every replica's registry merged into
    /// one snapshot.
    pub fn rollup_metrics(&self) -> scs_telemetry::MetricsSnapshot {
        let mut total = scs_telemetry::MetricsSnapshot::default();
        for proxy in &self.proxies {
            total.merge(&proxy.registry().snapshot());
        }
        total
    }

    /// Total cached entries across replicas.
    pub fn total_cache_entries(&self) -> usize {
        self.proxies.iter().map(|p| p.cache_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use scs_core::{characterize_app, AnalysisOptions, Catalog};
    use scs_sqlkit::{parse_query, parse_update, Value};
    use scs_storage::{ColumnType, Database, TableSchema};
    use std::sync::Arc;

    struct Fixture {
        fleet: ProxyFleet,
        queries: Vec<Arc<scs_sqlkit::QueryTemplate>>,
        updates: Vec<Arc<scs_sqlkit::UpdateTemplate>>,
    }

    fn toy_config(
        kind: StrategyKind,
    ) -> (
        DsspConfig,
        HomeServer,
        Vec<Arc<scs_sqlkit::QueryTemplate>>,
        Vec<Arc<scs_sqlkit::UpdateTemplate>>,
    ) {
        let schema = TableSchema::builder("toys")
            .column("toy_id", ColumnType::Int)
            .column("toy_name", ColumnType::Str)
            .column("qty", ColumnType::Int)
            .primary_key(&["toy_id"])
            .index("toy_name")
            .build()
            .unwrap();
        let mut db = Database::new();
        db.create_table(schema.clone()).unwrap();
        for (id, name, qty) in [(1, "bear", 10), (2, "car", 5), (3, "kite", 7)] {
            db.insert_row(
                "toys",
                vec![Value::Int(id), Value::str(name), Value::Int(qty)],
            )
            .unwrap();
        }
        let queries = vec![
            Arc::new(parse_query("SELECT toy_id FROM toys WHERE toy_name = ?").unwrap()),
            Arc::new(parse_query("SELECT qty FROM toys WHERE toy_id = ?").unwrap()),
        ];
        let updates = vec![Arc::new(
            parse_update("UPDATE toys SET qty = ? WHERE toy_id = ?").unwrap(),
        )];
        let catalog = Catalog::new([schema]);
        let matrix = characterize_app(&updates, &queries, &catalog, AnalysisOptions::default());
        let config = DsspConfig::new(
            "toystore",
            kind.exposures(updates.len(), queries.len()),
            matrix,
        );
        (config, HomeServer::new(db), queries, updates)
    }

    fn fixture(kind: StrategyKind, fleet: FleetConfig) -> Fixture {
        let (config, home, queries, updates) = toy_config(kind);
        Fixture {
            fleet: ProxyFleet::new(config, home, fleet),
            queries,
            updates,
        }
    }

    impl Fixture {
        fn query(&mut self, tid: usize, params: Vec<Value>) -> FleetQueryResponse {
            let q = Query::bind(tid, self.queries[tid].clone(), params).unwrap();
            self.fleet.execute_query(&q).unwrap()
        }

        fn update(&mut self, tid: usize, params: Vec<Value>) -> FleetUpdateResponse {
            let u = Update::bind(tid, self.updates[tid].clone(), params).unwrap();
            self.fleet.execute_update(&u).unwrap()
        }
    }

    #[test]
    fn round_robin_cycles_replicas() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(3, RoutingMode::RoundRobin),
        );
        let served: Vec<usize> = (0..6)
            .map(|_| f.query(1, vec![Value::Int(1)]).proxy)
            .collect();
        assert_eq!(served, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hash_routing_pins_a_template_to_one_replica() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(4, RoutingMode::HashByTemplate),
        );
        let first = f.query(1, vec![Value::Int(1)]).proxy;
        for _ in 0..8 {
            assert_eq!(f.query(1, vec![Value::Int(2)]).proxy, first);
        }
        // The second query of the same template hits the warm cache.
        assert!(f.query(1, vec![Value::Int(1)]).resp.hit);
    }

    #[test]
    fn hash_ring_spreads_many_templates() {
        let fleet = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(4, RoutingMode::HashByTemplate),
        )
        .fleet;
        let mut used = std::collections::HashSet::new();
        for tid in 0..64 {
            used.insert(fleet.route_by_hash(tid));
        }
        assert_eq!(used.len(), 4, "64 templates must touch every replica");
    }

    #[test]
    fn fanout_invalidates_every_replica() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(3, RoutingMode::RoundRobin),
        );
        // Warm the same entry on all three replicas (round-robin lands
        // each query on a different one).
        for _ in 0..3 {
            f.query(1, vec![Value::Int(2)]);
        }
        assert_eq!(f.fleet.total_cache_entries(), 3);
        f.update(0, vec![Value::Int(99), Value::Int(2)]);
        assert_eq!(
            f.fleet.total_cache_entries(),
            0,
            "immediate fanout reaches every replica before the update returns"
        );
        let rolled = f.fleet.rollup_stats();
        assert_eq!(rolled.invalidations, 3);
        // Every replica is at the home epoch.
        for p in 0..3 {
            assert_eq!(f.fleet.proxy(p).epoch(), f.fleet.home().epoch());
        }
    }

    #[test]
    fn single_proxy_immediate_fleet_matches_classic_proxy() {
        let (config, mut home, queries, updates) = toy_config(StrategyKind::ViewInspection);
        let mut classic = Dssp::new(config.clone());
        let (fconfig, fhome, _, _) = toy_config(StrategyKind::ViewInspection);
        let mut f = Fixture {
            fleet: ProxyFleet::new(
                fconfig,
                fhome,
                FleetConfig::reliable(1, RoutingMode::RoundRobin),
            ),
            queries: queries.clone(),
            updates: updates.clone(),
        };
        let script: Vec<(bool, usize, Vec<Value>)> = vec![
            (true, 1, vec![Value::Int(1)]),
            (true, 0, vec![Value::str("car")]),
            (false, 0, vec![Value::Int(3), Value::Int(1)]),
            (true, 1, vec![Value::Int(1)]),
            (true, 1, vec![Value::Int(2)]),
            (false, 0, vec![Value::Int(8), Value::Int(2)]),
            (true, 1, vec![Value::Int(2)]),
            (true, 0, vec![Value::str("bear")]),
        ];
        for (is_query, tid, params) in script {
            if is_query {
                let q = Query::bind(tid, queries[tid].clone(), params).unwrap();
                let a = classic.execute_query(&q, &mut home).unwrap();
                let b = f.fleet.execute_query(&q).unwrap();
                assert_eq!(a.hit, b.resp.hit);
                assert_eq!(a.result, b.resp.result);
            } else {
                let u = Update::bind(tid, updates[tid].clone(), params).unwrap();
                let a = classic.execute_update(&u, &mut home).unwrap();
                let b = f.fleet.execute_update(&u).unwrap();
                assert_eq!(a.effect, b.resp.effect);
            }
        }
        let a = classic.stats();
        let b = f.fleet.rollup_stats();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.hits, b.hits, "cache behaviour is identical");
        assert_eq!(a.invalidations, b.invalidations);
        assert_eq!(classic.epoch(), f.fleet.proxy(0).epoch());
    }

    #[test]
    fn size_trigger_batches_and_coalesces() {
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.fanout = FanoutConfig::batched(4, u64::MAX);
        let mut f = fixture(StrategyKind::ViewInspection, cfg);
        // Warm one entry per replica.
        f.query(1, vec![Value::Int(2)]);
        f.query(1, vec![Value::Int(2)]);
        // Three updates of the same content buffer without shipping…
        for _ in 0..3 {
            f.update(0, vec![Value::Int(5), Value::Int(2)]);
        }
        assert_eq!(f.fleet.pending_fanout(), 3);
        assert_eq!(f.fleet.total_cache_entries(), 2, "nothing delivered yet");
        // …the fourth (identical content again) fills the batch: one
        // flush, the three earlier duplicates coalesced away.
        f.update(0, vec![Value::Int(5), Value::Int(2)]);
        assert_eq!(f.fleet.pending_fanout(), 0);
        let stats = f.fleet.fanout_stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.msgs, 1, "four identical updates ship as one");
        assert_eq!(stats.coalesced, 3);
        assert_eq!(f.fleet.total_cache_entries(), 0);
        // Each replica covered all four epochs from the one batch.
        for p in 0..2 {
            assert_eq!(f.fleet.proxy(p).epoch(), 4);
        }
    }

    #[test]
    fn interval_trigger_flushes_on_time_advance() {
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.fanout = FanoutConfig::batched(1000, 10_000);
        let mut f = fixture(StrategyKind::ViewInspection, cfg);
        f.query(1, vec![Value::Int(2)]);
        f.query(1, vec![Value::Int(2)]);
        f.fleet.set_sim_time_micros(1_000);
        f.update(0, vec![Value::Int(5), Value::Int(2)]);
        assert_eq!(f.fleet.pending_fanout(), 1);
        // Not due yet: 9ms later.
        f.fleet.set_sim_time_micros(10_000);
        assert_eq!(f.fleet.pending_fanout(), 1);
        // Due: the interval has elapsed since the message buffered.
        f.fleet.set_sim_time_micros(11_000);
        assert_eq!(f.fleet.pending_fanout(), 0);
        assert_eq!(f.fleet.total_cache_entries(), 0, "delivered on flush");
    }

    #[test]
    fn dropped_batch_recovers_via_gap_on_next_delivery() {
        // Pipe 1 drops everything; pipe 0 is clean. After two updates,
        // replica 0 applied both batches while replica 1 saw nothing;
        // a drain-less pump leaves replica 1 stale but lease-free reads
        // never happen because the *next delivered* batch (we heal the
        // pipe by draining) arrives with a gap and flushes.
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.pipe_spec = FaultSpec::none();
        let mut f = fixture(StrategyKind::ViewInspection, cfg);
        f.query(1, vec![Value::Int(2)]);
        f.query(1, vec![Value::Int(2)]);
        // Simulate the drop by applying batch 1 only at replica 0, then
        // batch 2 at both: replica 1 sees first_epoch=2 > expected=1.
        let u = Update::bind(0, f.updates[0].clone(), vec![Value::Int(5), Value::Int(2)]).unwrap();
        let (msg1, msg2) = {
            let home = f.fleet.home_mut();
            let (_, m1) = home.apply_update(&u).unwrap();
            let (_, m2) = home.apply_update(&u).unwrap();
            (m1, m2)
        };
        let b1 = InvalidationBatch::single(msg1);
        let b2 = InvalidationBatch::single(msg2);
        use crate::delivery::BatchOutcome;
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&b1),
            BatchOutcome::Applied { .. }
        ));
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&b2),
            BatchOutcome::Applied { .. }
        ));
        let out = f.fleet.proxy_mut(1).apply_batch(&b2);
        assert!(matches!(out, BatchOutcome::Recovered { flushed: 1 }));
        assert_eq!(f.fleet.proxy(1).epoch(), 2, "gap flush skips ahead");
        // Redelivery of the missed batch is now a harmless duplicate.
        assert_eq!(
            f.fleet.proxy_mut(1).apply_batch(&b1),
            BatchOutcome::Duplicate
        );
    }

    #[test]
    fn overlapping_batch_skips_covered_epochs() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(1, RoutingMode::RoundRobin),
        );
        let u = Update::bind(0, f.updates[0].clone(), vec![Value::Int(5), Value::Int(1)]).unwrap();
        let msgs: Vec<InvalidationMsg> = (0..3)
            .map(|i| {
                let vu = Update::bind(
                    0,
                    f.updates[0].clone(),
                    vec![Value::Int(5 + i), Value::Int(1 + i)],
                )
                .unwrap();
                f.fleet.home_mut().apply_update(&vu).unwrap().1
            })
            .collect();
        let _ = u;
        use crate::delivery::BatchOutcome;
        // Deliver [1..=2] first, then the overlapping [1..=3].
        let first = InvalidationBatch::coalesce(msgs[..2].to_vec()).unwrap();
        let full = InvalidationBatch::coalesce(msgs.clone()).unwrap();
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&first),
            BatchOutcome::Applied {
                applied: 2,
                skipped: 0,
                ..
            }
        ));
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&full),
            BatchOutcome::Applied {
                applied: 1,
                skipped: 2,
                ..
            }
        ));
        assert_eq!(f.fleet.proxy(0).epoch(), 3);
        // And a full redelivery is a batch-level duplicate.
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&full),
            BatchOutcome::Duplicate
        ));
    }

    #[test]
    fn fanout_metrics_count_batches() {
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.fanout = FanoutConfig::batched(2, u64::MAX);
        let mut f = fixture(StrategyKind::ViewInspection, cfg);
        f.update(0, vec![Value::Int(5), Value::Int(1)]);
        f.update(0, vec![Value::Int(5), Value::Int(2)]);
        let rolled = f.fleet.rollup_metrics();
        assert_eq!(rolled.counters["dssp.fanout_batches_applied"], 2);
        assert_eq!(
            rolled.counters["dssp.fanout_batch_msgs"], 4,
            "2 msgs × 2 replicas"
        );
        // Trace events from replica 1 carry its label.
        assert_eq!(f.fleet.proxy(1).proxy_label(), 1);
    }

    #[test]
    fn restart_rejoins_at_home_epoch() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(2, RoutingMode::RoundRobin),
        );
        f.query(1, vec![Value::Int(1)]);
        f.update(0, vec![Value::Int(4), Value::Int(1)]);
        f.update(0, vec![Value::Int(5), Value::Int(1)]);
        f.fleet.restart_proxy(1);
        assert_eq!(f.fleet.proxy(1).epoch(), f.fleet.home().epoch());
        assert_eq!(f.fleet.proxy(1).cache_len(), 0);
        // Replica 0 is untouched by its peer's crash.
        assert_eq!(f.fleet.proxy(0).epoch(), f.fleet.home().epoch());
    }
}
