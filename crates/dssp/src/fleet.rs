//! Multi-proxy scale-out: a fleet of DSSP proxies per tenant.
//!
//! The paper's evaluation (§5, Fig. 8–10) measures scalability as *max
//! users vs. number of DSSP proxy servers*, with the home server
//! broadcasting invalidations to every proxy. [`ProxyFleet`] reproduces
//! that deployment: N [`Dssp`] replicas share one [`HomeServer`], a
//! load balancer routes each client operation to one replica
//! ([`RoutingMode`]), and every epoch-stamped invalidation fans out to
//! *all* replicas over per-proxy delivery pipes
//! ([`scs_netsim::fault::FaultyChannel`]).
//!
//! Fanout is **batched and coalesced** ([`FanoutConfig`]): the home
//! side buffers notifications and ships an [`InvalidationBatch`] when
//! the buffer fills or a flush interval elapses; duplicate
//! invalidations for the same update content within a batch coalesce
//! to the latest-epoch representative. [`FanoutConfig::immediate`]
//! degenerates to one message per batch, and a single-proxy immediate
//! fleet over reliable pipes behaves exactly like a standalone proxy
//! (pinned by test).
//!
//! The fleet is **elastic**: [`ProxyFleet::add_replica`] and
//! [`ProxyFleet::remove_replica`] change membership under live load.
//! Every replica carries a *stable id* that is never reused, the
//! consistent-hash ring is keyed by those ids (so a membership change
//! remaps only the arcs the joining/leaving replica owns), and state
//! moves between replicas by cache handoff under the join/leave
//! protocol documented in [`crate::elastic`]. The home server tracks
//! registered pipes ([`HomeServer::register_pipe`]) so a joiner's
//! epoch cursor is pinned *before* it can receive traffic.
//!
//! Fault-tolerance semantics are per replica: each proxy tracks its
//! own epoch stream position, detects gaps independently (a dropped
//! batch flushes only the replica that missed it), recovers on its own
//! [`RecoveryMode`](crate::delivery::RecoveryMode), and — when
//! overload protection is configured —
//! owns its own circuit breaker and brownout state. Staleness anywhere
//! in the fleet stays bounded by the per-entry lease — across
//! membership changes too, because handed-off entries keep their
//! original lease windows — which the chaos property tests in
//! `tests/fleet.rs` and `tests/elastic.rs` verify against a
//! ground-truth oracle.

use crate::delivery::{
    splitmix64, FtQueryResponse, FtUpdateOutcome, FtUpdateResponse, HomeLink, InvalidationBatch,
    InvalidationMsg, RetryPolicy,
};
use crate::elastic::{HandoffFault, JoinOutcome, LeaveOutcome};
use crate::home::HomeServer;
use crate::proxy::{Dssp, DsspConfig, QueryResponse, UpdateResponse};
use crate::replication::{CommitAck, FailoverRecord, HomeGroup, ReplicationConfig};
use crate::stats::DsspStats;
use scs_netsim::fault::{ChannelStats, FaultSpec, FaultyChannel};
use scs_sqlkit::{Query, Update};
use scs_storage::{Database, StorageError};
use scs_telemetry::{
    shared_audit, shared_provenance, FlushTrigger, MembershipKind, MembershipStamp, ProvenanceLog,
    SharedAudit, SharedProvenance, SpanId, SpanPhase, SpanRecorder,
};
use std::collections::HashMap;

/// How the fleet's load balancer picks a replica for an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Cycle through replicas in order. Spreads load evenly but scatters
    /// each template's working set over every cache (N cold misses per
    /// result).
    RoundRobin,
    /// Consistent hashing by template id over a ring of virtual nodes:
    /// one template's queries always land on the same replica, so its
    /// working set is cached exactly once, and adding/removing a replica
    /// remaps only the ring arcs it owned.
    HashByTemplate,
}

impl RoutingMode {
    pub fn name(self) -> &'static str {
        match self {
            RoutingMode::RoundRobin => "round_robin",
            RoutingMode::HashByTemplate => "hash_by_template",
        }
    }
}

/// When the home side ships its buffered invalidations.
#[derive(Debug, Clone, Copy)]
pub struct FanoutConfig {
    /// Flush as soon as this many notifications are buffered.
    pub max_batch: usize,
    /// Flush once the oldest buffered notification has waited this long
    /// (simulated µs). `0` means every notification ships immediately.
    pub flush_interval_micros: u64,
}

impl FanoutConfig {
    /// One message per batch, shipped synchronously — the unbatched
    /// baseline.
    pub fn immediate() -> FanoutConfig {
        FanoutConfig {
            max_batch: 1,
            flush_interval_micros: 0,
        }
    }

    /// Buffer up to `max_batch` notifications or `flush_interval_micros`
    /// of simulated time, whichever fills first.
    pub fn batched(max_batch: usize, flush_interval_micros: u64) -> FanoutConfig {
        assert!(max_batch >= 1, "a batch holds at least one message");
        FanoutConfig {
            max_batch,
            flush_interval_micros,
        }
    }
}

/// Fleet shape: replica count, routing, fanout cadence, and the fault
/// behaviour of the per-proxy delivery pipes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    pub proxies: usize,
    pub routing: RoutingMode,
    pub fanout: FanoutConfig,
    /// Fault spec applied to every per-proxy pipe (each pipe draws from
    /// its own seeded stream, so replicas fail independently).
    pub pipe_spec: FaultSpec,
    /// Base seed for the pipe streams; pipe `p` uses `seed ^ p`.
    pub pipe_seed: u64,
}

impl FleetConfig {
    /// N replicas, reliable pipes, immediate fanout: the paper's
    /// perfect-delivery broadcast.
    pub fn reliable(proxies: usize, routing: RoutingMode) -> FleetConfig {
        FleetConfig {
            proxies,
            routing,
            fanout: FanoutConfig::immediate(),
            pipe_spec: FaultSpec::none(),
            pipe_seed: 0,
        }
    }
}

/// A query response plus which replica served it.
#[derive(Debug)]
pub struct FleetQueryResponse {
    /// Stable id of the serving replica.
    pub proxy: usize,
    pub resp: QueryResponse,
    /// Invalidation batches delivered at the serving replica *before*
    /// the query ran (the simulation driver charges their scan work to
    /// this operation's CPU cost).
    pub delivered: DeliveryTotals,
}

/// An update response plus which replica forwarded it. The inner
/// response's `scanned`/`invalidated` totals count what *delivering
/// due fanout batches during this call* removed across the whole fleet
/// — with batching or pipe latency the work lands on later calls, so
/// the totals here can be 0 even though entries will die.
#[derive(Debug)]
pub struct FleetUpdateResponse {
    /// Stable id of the forwarding replica.
    pub proxy: usize,
    pub resp: UpdateResponse,
    /// The home server's epoch after this update (its notification is
    /// in the fanout buffer or in flight).
    pub epoch: u64,
    /// The replication ack for this write (always acked for a
    /// single-node home tier and in async mode; may be unacked when a
    /// sync-quorum commit timed out).
    pub ack: CommitAck,
}

/// A fault-tolerant query response from the fleet: which replica
/// served (or failed to serve) it, and what deliveries preceded it.
/// Unlike [`ProxyFleet::execute_query`], this path survives a down
/// home tier: within-lease hits serve degraded, misses surface
/// [`crate::delivery::FtOutcome::Unavailable`].
#[derive(Debug)]
pub struct FleetFtQueryResponse {
    pub proxy: usize,
    pub resp: FtQueryResponse,
    pub delivered: DeliveryTotals,
}

/// A fault-tolerant update response from the fleet. While the home
/// tier is down the outcome is `Unavailable` and `ack` is `None`.
#[derive(Debug)]
pub struct FleetFtUpdateResponse {
    pub proxy: usize,
    pub resp: FtUpdateResponse,
    pub ack: Option<CommitAck>,
}

/// What a pump delivered: batches applied plus the entry scan/kill
/// totals of the invalidation passes they ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryTotals {
    pub batches: usize,
    pub scanned: usize,
    pub invalidated: usize,
}

impl DeliveryTotals {
    fn absorb(&mut self, other: DeliveryTotals) {
        self.batches += other.batches;
        self.scanned += other.scanned;
        self.invalidated += other.invalidated;
    }
}

/// Aggregate fanout accounting for the whole fleet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// Batches flushed (each is sent once per replica).
    pub batches: u64,
    /// Messages retained across all flushed batches.
    pub msgs: u64,
    /// Messages coalesced away before shipping.
    pub coalesced: u64,
    /// Times a poisoned provenance lock was recovered on the fanout
    /// path (a panicking stamper elsewhere must not wedge the flush —
    /// the log is append-only stamps, so recovery is safe).
    pub poison_recovered: u64,
    /// Per-pipe channel counters (drop/duplicate/delay/delivered) for
    /// the currently-live replicas, in membership order.
    pub pipes: Vec<ChannelStats>,
}

/// Virtual nodes per replica on the consistent-hash ring. Enough to
/// spread a handful of templates roughly evenly without making ring
/// construction noticeable.
const RING_VNODES: usize = 16;

/// First point clockwise of the template's hash; wrap past the top.
pub(crate) fn ring_route(ring: &[(u64, usize)], template_id: usize) -> usize {
    let h = splitmix64(template_id as u64 ^ 0x74706c); // "tpl"
    let i = match ring.binary_search_by(|&(point, _)| point.cmp(&h)) {
        Ok(i) => i,
        Err(i) => i % ring.len(),
    };
    ring[i].1
}

/// One fleet member: a stable id (never reused within the fleet's
/// lifetime), the proxy itself, and its private delivery pipe. Keeping
/// the pipe *next to* its proxy — instead of in a parallel vector — is
/// what makes membership changes safe: a removed replica takes its
/// pipe with it, so `pump_all`/`drain` can never index a departed one.
struct Replica {
    id: usize,
    dssp: Dssp,
    pipe: FaultyChannel<InvalidationBatch>,
}

/// N proxies, one home server, a router in front and a fanout behind.
pub struct ProxyFleet {
    replicas: Vec<Replica>,
    /// Next stable id to assign; ids are never reused, even for joins
    /// that abort.
    next_id: usize,
    /// Kept for spawning joiners: same app id, hence the same tenant
    /// encryption key as the founding replicas.
    config: DsspConfig,
    /// The home tier. A plain fleet wraps its home server in a
    /// single-node [`HomeGroup`] (an exact passthrough);
    /// [`ProxyFleet::replicated`] builds a primary + standbys group
    /// that survives crashes via standby promotion.
    home: HomeGroup,
    routing: RoutingMode,
    /// Sorted `(point, replica id)` ring for
    /// [`RoutingMode::HashByTemplate`]. Points are keyed by stable id,
    /// so a given replica's arcs are identical no matter who else is
    /// in the fleet — that is what makes membership remaps minimal.
    ring: Vec<(u64, usize)>,
    fanout: FanoutConfig,
    pipe_spec: FaultSpec,
    pipe_seed: u64,
    rr_cursor: usize,
    /// Buffered notifications awaiting flush, ascending by epoch.
    pending: Vec<InvalidationMsg>,
    /// Sim time the oldest pending notification entered the buffer.
    pending_since: u64,
    now_micros: u64,
    batches: u64,
    msgs: u64,
    coalesced: u64,
    /// Bumped on every completed join/leave (not on aborted joins).
    membership_epoch: u64,
    /// Poisoned provenance locks recovered on the fanout path.
    prov_poison_recovered: u64,
    /// Buffered fanout notifications destroyed by a home-tier crash
    /// (crash mid-fanout-flush): their epochs surface to every replica
    /// as one stream gap, which the recovery flush absorbs.
    fanout_lost_on_crash: u64,
    /// Per-replica settings replayed onto joiners.
    lease: Option<u64>,
    span_capacity: Option<usize>,
    /// Fleet-layer span recorder: routing decisions and fanout flushes
    /// (replica-side spans live in each proxy's own recorder).
    spans: SpanRecorder,
    /// Tenant label stamped on fleet-layer spans.
    tenant: u32,
    /// The freshness plane, when enabled: commit/flush/send/arrival
    /// stamps shared by the home server and every replica.
    prov: Option<SharedProvenance>,
    audit: Option<SharedAudit>,
}

impl ProxyFleet {
    /// Builds the fleet: each replica gets its own cache and telemetry
    /// from a clone of `config` (same app id, hence the same tenant
    /// encryption key), its stable id stamped on trace events, its own
    /// delivery pipe seeded independently, and a pipe registration at
    /// the home server.
    pub fn new(config: DsspConfig, home: HomeServer, fleet: FleetConfig) -> ProxyFleet {
        Self::with_home_group(config, HomeGroup::single(home), fleet)
    }

    /// Builds the fleet over a **replicated** home tier: the home
    /// server becomes the primary of a [`HomeGroup`] per `replication`
    /// (standbys seeded from its current state). Everything else is
    /// identical to [`ProxyFleet::new`] — the replication layer sits
    /// entirely behind the home surface.
    pub fn replicated(
        config: DsspConfig,
        home: HomeServer,
        fleet: FleetConfig,
        replication: ReplicationConfig,
    ) -> ProxyFleet {
        Self::with_home_group(config, HomeGroup::new(home, replication), fleet)
    }

    fn with_home_group(config: DsspConfig, mut home: HomeGroup, fleet: FleetConfig) -> ProxyFleet {
        assert!(fleet.proxies >= 1, "a fleet has at least one proxy");
        let mut replicas = Vec::with_capacity(fleet.proxies);
        for id in 0..fleet.proxies {
            let mut dssp = Dssp::new(config.clone());
            dssp.set_proxy_label(id as u64);
            let joined_epoch = home.register_pipe(id);
            dssp.handshake(joined_epoch);
            replicas.push(Replica {
                id,
                dssp,
                pipe: FaultyChannel::new(fleet.pipe_seed ^ id as u64, fleet.pipe_spec.clone()),
            });
        }
        let ring = Self::build_ring(&(0..fleet.proxies).collect::<Vec<_>>());
        ProxyFleet {
            replicas,
            next_id: fleet.proxies,
            config,
            home,
            routing: fleet.routing,
            ring,
            fanout: fleet.fanout,
            pipe_spec: fleet.pipe_spec,
            pipe_seed: fleet.pipe_seed,
            rr_cursor: 0,
            pending: Vec::new(),
            pending_since: 0,
            now_micros: 0,
            batches: 0,
            msgs: 0,
            coalesced: 0,
            membership_epoch: 0,
            prov_poison_recovered: 0,
            fanout_lost_on_crash: 0,
            lease: None,
            span_capacity: None,
            spans: SpanRecorder::disabled(),
            tenant: 0,
            prov: None,
            audit: None,
        }
    }

    /// Turns on span recording at the fleet layer (routing, fanout
    /// flush) *and* on every replica (request pipeline, batch apply),
    /// each with its own `capacity` cap. Joiners inherit the setting.
    pub fn enable_span_recording(&mut self, capacity: usize) {
        self.span_capacity = Some(capacity);
        self.spans = SpanRecorder::enabled(capacity);
        for r in &mut self.replicas {
            r.dssp.enable_span_recording(capacity);
        }
    }

    /// The fleet-layer span trees (empty unless
    /// [`ProxyFleet::enable_span_recording`] was called).
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Turns on the freshness plane: one shared provenance log wired
    /// through the home server (commit stamps), the fanout layer
    /// (flush/send stamps), and every replica (arrival, invalidate,
    /// store, serve stamps). Joiners are registered into the same log.
    /// Returns the shared handle; also available later via
    /// [`ProxyFleet::provenance`].
    pub fn enable_provenance(&mut self) -> SharedProvenance {
        let prov = shared_provenance(self.next_id);
        self.home.attach_provenance(prov.clone());
        for r in &mut self.replicas {
            r.dssp.attach_provenance(prov.clone(), r.id);
        }
        self.prov = Some(prov.clone());
        prov
    }

    /// The freshness plane handle, if [`ProxyFleet::enable_provenance`]
    /// was called.
    pub fn provenance(&self) -> Option<&SharedProvenance> {
        self.prov.as_ref()
    }

    /// Turns on the leakage audit plane: one shared audit log wired
    /// through every replica (request-plane reveals, scan-time reveals,
    /// crypto metering). Joiners are registered into the same log.
    /// Returns the shared handle; also available later via
    /// [`ProxyFleet::audit`].
    pub fn enable_audit(&mut self) -> SharedAudit {
        let audit = shared_audit(self.next_id);
        for r in &mut self.replicas {
            r.dssp.attach_audit(audit.clone(), r.id);
        }
        self.audit = Some(audit.clone());
        audit
    }

    /// The leakage audit plane handle, if [`ProxyFleet::enable_audit`]
    /// was called.
    pub fn audit(&self) -> Option<&SharedAudit> {
        self.audit.as_ref()
    }

    /// Sets (or clears) the staleness lease on every replica's cache.
    /// Joiners inherit the setting.
    pub fn set_lease_micros(&mut self, lease: Option<u64>) {
        self.lease = lease;
        for r in &mut self.replicas {
            r.dssp.set_lease_micros(lease);
        }
    }

    /// Locks the provenance log, recovering a poisoned lock instead of
    /// propagating the panic: the log is append-only stamps, so the
    /// worst a poisoner can leave behind is a missing stamp — never a
    /// torn invariant — and wedging the fanout path over telemetry
    /// would turn an observability bug into an availability one.
    fn recovered_lock<'a>(
        prov: &'a SharedProvenance,
        recovered: &mut u64,
    ) -> std::sync::MutexGuard<'a, ProvenanceLog> {
        prov.lock().unwrap_or_else(|poisoned| {
            *recovered += 1;
            poisoned.into_inner()
        })
    }

    /// Journals a membership transition on the freshness plane (no-op
    /// without provenance).
    fn stamp_membership(
        &mut self,
        kind: MembershipKind,
        replica: usize,
        peer: Option<usize>,
        entries: u64,
    ) {
        let Some(prov) = self.prov.clone() else {
            return;
        };
        let stamp = MembershipStamp {
            kind,
            replica,
            peer,
            entries,
            at_micros: self.now_micros,
            home_epoch: self.home.epoch(),
        };
        Self::recovered_lock(&prov, &mut self.prov_poison_recovered).note_membership(stamp);
    }

    fn build_ring(ids: &[usize]) -> Vec<(u64, usize)> {
        let mut ring = Vec::with_capacity(ids.len() * RING_VNODES);
        for &id in ids {
            for v in 0..RING_VNODES {
                // Domain-separated point: replica id in the high half,
                // vnode in the low, through one splitmix round.
                let point = splitmix64(((id as u64) << 32) ^ v as u64 ^ 0x72696e67); // "ring"
                ring.push((point, id));
            }
        }
        ring.sort_unstable();
        ring
    }

    /// Position of the replica with stable id `id`.
    fn idx(&self, id: usize) -> usize {
        self.replicas
            .iter()
            .position(|r| r.id == id)
            .unwrap_or_else(|| panic!("replica {id} is not in the fleet"))
    }

    /// The replica an operation on `template_id` routes to (stable id).
    pub fn route(&mut self, template_id: usize) -> usize {
        let timer = self.spans.timer();
        let id = match self.routing {
            RoutingMode::RoundRobin => {
                let pos = self.rr_cursor % self.replicas.len();
                self.rr_cursor = (pos + 1) % self.replicas.len();
                self.replicas[pos].id
            }
            RoutingMode::HashByTemplate => ring_route(&self.ring, template_id),
        };
        self.spans.record_closed(
            self.now_micros,
            SpanPhase::Routing,
            SpanId::NONE,
            self.tenant,
            Some(template_id as u32),
            timer,
        );
        id
    }

    /// Where `template_id` would route under the current ring, without
    /// touching the round-robin cursor or span recorder. Exposed for
    /// the ring-remap property tests.
    pub fn route_template(&self, template_id: usize) -> usize {
        ring_route(&self.ring, template_id)
    }

    /// The current consistent-hash ring, sorted by point. Exposed for
    /// the ring-remap property tests.
    pub fn ring(&self) -> &[(u64, usize)] {
        &self.ring
    }

    /// Completed membership changes (joins and leaves; aborted joins
    /// don't count).
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    /// Stable ids of the live replicas, in membership order.
    pub fn replica_ids(&self) -> Vec<usize> {
        self.replicas.iter().map(|r| r.id).collect()
    }

    /// Adds one replica with a clean handoff. See
    /// [`ProxyFleet::add_replica_faulted`].
    pub fn add_replica(&mut self) -> JoinOutcome {
        self.add_replica_faulted(HandoffFault::None)
    }

    /// Adds one replica under live load, optionally injecting a chaos
    /// fault into the handoff. The join protocol (documented in
    /// [`crate::elastic`]): register the pipe at the home server *first*
    /// so the epoch cursor is pinned, spawn the replica live-but-unrouted
    /// (it receives fanout, takes no traffic), warm it from the donors
    /// that currently own its ring arcs under the cursor-match rule,
    /// then swap the ring in one assignment.
    pub fn add_replica_faulted(&mut self, fault: HandoffFault) -> JoinOutcome {
        let id = self.next_id;
        self.next_id += 1;
        // 1. Register before ring entry: everything committed at or
        //    before `joined_epoch` is reflected in the state the joiner
        //    warms from; everything after arrives on its own pipe.
        let joined_epoch = self.home.register_pipe(id);
        let mut dssp = Dssp::new(self.config.clone());
        dssp.set_proxy_label(id as u64);
        dssp.set_tenant_label(self.tenant);
        dssp.set_lease_micros(self.lease);
        dssp.set_sim_time_micros(self.now_micros);
        if let Some(cap) = self.span_capacity {
            dssp.enable_span_recording(cap);
        }
        dssp.handshake(joined_epoch);
        if let Some(prov) = self.prov.clone() {
            Self::recovered_lock(&prov, &mut self.prov_poison_recovered).register_replica(id);
            dssp.attach_provenance(prov, id);
        }
        if let Some(audit) = self.audit.clone() {
            dssp.attach_audit(audit, id);
        }
        let pipe = FaultyChannel::new(self.pipe_seed ^ id as u64, self.pipe_spec.clone());
        // 2. Live but unrouted: from here the replica receives every
        //    fanout flush, but the ring doesn't know it yet.
        self.replicas.push(Replica { id, dssp, pipe });

        if fault == HandoffFault::CrashJoiner {
            // The joiner dies before warming completes: roll back. The
            // ring was never touched, so routing is byte-identical to
            // before the join started (the no-op-resize property).
            self.replicas.pop();
            self.home.unregister_pipe(id);
            self.stamp_membership(MembershipKind::AbortJoin, id, None, 0);
            return JoinOutcome {
                replica: id,
                joined_epoch,
                handed: 0,
                skipped: 0,
                aborted: true,
            };
        }

        // 3. Warm from predecessors: compute the post-join ring but do
        //    NOT install it yet. Each donor is pumped to its delivery
        //    horizon, then hands over the entries for arcs the joiner
        //    will own. The cursor-match rule — import only when the
        //    donor's epoch equals the joiner's — makes the staleness
        //    argument airtight: a matched donor has applied exactly the
        //    invalidations the joiner's cursor covers, so a surviving
        //    entry is exactly as fresh at the joiner as it was at the
        //    donor. A mismatch costs cold misses, never staleness.
        let new_ring = Self::build_ring(&self.replica_ids());
        let donor_ids: Vec<usize> = self
            .replicas
            .iter()
            .map(|r| r.id)
            .filter(|&d| d != id)
            .collect();
        let mut handed = 0u64;
        let mut skipped = 0u64;
        let mut crash_pending = fault == HandoffFault::CrashDonor;
        for d in donor_ids {
            self.pump(d);
            let di = self.idx(d);
            let donor_epoch = self.replicas[di].dssp.epoch();
            let mut entries = self.replicas[di]
                .dssp
                .export_entries_where(|e| ring_route(&new_ring, e.key().template_id) == id);
            let exported = entries.len() as u64;
            if crash_pending {
                // The first donor crashes mid-handoff: half its export
                // is lost in transit and the donor itself restarts cold
                // from the home epoch. The surviving half still carries
                // the donor's pre-crash epoch position.
                crash_pending = false;
                entries.truncate(entries.len() / 2);
                let epoch = self.home.epoch();
                self.replicas[di].dssp.restart(epoch);
            }
            if fault == HandoffFault::DropStream {
                entries.clear();
            }
            let ji = self.idx(id);
            let imported = if donor_epoch == self.replicas[ji].dssp.epoch() {
                self.replicas[ji].dssp.import_entries(entries) as u64
            } else {
                0
            };
            handed += imported;
            skipped += exported - imported;
            if exported > 0 {
                self.stamp_membership(MembershipKind::Handoff, d, Some(id), imported);
            }
        }

        // 4. Atomic cutover: one assignment, so no operation ever
        //    routes to a half-joined replica.
        self.ring = new_ring;
        self.membership_epoch += 1;
        let ji = self.idx(id);
        self.replicas[ji].dssp.note_join(joined_epoch, handed);
        self.stamp_membership(MembershipKind::Join, id, None, handed);
        JoinOutcome {
            replica: id,
            joined_epoch,
            handed,
            skipped,
            aborted: false,
        }
    }

    /// Removes the replica with stable id `id` under live load: drain
    /// its in-flight work, swap the ring, hand its cached entries to
    /// their new owners (cursor-match rule, as on join), then
    /// unregister its pipe after the final pump. Panics when `id` is
    /// not live or when it is the last replica.
    pub fn remove_replica(&mut self, id: usize) -> LeaveOutcome {
        assert!(
            self.replicas.len() >= 2,
            "cannot remove the last replica of a fleet"
        );
        let li = self.idx(id);
        // 1. Drain in-flight: ship the fanout buffer, deliver what is
        //    due everywhere, then pump the leaver's pipe to the very
        //    end (beyond due time — its pipe is about to vanish, so
        //    nothing may be left in flight toward it).
        self.flush_fanout();
        self.pump_all();
        let rest = self.replicas[li].pipe.drain();
        for batch in rest {
            self.replicas[li].dssp.apply_batch(&batch);
        }
        let final_epoch = self.replicas[li].dssp.epoch();

        // 2. Swap the ring first so successor arcs are computable; the
        //    leaver takes no more routed traffic from this point.
        let survivors: Vec<usize> = self
            .replicas
            .iter()
            .map(|r| r.id)
            .filter(|&r| r != id)
            .collect();
        self.ring = Self::build_ring(&survivors);
        self.membership_epoch += 1;

        // 3. Hand the leaver's entries to their new owners, grouped by
        //    successor, imported only on cursor match.
        let entries = self.replicas[li].dssp.export_entries_where(|_| true);
        let exported = entries.len() as u64;
        let mut by_successor: HashMap<usize, Vec<_>> = HashMap::new();
        for e in entries {
            by_successor
                .entry(ring_route(&self.ring, e.key().template_id))
                .or_default()
                .push(e);
        }
        let mut handed = 0u64;
        let mut successors: Vec<usize> = by_successor.keys().copied().collect();
        successors.sort_unstable(); // deterministic handoff order
        for s in successors {
            let batch = by_successor.remove(&s).expect("key from the map itself");
            let count = batch.len() as u64;
            let si = self.idx(s);
            let imported = if self.replicas[si].dssp.epoch() == final_epoch {
                self.replicas[si].dssp.import_entries(batch) as u64
            } else {
                0
            };
            handed += imported;
            if count > 0 {
                self.stamp_membership(MembershipKind::Handoff, id, Some(s), imported);
            }
        }
        let skipped = exported - handed;

        // 4. Final unregistration: the pipe was drained above, so the
        //    conservation ledger shows nothing in flight toward the
        //    departed replica, and no future flush will address it.
        let li = self.idx(id);
        self.replicas[li].dssp.note_leave(final_epoch, handed);
        self.stamp_membership(MembershipKind::Leave, id, None, handed);
        self.home.unregister_pipe(id);
        self.replicas.remove(li);
        LeaveOutcome {
            replica: id,
            final_epoch,
            handed,
            skipped,
        }
    }

    /// Routes a query to its replica, delivering any fanout batches due
    /// at that replica first (per-pipe FIFO order is preserved).
    pub fn execute_query(&mut self, q: &Query) -> Result<FleetQueryResponse, StorageError> {
        let id = self.route(q.template_id);
        let delivered = self.pump(id);
        let i = self.idx(id);
        let resp = self.replicas[i]
            .dssp
            .execute_query(q, self.home.primary_mut())?;
        Ok(FleetQueryResponse {
            proxy: id,
            resp,
            delivered,
        })
    }

    /// Fault-tolerant query path: like [`ProxyFleet::execute_query`]
    /// but it survives a down home tier — within-lease cache hits
    /// serve degraded, misses surface `Unavailable` instead of
    /// panicking on the missing primary.
    pub fn execute_query_ha(&mut self, q: &Query) -> Result<FleetFtQueryResponse, StorageError> {
        let id = self.route(q.template_id);
        let delivered = self.pump(id);
        let i = self.idx(id);
        let resp = if self.home.is_up() {
            self.replicas[i].dssp.execute_query_ft(
                q,
                self.home.primary_mut(),
                &HomeLink::reliable(),
                &RetryPolicy::no_retries(),
            )?
        } else {
            // No primary to trip to: a scratch server satisfies the
            // signature and is provably never touched while the link
            // reports down.
            let mut scratch = HomeServer::new(Database::default());
            self.replicas[i].dssp.execute_query_ft(
                q,
                &mut scratch,
                &HomeLink::with_outages(vec![(0, u64::MAX)]),
                &RetryPolicy::no_retries(),
            )?
        };
        Ok(FleetFtQueryResponse {
            proxy: id,
            resp,
            delivered,
        })
    }

    /// Fault-tolerant update path: `Unavailable` (master untouched)
    /// while the home tier is down, otherwise applied + replicated
    /// with the group's commit ack.
    pub fn execute_update_ha(&mut self, u: &Update) -> Result<FleetFtUpdateResponse, StorageError> {
        let id = self.route(u.template_id);
        self.pump(id);
        let i = self.idx(id);
        if !self.home.is_up() {
            let mut scratch = HomeServer::new(Database::default());
            let resp = self.replicas[i].dssp.execute_update_ft(
                u,
                &mut scratch,
                &HomeLink::with_outages(vec![(0, u64::MAX)]),
                &RetryPolicy::no_retries(),
            )?;
            return Ok(FleetFtUpdateResponse {
                proxy: id,
                resp,
                ack: None,
            });
        }
        let resp = self.replicas[i].dssp.execute_update_ft(
            u,
            self.home.primary_mut(),
            &HomeLink::reliable(),
            &RetryPolicy::no_retries(),
        )?;
        let ack = match &resp.outcome {
            FtUpdateOutcome::Applied { msg, .. } => {
                let msg = msg.clone();
                let ack = self.home.commit(self.now_micros);
                self.offer(msg);
                self.pump_all();
                Some(ack)
            }
            FtUpdateOutcome::Unavailable => None,
        };
        Ok(FleetFtUpdateResponse {
            proxy: id,
            resp,
            ack,
        })
    }

    /// Routes an update through a replica to the home server. The
    /// epoch-stamped notification enters the fanout buffer — the
    /// forwarding replica does **not** invalidate inline; like every
    /// other replica it waits for its own pipe's batch, so delivery
    /// semantics are uniform across the fleet. With
    /// [`FanoutConfig::immediate`] over zero-latency reliable pipes the
    /// batch applies before this call returns.
    pub fn execute_update(&mut self, u: &Update) -> Result<FleetUpdateResponse, StorageError> {
        let id = self.route(u.template_id);
        self.pump(id);
        let i = self.idx(id);
        let ft = self.replicas[i].dssp.execute_update_ft(
            u,
            self.home.primary_mut(),
            &HomeLink::reliable(),
            &RetryPolicy::no_retries(),
        )?;
        let (effect, msg) = match ft.outcome {
            FtUpdateOutcome::Applied { effect, msg } => (effect, msg),
            FtUpdateOutcome::Unavailable => unreachable!("reliable link cannot be unavailable"),
        };
        let epoch = msg.epoch;
        // Replicate before fanout: the ack (sync-quorum wait included)
        // reflects the write alone, not downstream delivery work.
        let ack = self.home.commit(self.now_micros);
        self.offer(msg);
        // Deliver anything already due (with immediate fanout over
        // zero-latency pipes that includes the batch just sent).
        let delivered = self.pump_all();
        Ok(FleetUpdateResponse {
            proxy: id,
            resp: UpdateResponse {
                effect,
                scanned: delivered.scanned,
                invalidated: delivered.invalidated,
            },
            epoch,
            ack,
        })
    }

    /// Buffers a notification, flushing on the size trigger.
    fn offer(&mut self, msg: InvalidationMsg) {
        if self.pending.is_empty() {
            self.pending_since = self.now_micros;
        }
        self.pending.push(msg);
        if self.pending.len() >= self.fanout.max_batch {
            self.flush_fanout_with(FlushTrigger::Size);
        }
    }

    /// Coalesces and ships the pending buffer to every replica's pipe.
    /// Stamped on the freshness plane as an explicit drain.
    pub fn flush_fanout(&mut self) {
        self.flush_fanout_with(FlushTrigger::Drain);
    }

    fn flush_fanout_with(&mut self, trigger: FlushTrigger) {
        let msgs = std::mem::take(&mut self.pending);
        let Some(batch) = InvalidationBatch::coalesce(msgs) else {
            return;
        };
        self.batches += 1;
        self.msgs += batch.len() as u64;
        self.coalesced += batch.coalesced;
        let timer = self.spans.timer();
        // Label the flush span with its template only when the batch is
        // template-uniform; a mixed batch gets `None` so per-template
        // trace rollups never misattribute the whole flush to whichever
        // update happened to be first.
        let label = batch
            .msgs
            .first()
            .map(|m| m.update.template_id)
            .filter(|&t| batch.msgs.iter().all(|m| m.update.template_id == t));
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::FanoutFlush,
            SpanId::NONE,
            self.tenant,
            label.map(|t| t as u32),
        );
        let prov = self.prov.clone();
        let batch_id = prov.as_ref().map(|prov| {
            Self::recovered_lock(prov, &mut self.prov_poison_recovered).note_flush(
                batch.first_epoch,
                batch.last_epoch,
                batch.len() as u64,
                batch.coalesced,
                self.now_micros,
                trigger,
                batch.retained_payloads(),
            )
        });
        for r in &mut self.replicas {
            r.pipe.send(self.now_micros, batch.clone());
            if let (Some(prov), Some(bid)) = (&prov, batch_id) {
                Self::recovered_lock(prov, &mut self.prov_poison_recovered).note_send(
                    r.id,
                    bid,
                    self.now_micros,
                );
            }
        }
        self.spans.close(root, timer);
    }

    /// Flushes the buffer if the oldest pending notification has waited
    /// out the configured interval.
    fn maybe_flush(&mut self) {
        if !self.pending.is_empty()
            && self.now_micros.saturating_sub(self.pending_since)
                >= self.fanout.flush_interval_micros
        {
            self.flush_fanout_with(FlushTrigger::Interval);
        }
    }

    /// Delivers every due batch at the replica in position `i`.
    fn pump_at(&mut self, i: usize) -> DeliveryTotals {
        use crate::delivery::BatchOutcome;
        let r = &mut self.replicas[i];
        let due = r.pipe.poll(self.now_micros);
        let mut totals = DeliveryTotals {
            batches: due.len(),
            ..DeliveryTotals::default()
        };
        for batch in due {
            if let BatchOutcome::Applied {
                scanned,
                invalidated,
                ..
            } = r.dssp.apply_batch(&batch)
            {
                totals.scanned += scanned;
                totals.invalidated += invalidated;
            }
        }
        totals
    }

    /// Delivers every batch due at the replica with stable id `id`
    /// (duplicates and gap recoveries included in `batches`; their
    /// scans are not).
    pub fn pump(&mut self, id: usize) -> DeliveryTotals {
        let i = self.idx(id);
        self.pump_at(i)
    }

    /// Delivers every due batch at every live replica. Safe across
    /// membership changes: it walks the live set, so a departed
    /// replica's pipe is never touched.
    pub fn pump_all(&mut self) -> DeliveryTotals {
        let mut totals = DeliveryTotals::default();
        for i in 0..self.replicas.len() {
            totals.absorb(self.pump_at(i));
        }
        totals
    }

    /// Advances the fleet clock: every replica's lease/trace clock moves,
    /// the interval flush fires if due, and deliveries due by `micros`
    /// drain to their replicas.
    pub fn set_sim_time_micros(&mut self, micros: u64) {
        self.now_micros = micros;
        // The group tick heartbeats, ships WAL records, and — when the
        // primary has been silent past its lease — promotes a standby.
        // Promotion is invisible here: the group re-installs the pipe
        // registry and provenance on the new primary, and its barrier
        // epoch turns the lost tail into an ordinary stream gap.
        self.home.tick(micros);
        for r in &mut self.replicas {
            r.dssp.set_sim_time_micros(micros);
        }
        self.maybe_flush();
        self.pump_all();
    }

    /// End of run: ship whatever is buffered and deliver everything
    /// still in flight, regardless of due time. Like
    /// [`ProxyFleet::pump_all`], walks only the live replica set.
    pub fn drain(&mut self) {
        self.flush_fanout();
        for i in 0..self.replicas.len() {
            let rest = self.replicas[i].pipe.drain();
            for batch in rest {
                self.replicas[i].dssp.apply_batch(&batch);
            }
        }
    }

    /// Stamps the tenant label on every replica's trace events (set by
    /// `DsspNode` registration). Joiners inherit the label.
    pub fn set_tenant_label(&mut self, tenant: u32) {
        self.tenant = tenant;
        for r in &mut self.replicas {
            r.dssp.set_tenant_label(tenant);
        }
    }

    /// Crash + restart one replica: its cache is lost and its epoch
    /// re-handshakes from the home server (see [`Dssp::restart`]). The
    /// other replicas are untouched — recovery is independent.
    pub fn restart_proxy(&mut self, id: usize) {
        let epoch = self.home.epoch();
        let i = self.idx(id);
        self.replicas[i].dssp.restart(epoch);
    }

    /// Live replica count.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    pub fn routing(&self) -> RoutingMode {
        self.routing
    }

    /// The replica with stable id `id` (panics when not live).
    pub fn proxy(&self, id: usize) -> &Dssp {
        &self.replicas[self.idx(id)].dssp
    }

    pub fn proxy_mut(&mut self, id: usize) -> &mut Dssp {
        let i = self.idx(id);
        &mut self.replicas[i].dssp
    }

    /// The live home primary (panics while the tier is down — the
    /// fault-tolerant paths check [`HomeGroup::is_up`] first).
    pub fn home(&self) -> &HomeServer {
        self.home.primary()
    }

    pub fn home_mut(&mut self) -> &mut HomeServer {
        self.home.primary_mut()
    }

    /// The home tier as a replication group (single-node for fleets
    /// built with [`ProxyFleet::new`]).
    pub fn home_group(&self) -> &HomeGroup {
        &self.home
    }

    pub fn home_group_mut(&mut self) -> &mut HomeGroup {
        &mut self.home
    }

    /// Crashes the home primary (in-memory state lost, durable WAL
    /// survives). Buffered fanout notifications die with it — counted,
    /// and surfaced to every replica as one stream gap the recovery
    /// flush absorbs. The tier stays down until the group's lease
    /// expires and a standby promotes (advance the clock).
    pub fn crash_home(&mut self) {
        self.fanout_lost_on_crash += self.pending.len() as u64;
        self.pending.clear();
        self.home.crash_primary(self.now_micros);
    }

    /// Partitions the home primary away (the zombie scenario): same
    /// fleet-side effects as a crash, but the old primary keeps
    /// running on its stale term.
    pub fn partition_home(&mut self) {
        self.fanout_lost_on_crash += self.pending.len() as u64;
        self.pending.clear();
        self.home.partition_primary(self.now_micros);
    }

    /// Failovers the home tier has completed so far.
    pub fn home_failovers(&self) -> &[FailoverRecord] {
        self.home.failovers()
    }

    /// Buffered fanout notifications destroyed by home-tier crashes.
    pub fn fanout_lost_on_crash(&self) -> u64 {
        self.fanout_lost_on_crash
    }

    /// Notifications buffered but not yet shipped.
    pub fn pending_fanout(&self) -> usize {
        self.pending.len()
    }

    /// Fanout accounting, including per-pipe fault counters.
    pub fn fanout_stats(&self) -> FanoutStats {
        FanoutStats {
            batches: self.batches,
            msgs: self.msgs,
            coalesced: self.coalesced,
            poison_recovered: self.prov_poison_recovered,
            pipes: self.replicas.iter().map(|r| r.pipe.stats()).collect(),
        }
    }

    /// Fleet-wide counter roll-up ([`DsspStats::merge`] across replicas).
    pub fn rollup_stats(&self) -> DsspStats {
        let mut total = DsspStats::default();
        for r in &self.replicas {
            total.merge(&r.dssp.stats());
        }
        total
    }

    /// Fleet-wide metrics roll-up: every replica's registry merged into
    /// one snapshot.
    pub fn rollup_metrics(&self) -> scs_telemetry::MetricsSnapshot {
        let mut total = scs_telemetry::MetricsSnapshot::default();
        for r in &self.replicas {
            total.merge(&r.dssp.registry().snapshot());
        }
        total
    }

    /// Total cached entries across replicas.
    pub fn total_cache_entries(&self) -> usize {
        self.replicas.iter().map(|r| r.dssp.cache_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use scs_core::{characterize_app, AnalysisOptions, Catalog};
    use scs_sqlkit::{parse_query, parse_update, Value};
    use scs_storage::{ColumnType, Database, TableSchema};
    use std::sync::Arc;

    struct Fixture {
        fleet: ProxyFleet,
        queries: Vec<Arc<scs_sqlkit::QueryTemplate>>,
        updates: Vec<Arc<scs_sqlkit::UpdateTemplate>>,
    }

    fn toy_config(
        kind: StrategyKind,
    ) -> (
        DsspConfig,
        HomeServer,
        Vec<Arc<scs_sqlkit::QueryTemplate>>,
        Vec<Arc<scs_sqlkit::UpdateTemplate>>,
    ) {
        let schema = TableSchema::builder("toys")
            .column("toy_id", ColumnType::Int)
            .column("toy_name", ColumnType::Str)
            .column("qty", ColumnType::Int)
            .primary_key(&["toy_id"])
            .index("toy_name")
            .build()
            .unwrap();
        let mut db = Database::new();
        db.create_table(schema.clone()).unwrap();
        for (id, name, qty) in [(1, "bear", 10), (2, "car", 5), (3, "kite", 7)] {
            db.insert_row(
                "toys",
                vec![Value::Int(id), Value::str(name), Value::Int(qty)],
            )
            .unwrap();
        }
        let queries = vec![
            Arc::new(parse_query("SELECT toy_id FROM toys WHERE toy_name = ?").unwrap()),
            Arc::new(parse_query("SELECT qty FROM toys WHERE toy_id = ?").unwrap()),
        ];
        let updates = vec![Arc::new(
            parse_update("UPDATE toys SET qty = ? WHERE toy_id = ?").unwrap(),
        )];
        let catalog = Catalog::new([schema]);
        let matrix = characterize_app(&updates, &queries, &catalog, AnalysisOptions::default());
        let config = DsspConfig::new(
            "toystore",
            kind.exposures(updates.len(), queries.len()),
            matrix,
        );
        (config, HomeServer::new(db), queries, updates)
    }

    fn fixture(kind: StrategyKind, fleet: FleetConfig) -> Fixture {
        let (config, home, queries, updates) = toy_config(kind);
        Fixture {
            fleet: ProxyFleet::new(config, home, fleet),
            queries,
            updates,
        }
    }

    impl Fixture {
        fn query(&mut self, tid: usize, params: Vec<Value>) -> FleetQueryResponse {
            let q = Query::bind(tid, self.queries[tid].clone(), params).unwrap();
            self.fleet.execute_query(&q).unwrap()
        }

        fn update(&mut self, tid: usize, params: Vec<Value>) -> FleetUpdateResponse {
            let u = Update::bind(tid, self.updates[tid].clone(), params).unwrap();
            self.fleet.execute_update(&u).unwrap()
        }
    }

    #[test]
    fn round_robin_cycles_replicas() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(3, RoutingMode::RoundRobin),
        );
        let served: Vec<usize> = (0..6)
            .map(|_| f.query(1, vec![Value::Int(1)]).proxy)
            .collect();
        assert_eq!(served, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hash_routing_pins_a_template_to_one_replica() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(4, RoutingMode::HashByTemplate),
        );
        let first = f.query(1, vec![Value::Int(1)]).proxy;
        for _ in 0..8 {
            assert_eq!(f.query(1, vec![Value::Int(2)]).proxy, first);
        }
        // The second query of the same template hits the warm cache.
        assert!(f.query(1, vec![Value::Int(1)]).resp.hit);
    }

    #[test]
    fn hash_ring_spreads_many_templates() {
        let fleet = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(4, RoutingMode::HashByTemplate),
        )
        .fleet;
        let mut used = std::collections::HashSet::new();
        for tid in 0..64 {
            used.insert(fleet.route_template(tid));
        }
        assert_eq!(used.len(), 4, "64 templates must touch every replica");
    }

    #[test]
    fn fanout_invalidates_every_replica() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(3, RoutingMode::RoundRobin),
        );
        // Warm the same entry on all three replicas (round-robin lands
        // each query on a different one).
        for _ in 0..3 {
            f.query(1, vec![Value::Int(2)]);
        }
        assert_eq!(f.fleet.total_cache_entries(), 3);
        f.update(0, vec![Value::Int(99), Value::Int(2)]);
        assert_eq!(
            f.fleet.total_cache_entries(),
            0,
            "immediate fanout reaches every replica before the update returns"
        );
        let rolled = f.fleet.rollup_stats();
        assert_eq!(rolled.invalidations, 3);
        // Every replica is at the home epoch.
        for p in 0..3 {
            assert_eq!(f.fleet.proxy(p).epoch(), f.fleet.home().epoch());
        }
    }

    #[test]
    fn single_proxy_immediate_fleet_matches_classic_proxy() {
        let (config, mut home, queries, updates) = toy_config(StrategyKind::ViewInspection);
        let mut classic = Dssp::new(config.clone());
        let (fconfig, fhome, _, _) = toy_config(StrategyKind::ViewInspection);
        let mut f = Fixture {
            fleet: ProxyFleet::new(
                fconfig,
                fhome,
                FleetConfig::reliable(1, RoutingMode::RoundRobin),
            ),
            queries: queries.clone(),
            updates: updates.clone(),
        };
        let script: Vec<(bool, usize, Vec<Value>)> = vec![
            (true, 1, vec![Value::Int(1)]),
            (true, 0, vec![Value::str("car")]),
            (false, 0, vec![Value::Int(3), Value::Int(1)]),
            (true, 1, vec![Value::Int(1)]),
            (true, 1, vec![Value::Int(2)]),
            (false, 0, vec![Value::Int(8), Value::Int(2)]),
            (true, 1, vec![Value::Int(2)]),
            (true, 0, vec![Value::str("bear")]),
        ];
        for (is_query, tid, params) in script {
            if is_query {
                let q = Query::bind(tid, queries[tid].clone(), params).unwrap();
                let a = classic.execute_query(&q, &mut home).unwrap();
                let b = f.fleet.execute_query(&q).unwrap();
                assert_eq!(a.hit, b.resp.hit);
                assert_eq!(a.result, b.resp.result);
            } else {
                let u = Update::bind(tid, updates[tid].clone(), params).unwrap();
                let a = classic.execute_update(&u, &mut home).unwrap();
                let b = f.fleet.execute_update(&u).unwrap();
                assert_eq!(a.effect, b.resp.effect);
            }
        }
        let a = classic.stats();
        let b = f.fleet.rollup_stats();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.hits, b.hits, "cache behaviour is identical");
        assert_eq!(a.invalidations, b.invalidations);
        assert_eq!(classic.epoch(), f.fleet.proxy(0).epoch());
    }

    #[test]
    fn size_trigger_batches_and_coalesces() {
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.fanout = FanoutConfig::batched(4, u64::MAX);
        let mut f = fixture(StrategyKind::ViewInspection, cfg);
        // Warm one entry per replica.
        f.query(1, vec![Value::Int(2)]);
        f.query(1, vec![Value::Int(2)]);
        // Three updates of the same content buffer without shipping…
        for _ in 0..3 {
            f.update(0, vec![Value::Int(5), Value::Int(2)]);
        }
        assert_eq!(f.fleet.pending_fanout(), 3);
        assert_eq!(f.fleet.total_cache_entries(), 2, "nothing delivered yet");
        // …the fourth (identical content again) fills the batch: one
        // flush, the three earlier duplicates coalesced away.
        f.update(0, vec![Value::Int(5), Value::Int(2)]);
        assert_eq!(f.fleet.pending_fanout(), 0);
        let stats = f.fleet.fanout_stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.msgs, 1, "four identical updates ship as one");
        assert_eq!(stats.coalesced, 3);
        assert_eq!(f.fleet.total_cache_entries(), 0);
        // Each replica covered all four epochs from the one batch.
        for p in 0..2 {
            assert_eq!(f.fleet.proxy(p).epoch(), 4);
        }
    }

    #[test]
    fn interval_trigger_flushes_on_time_advance() {
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.fanout = FanoutConfig::batched(1000, 10_000);
        let mut f = fixture(StrategyKind::ViewInspection, cfg);
        f.query(1, vec![Value::Int(2)]);
        f.query(1, vec![Value::Int(2)]);
        f.fleet.set_sim_time_micros(1_000);
        f.update(0, vec![Value::Int(5), Value::Int(2)]);
        assert_eq!(f.fleet.pending_fanout(), 1);
        // Not due yet: 9ms later.
        f.fleet.set_sim_time_micros(10_000);
        assert_eq!(f.fleet.pending_fanout(), 1);
        // Due: the interval has elapsed since the message buffered.
        f.fleet.set_sim_time_micros(11_000);
        assert_eq!(f.fleet.pending_fanout(), 0);
        assert_eq!(f.fleet.total_cache_entries(), 0, "delivered on flush");
    }

    #[test]
    fn dropped_batch_recovers_via_gap_on_next_delivery() {
        // Pipe 1 drops everything; pipe 0 is clean. After two updates,
        // replica 0 applied both batches while replica 1 saw nothing;
        // a drain-less pump leaves replica 1 stale but lease-free reads
        // never happen because the *next delivered* batch (we heal the
        // pipe by draining) arrives with a gap and flushes.
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.pipe_spec = FaultSpec::none();
        let mut f = fixture(StrategyKind::ViewInspection, cfg);
        f.query(1, vec![Value::Int(2)]);
        f.query(1, vec![Value::Int(2)]);
        // Simulate the drop by applying batch 1 only at replica 0, then
        // batch 2 at both: replica 1 sees first_epoch=2 > expected=1.
        let u = Update::bind(0, f.updates[0].clone(), vec![Value::Int(5), Value::Int(2)]).unwrap();
        let (msg1, msg2) = {
            let home = f.fleet.home_mut();
            let (_, m1) = home.apply_update(&u).unwrap();
            let (_, m2) = home.apply_update(&u).unwrap();
            (m1, m2)
        };
        let b1 = InvalidationBatch::single(msg1);
        let b2 = InvalidationBatch::single(msg2);
        use crate::delivery::BatchOutcome;
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&b1),
            BatchOutcome::Applied { .. }
        ));
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&b2),
            BatchOutcome::Applied { .. }
        ));
        let out = f.fleet.proxy_mut(1).apply_batch(&b2);
        assert!(matches!(out, BatchOutcome::Recovered { flushed: 1 }));
        assert_eq!(f.fleet.proxy(1).epoch(), 2, "gap flush skips ahead");
        // Redelivery of the missed batch is now a harmless duplicate.
        assert_eq!(
            f.fleet.proxy_mut(1).apply_batch(&b1),
            BatchOutcome::Duplicate
        );
    }

    #[test]
    fn overlapping_batch_skips_covered_epochs() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(1, RoutingMode::RoundRobin),
        );
        let u = Update::bind(0, f.updates[0].clone(), vec![Value::Int(5), Value::Int(1)]).unwrap();
        let msgs: Vec<InvalidationMsg> = (0..3)
            .map(|i| {
                let vu = Update::bind(
                    0,
                    f.updates[0].clone(),
                    vec![Value::Int(5 + i), Value::Int(1 + i)],
                )
                .unwrap();
                f.fleet.home_mut().apply_update(&vu).unwrap().1
            })
            .collect();
        let _ = u;
        use crate::delivery::BatchOutcome;
        // Deliver [1..=2] first, then the overlapping [1..=3].
        let first = InvalidationBatch::coalesce(msgs[..2].to_vec()).unwrap();
        let full = InvalidationBatch::coalesce(msgs.clone()).unwrap();
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&first),
            BatchOutcome::Applied {
                applied: 2,
                skipped: 0,
                ..
            }
        ));
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&full),
            BatchOutcome::Applied {
                applied: 1,
                skipped: 2,
                ..
            }
        ));
        assert_eq!(f.fleet.proxy(0).epoch(), 3);
        // And a full redelivery is a batch-level duplicate.
        assert!(matches!(
            f.fleet.proxy_mut(0).apply_batch(&full),
            BatchOutcome::Duplicate
        ));
    }

    #[test]
    fn fanout_metrics_count_batches() {
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.fanout = FanoutConfig::batched(2, u64::MAX);
        let mut f = fixture(StrategyKind::ViewInspection, cfg);
        f.update(0, vec![Value::Int(5), Value::Int(1)]);
        f.update(0, vec![Value::Int(5), Value::Int(2)]);
        let rolled = f.fleet.rollup_metrics();
        assert_eq!(rolled.counters["dssp.fanout_batches_applied"], 2);
        assert_eq!(
            rolled.counters["dssp.fanout_batch_msgs"], 4,
            "2 msgs × 2 replicas"
        );
        // Trace events from replica 1 carry its label.
        assert_eq!(f.fleet.proxy(1).proxy_label(), 1);
    }

    /// Replica ids are stable and never reused, so the trace label must
    /// carry them without truncation — a label past u32::MAX survives
    /// the trip through the tracer intact.
    #[test]
    fn proxy_label_does_not_truncate_wide_ids() {
        let (config, _home, _q, _u) = toy_config(StrategyKind::ViewInspection);
        let mut dssp = Dssp::new(config);
        let wide = u32::MAX as u64 + 7;
        dssp.set_proxy_label(wide);
        assert_eq!(dssp.proxy_label(), wide);
    }

    /// A template-uniform fanout batch labels its flush span with that
    /// template; a mixed batch is labeled `None` so per-template trace
    /// rollups never charge the whole flush to whichever message was
    /// first.
    #[test]
    fn fanout_flush_span_label_is_none_for_mixed_template_batches() {
        use scs_telemetry::SpanPhase;
        let (_config, home, queries, _updates) = toy_config(StrategyKind::ViewInspection);
        let updates = vec![
            Arc::new(parse_update("UPDATE toys SET qty = ? WHERE toy_id = ?").unwrap()),
            Arc::new(parse_update("UPDATE toys SET toy_name = ? WHERE toy_id = ?").unwrap()),
        ];
        // Re-derive the matrix over both update templates so either can
        // be executed against the fleet.
        let schema = home.database().table("toys").unwrap().schema().clone();
        let catalog = Catalog::new([schema]);
        let matrix = characterize_app(&updates, &queries, &catalog, AnalysisOptions::default());
        let config = DsspConfig::new(
            "toystore",
            StrategyKind::ViewInspection.exposures(updates.len(), queries.len()),
            matrix,
        );
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.fanout = FanoutConfig::batched(2, u64::MAX);
        let mut fleet = ProxyFleet::new(config, home, cfg);
        fleet.enable_span_recording(256);
        let upd = |tid: usize, params: Vec<Value>| {
            Update::bind(tid, updates[tid].clone(), params).unwrap()
        };
        // Two different templates fill the batch: the size-triggered
        // flush is mixed.
        fleet
            .execute_update(&upd(0, vec![Value::Int(9), Value::Int(1)]))
            .unwrap();
        fleet
            .execute_update(&upd(1, vec![Value::str("ball"), Value::Int(2)]))
            .unwrap();
        // Two updates of one template: the next flush is uniform.
        fleet
            .execute_update(&upd(0, vec![Value::Int(8), Value::Int(1)]))
            .unwrap();
        fleet
            .execute_update(&upd(0, vec![Value::Int(7), Value::Int(2)]))
            .unwrap();
        let labels: Vec<Option<u32>> = fleet
            .spans()
            .spans()
            .iter()
            .filter(|s| s.phase == SpanPhase::FanoutFlush)
            .map(|s| s.template)
            .collect();
        assert_eq!(labels, vec![None, Some(0)]);
    }

    #[test]
    fn restart_rejoins_at_home_epoch() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(2, RoutingMode::RoundRobin),
        );
        f.query(1, vec![Value::Int(1)]);
        f.update(0, vec![Value::Int(4), Value::Int(1)]);
        f.update(0, vec![Value::Int(5), Value::Int(1)]);
        f.fleet.restart_proxy(1);
        assert_eq!(f.fleet.proxy(1).epoch(), f.fleet.home().epoch());
        assert_eq!(f.fleet.proxy(1).cache_len(), 0);
        // Replica 0 is untouched by its peer's crash.
        assert_eq!(f.fleet.proxy(0).epoch(), f.fleet.home().epoch());
    }

    #[test]
    fn join_warms_the_new_replica_and_keeps_entries_moving_not_copying() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(2, RoutingMode::HashByTemplate),
        );
        // Warm both templates (they may land on the same replica —
        // hash routing, not round robin).
        f.query(0, vec![Value::str("bear")]);
        f.query(1, vec![Value::Int(2)]);
        let before = f.fleet.total_cache_entries();
        assert_eq!(before, 2);
        let out = f.fleet.add_replica();
        assert!(!out.aborted);
        assert_eq!(out.replica, 2);
        assert_eq!(f.fleet.len(), 3);
        assert_eq!(f.fleet.membership_epoch(), 1);
        // Handoff moves entries, never duplicates them.
        assert_eq!(f.fleet.total_cache_entries(), before);
        assert_eq!(out.skipped, 0, "reliable fleet always cursor-matches");
        // Everything the joiner now owns was handed to it.
        let owned_by_joiner = f.fleet.proxy(2).cache_len() as u64;
        assert_eq!(out.handed, owned_by_joiner);
        // Queries for handed templates hit the joiner's warm cache.
        for tid in 0..2usize {
            if f.fleet.route_template(tid) == 2 {
                let resp = f.query(tid, vec![Value::Int(2)]);
                let _ = resp; // params differ per template; warmth is
                              // asserted via handed == cache_len above.
            }
        }
        // The joiner is a full fanout citizen: an update reaches it.
        f.update(0, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(f.fleet.proxy(2).epoch(), f.fleet.home().epoch());
    }

    #[test]
    fn leave_hands_entries_to_successors_and_frees_the_pipe() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(3, RoutingMode::HashByTemplate),
        );
        f.query(0, vec![Value::str("car")]);
        f.query(1, vec![Value::Int(1)]);
        let before = f.fleet.total_cache_entries();
        let victim = f.fleet.route_template(1);
        let out = f.fleet.remove_replica(victim);
        assert_eq!(out.replica, victim);
        assert_eq!(out.skipped, 0, "reliable fleet always cursor-matches");
        assert_eq!(f.fleet.len(), 2);
        assert!(!f.fleet.replica_ids().contains(&victim));
        // Entries moved to survivors, none lost.
        assert_eq!(f.fleet.total_cache_entries(), before);
        // The departed pipe is gone from the home registry and from
        // fanout: updates and pumps must not touch it.
        assert!(!f
            .fleet
            .home()
            .registered_pipes()
            .iter()
            .any(|p| p.replica == victim));
        f.update(0, vec![Value::Int(9), Value::Int(1)]);
        f.fleet.pump_all();
        f.fleet.drain();
        // And the template the victim owned routes to a live replica.
        let owner = f.fleet.route_template(1);
        assert!(f.fleet.replica_ids().contains(&owner));
    }

    #[test]
    fn aborted_join_leaves_routing_byte_identical() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(2, RoutingMode::HashByTemplate),
        );
        f.query(1, vec![Value::Int(2)]);
        let ring_before = f.fleet.ring().to_vec();
        let pipes_before = f.fleet.home().registered_pipes().to_vec();
        let out = f.fleet.add_replica_faulted(HandoffFault::CrashJoiner);
        assert!(out.aborted);
        assert_eq!(f.fleet.len(), 2);
        assert_eq!(f.fleet.ring(), &ring_before[..], "ring untouched");
        assert_eq!(f.fleet.home().registered_pipes(), &pipes_before[..]);
        assert_eq!(f.fleet.membership_epoch(), 0);
        // The aborted id is burned, never reused.
        let next = f.fleet.add_replica();
        assert_eq!(next.replica, 3);
    }

    #[test]
    fn stable_ids_survive_interleaved_joins_and_leaves() {
        let mut f = fixture(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(2, RoutingMode::HashByTemplate),
        );
        let j = f.fleet.add_replica();
        assert_eq!(j.replica, 2);
        f.fleet.remove_replica(0);
        assert_eq!(f.fleet.replica_ids(), vec![1, 2]);
        // Operations keep working against the sparse id set.
        f.query(1, vec![Value::Int(2)]);
        f.update(0, vec![Value::Int(3), Value::Int(2)]);
        for id in f.fleet.replica_ids() {
            assert_eq!(f.fleet.proxy(id).epoch(), f.fleet.home().epoch());
        }
        // Round-trip another membership change and drain cleanly.
        let k = f.fleet.add_replica();
        assert_eq!(k.replica, 3);
        f.fleet.drain();
        assert_eq!(f.fleet.membership_epoch(), 3);
    }

    // ---- replicated home tier --------------------------------------

    use crate::replication::{ReplicationConfig, ReplicationMode};

    fn replicated_fixture(standbys: usize) -> Fixture {
        let (config, home, queries, updates) = toy_config(StrategyKind::ViewInspection);
        let mut repl = ReplicationConfig::group(ReplicationMode::Async, standbys);
        repl.seed = 11;
        Fixture {
            fleet: ProxyFleet::replicated(
                config,
                home,
                FleetConfig::reliable(2, RoutingMode::RoundRobin),
                repl,
            ),
            queries,
            updates,
        }
    }

    /// Advances fleet time until the group promotes a standby.
    fn ride_out_failover(f: &mut Fixture, mut now: u64) -> u64 {
        let before = f.fleet.home_failovers().len();
        while f.fleet.home_failovers().len() == before {
            now += 10_000;
            f.fleet.set_sim_time_micros(now);
            assert!(now < 10_000_000, "failover never happened");
        }
        now
    }

    #[test]
    fn restart_handshakes_against_a_promoted_home() {
        let mut f = replicated_fixture(1);
        f.query(1, vec![Value::Int(1)]);
        for i in 0..4 {
            f.update(0, vec![Value::Int(10 + i), Value::Int(1)]);
        }
        let now = 1_000;
        f.fleet.set_sim_time_micros(now); // ships + delivers replication
        f.fleet.crash_home();
        ride_out_failover(&mut f, now);
        let fo = *f.fleet.home_failovers().last().unwrap();
        assert_eq!(fo.lost_records, 0, "everything had replicated");
        // The promoted home opened past the old tip; a restarting
        // proxy handshakes against the *new* stream position.
        f.fleet.restart_proxy(1);
        assert_eq!(f.fleet.proxy(1).epoch(), f.fleet.home().epoch());
        assert_eq!(f.fleet.proxy(1).epoch(), fo.barrier_epoch);
        assert_eq!(f.fleet.proxy(1).cache_len(), 0);
        // And ordinary traffic keeps working against the new primary.
        let resp = f.update(0, vec![Value::Int(99), Value::Int(1)]);
        assert!(resp.ack.acked);
        assert!(resp.epoch > fo.barrier_epoch);
    }

    #[test]
    fn pump_all_and_drain_cross_a_failover_boundary() {
        let (config, home, queries, updates) = toy_config(StrategyKind::ViewInspection);
        let mut repl = ReplicationConfig::group(ReplicationMode::Async, 1);
        repl.seed = 13;
        let mut cfg = FleetConfig::reliable(2, RoutingMode::RoundRobin);
        cfg.fanout = FanoutConfig::batched(1000, u64::MAX); // hold everything
        let mut f = Fixture {
            fleet: ProxyFleet::replicated(config, home, cfg, repl),
            queries,
            updates,
        };
        // Warm both replicas, then buffer updates without flushing.
        f.query(1, vec![Value::Int(1)]);
        f.query(1, vec![Value::Int(1)]);
        for i in 0..3 {
            f.update(0, vec![Value::Int(20 + i), Value::Int(1)]);
        }
        assert_eq!(f.fleet.pending_fanout(), 3);
        let mut now = 1_000;
        f.fleet.set_sim_time_micros(now);
        // Crash mid-fanout-flush: the buffered notifications die with
        // the primary (counted), their epochs become a stream gap.
        f.fleet.crash_home();
        assert_eq!(f.fleet.pending_fanout(), 0);
        assert_eq!(f.fleet.fanout_lost_on_crash(), 3);
        now = ride_out_failover(&mut f, now);
        // Post-failover updates fan out from the promoted primary;
        // pump_all/drain walk the same pipes as before the failover.
        f.update(0, vec![Value::Int(50), Value::Int(1)]);
        f.fleet.set_sim_time_micros(now + 1_000);
        f.fleet.flush_fanout();
        f.fleet.pump_all();
        f.fleet.drain();
        // Every replica crossed the barrier gap (recovery flush) and
        // converged on the new stream position.
        for p in 0..2 {
            assert_eq!(f.fleet.proxy(p).epoch(), f.fleet.home().epoch());
        }
        assert_eq!(f.fleet.total_cache_entries(), 0, "gap flushed the caches");
        // The lost epochs were recovered over, not silently skipped.
        let counters = f.fleet.rollup_metrics().counters;
        assert!(
            counters["dssp.recovery_flushes"] >= 1,
            "at least one replica gap-flushed"
        );
    }

    #[test]
    fn replicated_fleet_survives_failover_transparently() {
        let mut f = replicated_fixture(2);
        f.query(1, vec![Value::Int(1)]);
        f.query(1, vec![Value::Int(2)]);
        for i in 0..5 {
            f.update(0, vec![Value::Int(30 + i), Value::Int(1)]);
        }
        let mut now = 2_000;
        f.fleet.set_sim_time_micros(now);
        let epoch_before = f.fleet.home().epoch();
        f.fleet.crash_home();
        assert!(!f.fleet.home_group().is_up());
        // Queries during the outage degrade instead of panicking.
        let q = Query::bind(1, f.queries[1].clone(), vec![Value::Int(1)]).unwrap();
        let ha = f.fleet.execute_query_ha(&q).unwrap();
        assert!(matches!(
            ha.resp.outcome,
            crate::delivery::FtOutcome::Unavailable | crate::delivery::FtOutcome::Served { .. }
        ));
        // Updates during the outage are refused, master untouched.
        let u = Update::bind(0, f.updates[0].clone(), vec![Value::Int(77), Value::Int(1)]).unwrap();
        let ha = f.fleet.execute_update_ha(&u).unwrap();
        assert!(matches!(
            ha.resp.outcome,
            crate::delivery::FtUpdateOutcome::Unavailable
        ));
        assert!(ha.ack.is_none());
        now = ride_out_failover(&mut f, now);
        assert!(f.fleet.home_group().is_up());
        assert!(f.fleet.home().epoch() > epoch_before, "barrier moved ahead");
        // The same ha paths now serve against the promoted primary.
        let ha = f.fleet.execute_update_ha(&u).unwrap();
        assert!(ha.ack.expect("tier is up").acked);
        f.fleet.set_sim_time_micros(now + 1_000);
        f.fleet.drain();
        for p in 0..2 {
            assert_eq!(f.fleet.proxy(p).epoch(), f.fleet.home().epoch());
        }
    }
}
