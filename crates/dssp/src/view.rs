//! View-inspection invalidation (MVIS, §2.2): in addition to the update and
//! query statements, the strategy may inspect the cached query *result*.
//!
//! The implementation starts from the statement-level decision and refines
//! it with sound result-based rules mirroring the cases where the paper
//! shows `C < B` (§4.4):
//!
//! * **deletions** whose selection attributes are all preserved in the
//!   result: if no result row satisfies the deletion predicate, the deleted
//!   rows contributed nothing — do not invalidate;
//! * **insertions** into top-k queries: if the result already holds `k`
//!   rows and the new row ranks strictly after the k-th, the top-k is
//!   unchanged (the paper's `qty > t2.qty` example generalized);
//! * **insertions** into `MIN`/`MAX` aggregates: if the new value cannot
//!   beat the cached extremum, the result is unchanged (the paper's
//!   `SELECT MAX(qty)` example);
//! * **modifications** whose target row is provably absent from the result
//!   (its preserved primary key does not occur) and provably unable to
//!   enter it (a new SET value violates a restriction, or no modified
//!   attribute participates in selection).
//!
//! All refinements apply only when the updated relation occurs under
//! exactly one alias — with several aliases a row can contribute through
//! any of them, and attributing result columns to aliases is ambiguous.

use crate::statement::{statement_may_affect, update_constraints};
use scs_sqlkit::{AggFunc, CmpOp, Query, SelectItem, Update, UpdateTemplate, Value};
use scs_storage::QueryResult;

/// Decides whether `u` might affect the cached `result` of `q`
/// (`true` = must invalidate).
pub fn view_may_affect(u: &Update, q: &Query, result: &QueryResult) -> bool {
    if !statement_may_affect(u, q) {
        return false;
    }
    let table = u.template.table();
    let aliases: Vec<&str> = q
        .template
        .from
        .iter()
        .filter(|t| t.table == table)
        .map(|t| t.alias.as_str())
        .collect();
    let [alias] = aliases.as_slice() else {
        return true; // zero is unreachable (statement said "affect")
    };

    match &*u.template {
        UpdateTemplate::Delete(_) => !delete_ruled_out(u, q, alias, result),
        UpdateTemplate::Insert(ins) => {
            let row: Vec<(&str, &Value)> = ins
                .columns
                .iter()
                .map(String::as_str)
                .zip(ins.values.iter().map(|s| u.resolve(s)))
                .collect();
            !(insert_topk_ruled_out(q, alias, result, &row)
                || insert_minmax_ruled_out(q, alias, result, &row))
        }
        UpdateTemplate::Modify(m) => {
            let set: Vec<(&str, &Value)> = m
                .set
                .iter()
                .map(|(c, s)| (c.as_str(), u.resolve(s)))
                .collect();
            !modify_ruled_out(u, q, alias, result, &set)
        }
    }
}

/// Positions of plainly selected columns of `alias` in the result, by
/// column name. Aggregate items never count.
fn preserved_positions<'q>(q: &'q Query, alias: &str) -> Vec<(&'q str, usize)> {
    q.template
        .select
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            SelectItem::Column(c) if c.qualifier == alias => Some((c.column.as_str(), i)),
            _ => None,
        })
        .collect()
}

/// Deletion rule: requires every deletion-predicate attribute to be
/// preserved; checks whether any result row satisfies the deletion
/// predicate.
fn delete_ruled_out(u: &Update, q: &Query, alias: &str, result: &QueryResult) -> bool {
    if q.template.has_aggregates() || !q.template.group_by.is_empty() {
        return false; // aggregated rows do not expose raw attribute values
    }
    let constraints = update_constraints(u);
    let preserved = preserved_positions(q, alias);
    let position_of = |col: &str| preserved.iter().find(|(c, _)| *c == col).map(|(_, i)| *i);
    // S(U) ⊆ P(Q) restricted to this alias, else no refinement.
    let positions: Option<Vec<(usize, &_)>> = constraints
        .iter()
        .map(|c| position_of(&c.column).map(|i| (i, c)))
        .collect();
    let Some(positions) = positions else {
        return false;
    };
    // If some result row satisfies the deletion predicate, it may vanish.
    !result
        .rows
        .iter()
        .any(|row| positions.iter().all(|(i, c)| c.op.eval(&row[*i], &c.value)))
}

/// Insertion/top-k rule: the result holds `k` rows and the new row ranks
/// strictly after the k-th by the order-by keys (all of which must be
/// preserved columns of this alias).
fn insert_topk_ruled_out(
    q: &Query,
    alias: &str,
    result: &QueryResult,
    row: &[(&str, &Value)],
) -> bool {
    let row_value = |col: &str| row.iter().find(|(c, _)| *c == col).map(|(_, v)| *v);
    let tpl = &q.template;
    let Some(k) = tpl.limit else {
        return false;
    };
    if tpl.order_by.is_empty()
        || tpl.has_aggregates()
        || !tpl.group_by.is_empty()
        || (result.rows.len() as u64) < k
    {
        return false;
    }
    let Some(last) = result.rows.last() else {
        return false;
    };
    let preserved = preserved_positions(q, alias);
    // Only the primary sort key is compared: strictly worse there means
    // the row sorts after the k-th regardless of further keys. Ascending ⇒
    // larger is worse, descending ⇒ smaller is worse; ties stay
    // conservative.
    let key = &tpl.order_by[0];
    if key.column.qualifier != alias {
        return false;
    }
    let Some((_, pos)) = preserved
        .iter()
        .find(|(c, _)| *c == key.column.column.as_str())
    else {
        return false;
    };
    let Some(new_v) = row_value(&key.column.column) else {
        return false;
    };
    match new_v.cmp(&last[*pos]) {
        std::cmp::Ordering::Equal => false,
        std::cmp::Ordering::Less => key.desc,
        std::cmp::Ordering::Greater => !key.desc,
    }
}

/// Insertion/extremum rule: a sole `MIN(col)`/`MAX(col)` select item over
/// this alias, with the new value unable to beat the cached extremum.
fn insert_minmax_ruled_out(
    q: &Query,
    alias: &str,
    result: &QueryResult,
    row: &[(&str, &Value)],
) -> bool {
    let row_value = |col: &str| row.iter().find(|(c, _)| *c == col).map(|(_, v)| *v);
    let tpl = &q.template;
    if tpl.select.len() != 1 || !tpl.group_by.is_empty() {
        return false;
    }
    let SelectItem::Aggregate {
        func,
        arg: Some(col),
    } = &tpl.select[0]
    else {
        return false;
    };
    if col.qualifier != alias {
        return false;
    }
    let Some(new_v) = row_value(&col.column) else {
        return false;
    };
    let Some(cached) = result.rows.first().map(|r| &r[0]) else {
        return false;
    };
    match func {
        AggFunc::Max => new_v <= cached,
        AggFunc::Min => new_v >= cached,
        _ => false, // COUNT/SUM/AVG always change when a row qualifies
    }
}

/// Modification rule: locate the target row in the result by its preserved
/// primary-key equality values; refine both the "was in the result" and
/// "enters the result" directions.
fn modify_ruled_out(
    u: &Update,
    q: &Query,
    alias: &str,
    result: &QueryResult,
    set: &[(&str, &Value)],
) -> bool {
    if q.template.has_aggregates() || !q.template.group_by.is_empty() {
        return false;
    }
    // The update's WHERE must be pure equalities (the §2.1 model: equality
    // on the primary key), giving the row's identifying values.
    let constraints = update_constraints(u);
    if constraints.is_empty() || constraints.iter().any(|c| c.op != CmpOp::Eq) {
        return false;
    }
    let preserved = preserved_positions(q, alias);
    let id_positions: Option<Vec<(usize, &Value)>> = constraints
        .iter()
        .map(|c| {
            preserved
                .iter()
                .find(|(col, _)| *col == c.column.as_str())
                .map(|(_, i)| (*i, &c.value))
        })
        .collect();
    let Some(id_positions) = id_positions else {
        return false; // identifying attributes not preserved — no refinement
    };
    let present = result
        .rows
        .iter()
        .any(|row| id_positions.iter().all(|(i, v)| &&row[*i] == v));
    if present {
        return false; // the row is in the result: its change is observable
    }
    // Absent: the result can only change if the row *enters* it. Ruled out
    // when a new SET value violates one of the query's restrictions on the
    // modified attributes (the paper's `qty > 100` example), or when no
    // modified attribute participates in selection at all (satisfaction
    // unchanged ⇒ still out).
    let restrictions = crate::statement::query_restrictions(q, alias);
    let violates = restrictions.iter().any(|c| {
        set.iter()
            .find(|(col, _)| *col == c.column.as_str())
            .is_some_and(|(_, v)| !c.op.eval(v, &c.value))
    });
    if violates {
        return true;
    }
    let selection_cols: Vec<&str> = restrictions
        .iter()
        .map(|c| c.column.as_str())
        .chain(q.template.predicates.iter().filter_map(|p| {
            p.as_join().and_then(|(l, _, r)| {
                if l.qualifier == alias {
                    Some(l.column.as_str())
                } else if r.qualifier == alias {
                    Some(r.column.as_str())
                } else {
                    None
                }
            })
        }))
        .collect();
    set.iter().all(|(col, _)| !selection_cols.contains(col)) && q.template.order_by.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scs_sqlkit::{parse_query, parse_update};
    use std::sync::Arc;

    fn q(sql: &str, params: Vec<Value>) -> Query {
        Query::bind(0, Arc::new(parse_query(sql).unwrap()), params).unwrap()
    }

    fn u(sql: &str, params: Vec<Value>) -> Update {
        Update::bind(0, Arc::new(parse_update(sql).unwrap()), params).unwrap()
    }

    fn res(cols: &[&str], rows: Vec<Vec<Value>>) -> QueryResult {
        QueryResult::new(cols.iter().map(|c| c.to_string()).collect(), rows)
    }

    /// The paper's §4.4 MAX example: cached MAX(qty) = 15; inserting
    /// qty = 10 cannot change it, inserting qty = 20 can.
    #[test]
    fn max_example() {
        let query = q("SELECT MAX(qty) FROM toys", vec![]);
        let cached = res(&["MAX(toys.qty)"], vec![vec![Value::Int(15)]]);
        let low = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(15), Value::str("toyB"), Value::Int(10)],
        );
        assert!(!view_may_affect(&low, &query, &cached));
        let high = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(16), Value::str("toyC"), Value::Int(20)],
        );
        assert!(view_may_affect(&high, &query, &cached));
    }

    #[test]
    fn min_example() {
        let query = q("SELECT MIN(qty) FROM toys", vec![]);
        let cached = res(&["MIN(toys.qty)"], vec![vec![Value::Int(3)]]);
        let above = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(9), Value::str("x"), Value::Int(5)],
        );
        assert!(!view_may_affect(&above, &query, &cached));
        let below = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(9), Value::str("x"), Value::Int(1)],
        );
        assert!(view_may_affect(&below, &query, &cached));
    }

    /// Top-k: inserting a row ranking after the k-th leaves the top-k
    /// unchanged.
    #[test]
    fn topk_example() {
        let query = q(
            "SELECT toy_id, qty FROM toys ORDER BY qty DESC LIMIT 2",
            vec![],
        );
        let cached = res(
            &["toys.toy_id", "toys.qty"],
            vec![
                vec![Value::Int(1), Value::Int(50)],
                vec![Value::Int(2), Value::Int(30)],
            ],
        );
        let weak = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(9), Value::str("x"), Value::Int(10)],
        );
        assert!(!view_may_affect(&weak, &query, &cached));
        let strong = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(9), Value::str("x"), Value::Int(40)],
        );
        assert!(view_may_affect(&strong, &query, &cached));
        // A tie with the k-th row is conservative.
        let tie = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(9), Value::str("x"), Value::Int(30)],
        );
        assert!(view_may_affect(&tie, &query, &cached));
    }

    /// Under-full top-k results always admit a qualifying row.
    #[test]
    fn topk_underfull_invalidates() {
        let query = q(
            "SELECT toy_id, qty FROM toys ORDER BY qty DESC LIMIT 5",
            vec![],
        );
        let cached = res(
            &["toys.toy_id", "toys.qty"],
            vec![vec![Value::Int(1), Value::Int(50)]],
        );
        let weak = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(9), Value::str("x"), Value::Int(1)],
        );
        assert!(view_may_affect(&weak, &query, &cached));
    }

    /// Deletion with preserved selection attributes: no matching result
    /// row ⇒ do not invalidate.
    #[test]
    fn delete_checks_result_rows() {
        let query = q(
            "SELECT toy_id FROM toys WHERE toy_name = ?",
            vec![Value::str("bear")],
        );
        let cached = res(
            &["toys.toy_id"],
            vec![vec![Value::Int(1)], vec![Value::Int(4)]],
        );
        let hit = u("DELETE FROM toys WHERE toy_id = ?", vec![Value::Int(4)]);
        assert!(view_may_affect(&hit, &query, &cached));
        let miss = u("DELETE FROM toys WHERE toy_id = ?", vec![Value::Int(9)]);
        assert!(!view_may_affect(&miss, &query, &cached));
    }

    /// Deletion selecting on a non-preserved attribute cannot be refined.
    #[test]
    fn delete_unpreserved_attr_conservative() {
        let query = q(
            "SELECT toy_id FROM toys WHERE toy_name = ?",
            vec![Value::str("bear")],
        );
        let cached = res(&["toys.toy_id"], vec![vec![Value::Int(1)]]);
        let del = u("DELETE FROM toys WHERE qty < ?", vec![Value::Int(5)]);
        assert!(view_may_affect(&del, &query, &cached));
    }

    /// The paper's §4.4 modification example: row 5 absent from the cached
    /// result of `qty > 100`, and the new qty = 10 violates the
    /// restriction ⇒ do not invalidate.
    #[test]
    fn modify_example() {
        let query = q(
            "SELECT toy_id FROM toys WHERE qty > ?",
            vec![Value::Int(100)],
        );
        let cached = res(
            &["toys.toy_id"],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        let m = u(
            "UPDATE toys SET qty = ? WHERE toy_id = ?",
            vec![Value::Int(10), Value::Int(5)],
        );
        assert!(!view_may_affect(&m, &query, &cached));
        // New value satisfying the restriction: the row may enter.
        let enter = u(
            "UPDATE toys SET qty = ? WHERE toy_id = ?",
            vec![Value::Int(200), Value::Int(5)],
        );
        assert!(view_may_affect(&enter, &query, &cached));
        // Row present in the result: always invalidate.
        let present = u(
            "UPDATE toys SET qty = ? WHERE toy_id = ?",
            vec![Value::Int(10), Value::Int(1)],
        );
        assert!(view_may_affect(&present, &query, &cached));
    }

    /// Modification of an attribute not used in selection, target absent
    /// from the result: still out.
    #[test]
    fn modify_nonselection_attr_absent_row() {
        let query = q(
            "SELECT toy_id FROM toys WHERE qty > ?",
            vec![Value::Int(100)],
        );
        let cached = res(&["toys.toy_id"], vec![vec![Value::Int(1)]]);
        let m = u(
            "UPDATE toys SET toy_name = ? WHERE toy_id = ?",
            vec![Value::str("renamed"), Value::Int(5)],
        );
        assert!(!view_may_affect(&m, &query, &cached));
    }

    /// Statement-level DNI propagates.
    #[test]
    fn statement_dni_wins() {
        let query = q("SELECT qty FROM toys WHERE toy_id = ?", vec![Value::Int(7)]);
        let cached = res(&["toys.qty"], vec![vec![Value::Int(1)]]);
        let del = u("DELETE FROM toys WHERE toy_id = ?", vec![Value::Int(5)]);
        assert!(!view_may_affect(&del, &query, &cached));
    }

    /// Self-joins disable refinements (conservative).
    #[test]
    fn self_join_conservative() {
        let query = q(
            "SELECT t1.toy_id FROM toys t1, toys t2 \
             WHERE t1.toy_name = ? AND t2.toy_name = ? AND t1.qty > t2.qty",
            vec![Value::str("toyA"), Value::str("toyB")],
        );
        let cached = res(&["t1.toy_id"], vec![vec![Value::Int(10)]]);
        let ins = u(
            "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
            vec![Value::Int(15), Value::str("toyB"), Value::Int(10)],
        );
        assert!(view_may_affect(&ins, &query, &cached));
    }
}
