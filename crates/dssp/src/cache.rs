//! The DSSP's cache of (possibly encrypted) query results.
//!
//! Deterministic encryption makes caching work at every exposure level
//! (footnote 3 of the paper). The lookup key depends on the query
//! template's exposure level:
//!
//! * `view` / `stmt` — the plaintext statement text;
//! * `template` — the template id plus the encrypted parameters;
//! * `blind` — the encrypted statement text.
//!
//! Every key form identifies the same logical entity (template id + bound
//! parameters), so the cache indexes entries by a canonical internal key
//! and additionally records the *wire form* for size accounting.
//!
//! What an invalidation strategy may *see* of an entry is gated by the
//! exposure level through [`CacheEntry::visible_statement`] and
//! [`CacheEntry::visible_result`] — encrypted fields are simply absent
//! from the strategy's view.
//!
//! The cache never stores **empty results**: §2.1.1 assumes no query
//! subject to insertion/deletion invalidation returns an empty result, and
//! the §4.5 primary-key refinement leans on it. Declining to cache empty
//! results enforces the assumption structurally.
//!
//! Two hot paths are index-backed rather than scan-backed:
//!
//! * **Eviction** pops the least-recently-used entry from a `BTreeMap`
//!   keyed by the logical LRU clock (`last_used` values are unique, so
//!   the map's first key is always the victim) — O(log n) per eviction
//!   instead of an O(n) `min_by_key` sweep.
//! * **Invalidation** can restrict itself to *candidate* entries via a
//!   `template_id → keys` secondary index ([`ResultCache::invalidate_candidates`]).
//!   Blind-level entries live in a separate always-candidate set, because
//!   Property 1 makes every blind entry a victim of every update — no
//!   index may ever hide one from an invalidation pass.

use scs_core::ExposureLevel;
use scs_crypto::{CryptoMeter, Encryptor};
use scs_sqlkit::{Query, TemplateId, Value};
use scs_storage::QueryResult;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Canonical identity of a cached query instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub template_id: TemplateId,
    pub params: Vec<Value>,
}

/// A cached query result with exposure-gated visibility.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    key: CacheKey,
    level: ExposureLevel,
    query: Query,
    result: QueryResult,
    /// Approximate stored size in bytes (header + payload, with the
    /// encryption envelope overhead when the result is encrypted).
    pub stored_bytes: usize,
    /// Logical timestamp of the last lookup or store (LRU bookkeeping).
    last_used: u64,
    /// Simulation time (µs) past which the entry may no longer be served
    /// — the staleness lease. `u64::MAX` when the cache has no lease.
    expires_at_micros: u64,
    /// Simulation time (µs) the entry was stored — the freshness plane
    /// ages serves against this birth stamp.
    stored_at_micros: u64,
    /// Home update epoch the entry's result reflects (the proxy stamps
    /// it right after the miss fill; 0 when unstamped).
    stored_epoch: u64,
    /// Invalidation stream `stored_epoch` counts on: 0 for the classic
    /// single home; a shard id when the fill came from a sharded home
    /// (a scatter-gather fill is stamped with its first participant's
    /// stream — the lease, not this stamp, is the staleness bound).
    stored_stream: u64,
}

impl CacheEntry {
    /// The exposure level the entry was cached under.
    pub fn level(&self) -> ExposureLevel {
        self.level
    }

    /// The template id — visible at `template` exposure and above.
    pub fn visible_template_id(&self) -> Option<TemplateId> {
        (self.level >= ExposureLevel::Template).then_some(self.key.template_id)
    }

    /// The full query statement — visible at `stmt` exposure and above.
    pub fn visible_statement(&self) -> Option<&Query> {
        (self.level >= ExposureLevel::Stmt).then_some(&self.query)
    }

    /// The materialized result — visible only at `view` exposure.
    pub fn visible_result(&self) -> Option<&QueryResult> {
        (self.level == ExposureLevel::View).then_some(&self.result)
    }

    /// Serves the stored result to the client (who holds the decryption
    /// key); not part of any invalidation strategy's view.
    pub fn serve(&self) -> &QueryResult {
        &self.result
    }

    pub fn key(&self) -> &CacheKey {
        &self.key
    }

    /// When the entry's staleness lease runs out (µs; `u64::MAX` = no
    /// lease).
    pub fn expires_at_micros(&self) -> u64 {
        self.expires_at_micros
    }

    /// Simulation time the entry was stored (µs).
    pub fn stored_at_micros(&self) -> u64 {
        self.stored_at_micros
    }

    /// Home update epoch the entry's result reflects.
    pub fn stored_epoch(&self) -> u64 {
        self.stored_epoch
    }

    /// Invalidation stream [`CacheEntry::stored_epoch`] counts on.
    pub fn stored_stream(&self) -> u64 {
        self.stored_stream
    }
}

/// What a lease-aware lookup found.
#[derive(Debug)]
pub enum Lookup<'a> {
    /// A live, within-lease entry.
    Hit(&'a CacheEntry),
    /// An entry existed but its lease had run out; it has been dropped.
    Expired,
    /// No entry.
    Miss,
}

/// What [`ResultCache::store_with_evictions`] did: whether the entry went
/// in, whether it displaced a live entry under the same key, and which
/// entries the capacity bound pushed out to make room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreOutcome {
    pub stored: bool,
    /// A live entry already existed for the key; its bytes were
    /// reconciled out of the accounting before the new entry went in.
    /// Replacement is *not* an eviction.
    pub replaced: bool,
    pub evicted: Vec<CacheKey>,
}

/// The result cache, optionally bounded with LRU eviction.
pub struct ResultCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// LRU order: `last_used → key`. The logical clock advances on every
    /// store and lookup, so `last_used` values are unique and the map's
    /// first entry is always the eviction victim.
    lru: BTreeMap<u64, CacheKey>,
    /// Secondary invalidation index: canonical template id → keys of
    /// entries cached at `template` exposure or above. Blind entries are
    /// deliberately excluded — they are candidates for *every* update
    /// (Property 1) and live in `blind_keys` instead.
    by_template: HashMap<TemplateId, HashSet<CacheKey>>,
    /// Keys of blind-level entries: unconditionally part of every
    /// candidate scan.
    blind_keys: HashSet<CacheKey>,
    encryptor: Encryptor,
    /// Maximum number of entries (`None` = unbounded).
    capacity: Option<usize>,
    /// Logical clock for LRU bookkeeping.
    clock: u64,
    /// Entries dropped by capacity eviction (not by invalidation).
    evictions: u64,
    /// Stores that displaced a live entry under the same key.
    replacements: u64,
    /// Sum of `stored_bytes` over the *live* entries; replaced, evicted,
    /// expired, and invalidated entries are reconciled out.
    stored_bytes_total: u64,
    /// Staleness lease applied to stored entries (`None` = entries never
    /// expire, the paper's setting).
    lease_micros: Option<u64>,
    /// Current simulation time (µs), fed by the proxy; stays 0 outside a
    /// simulation.
    now_micros: u64,
    /// Entries dropped because their lease ran out before a lookup.
    lease_expirations: u64,
}

impl ResultCache {
    pub fn new(encryptor: Encryptor) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            by_template: HashMap::new(),
            blind_keys: HashSet::new(),
            encryptor,
            capacity: None,
            clock: 0,
            evictions: 0,
            replacements: 0,
            stored_bytes_total: 0,
            lease_micros: None,
            now_micros: 0,
            lease_expirations: 0,
        }
    }

    /// A cache bounded to `capacity` entries; the least-recently-used
    /// entry is evicted when a store would exceed it.
    pub fn with_capacity(encryptor: Encryptor, capacity: usize) -> ResultCache {
        let mut c = ResultCache::new(encryptor);
        c.capacity = Some(capacity.max(1));
        c
    }

    /// Entries evicted due to the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Stores that displaced a live entry under the same key.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Sum of `stored_bytes` over the live entries.
    pub fn stored_bytes_total(&self) -> u64 {
        self.stored_bytes_total
    }

    /// Bounds staleness: stored entries expire `lease` µs after the
    /// store. `None` restores the unbounded default. Only affects
    /// entries stored afterwards.
    pub fn set_lease_micros(&mut self, lease: Option<u64>) {
        self.lease_micros = lease;
    }

    /// Attaches an envelope seal/open meter to this cache's encryptor
    /// (the leakage audit plane's crypto accounting). Subsequent key
    /// derivations and payload seals/opens tally on `meter`.
    pub fn meter_crypto(&mut self, meter: std::sync::Arc<CryptoMeter>) {
        self.encryptor.set_meter(meter);
    }

    /// Advances the cache's notion of "now" (µs). Leases are judged
    /// against this clock.
    pub fn set_now_micros(&mut self, now: u64) {
        self.now_micros = now;
    }

    /// Entries dropped at lookup because their lease had run out.
    pub fn lease_expirations(&self) -> u64 {
        self.lease_expirations
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a fully-built entry into every structure. The caller must
    /// have detached any prior entry under the same key.
    fn attach(&mut self, e: CacheEntry) {
        self.stored_bytes_total += e.stored_bytes as u64;
        self.lru.insert(e.last_used, e.key.clone());
        if e.level >= ExposureLevel::Template {
            self.by_template
                .entry(e.key.template_id)
                .or_default()
                .insert(e.key.clone());
        } else {
            self.blind_keys.insert(e.key.clone());
        }
        self.entries.insert(e.key.clone(), e);
    }

    /// Removes an entry from every structure, keeping the LRU map and
    /// the invalidation indexes consistent with the entry map.
    fn detach(&mut self, key: &CacheKey) -> Option<CacheEntry> {
        let e = self.entries.remove(key)?;
        self.stored_bytes_total -= e.stored_bytes as u64;
        self.lru.remove(&e.last_used);
        if e.level >= ExposureLevel::Template {
            if let Some(set) = self.by_template.get_mut(&key.template_id) {
                set.remove(key);
                if set.is_empty() {
                    self.by_template.remove(&key.template_id);
                }
            }
        } else {
            self.blind_keys.remove(key);
        }
        Some(e)
    }

    /// Looks up a query, refreshing its LRU position. The key form the
    /// client sends depends on the exposure level, but all forms resolve
    /// to the canonical key. An entry whose lease has run out is dropped
    /// and reported as [`Lookup::Expired`] — it must never be served,
    /// however the home server is faring.
    pub fn lookup_classified(&mut self, q: &Query) -> Lookup<'_> {
        self.clock += 1;
        let clock = self.clock;
        let key = CacheKey {
            template_id: q.template_id,
            params: q.params.clone(),
        };
        let expired = match self.entries.get(&key) {
            None => return Lookup::Miss,
            Some(e) => e.expires_at_micros < self.now_micros,
        };
        if expired {
            self.detach(&key);
            self.lease_expirations += 1;
            return Lookup::Expired;
        }
        let e = self.entries.get_mut(&key).expect("present and live");
        let prior = e.last_used;
        e.last_used = clock;
        self.lru.remove(&prior);
        self.lru.insert(clock, key.clone());
        Lookup::Hit(&self.entries[&key])
    }

    /// [`ResultCache::lookup_classified`] collapsed to an `Option` —
    /// expired entries read as misses.
    pub fn lookup(&mut self, q: &Query) -> Option<&CacheEntry> {
        match self.lookup_classified(q) {
            Lookup::Hit(e) => Some(e),
            Lookup::Expired | Lookup::Miss => None,
        }
    }

    /// Whether a fresh (within-lease) entry for `q` is present: a
    /// read-only probe with no LRU refresh and no expiry side effects.
    /// The overload layer routes on this without touching the home tier
    /// — an expired entry reads as not-fresh, exactly as
    /// [`ResultCache::lookup_classified`] would refuse to serve it.
    pub fn peek_fresh(&self, q: &Query) -> bool {
        self.peek(q)
            .is_some_and(|e| e.expires_at_micros >= self.now_micros)
    }

    /// Read-only lookup (no LRU refresh), for tests and diagnostics.
    pub fn peek(&self, q: &Query) -> Option<&CacheEntry> {
        self.entries.get(&CacheKey {
            template_id: q.template_id,
            params: q.params.clone(),
        })
    }

    /// Stores a result under the query's exposure level. Empty results are
    /// not cached (see module docs); returns whether the entry was stored.
    pub fn store(&mut self, q: &Query, result: QueryResult, level: ExposureLevel) -> bool {
        self.store_with_evictions(q, result, level).stored
    }

    /// [`ResultCache::store`], additionally reporting whether a live
    /// entry was replaced and which entries the capacity bound evicted —
    /// the proxy's telemetry attributes each victim to its query
    /// template.
    pub fn store_with_evictions(
        &mut self,
        q: &Query,
        result: QueryResult,
        level: ExposureLevel,
    ) -> StoreOutcome {
        if result.is_empty() {
            return StoreOutcome {
                stored: false,
                replaced: false,
                evicted: Vec::new(),
            };
        }
        let key = CacheKey {
            template_id: q.template_id,
            params: q.params.clone(),
        };
        let stored_bytes = self.stored_size(q, &result, level);
        self.clock += 1;
        let expires_at_micros = match self.lease_micros {
            Some(lease) => self.now_micros.saturating_add(lease),
            None => u64::MAX,
        };
        // Re-storing an existing key is a replacement, not an eviction:
        // the prior entry's bytes and index membership are reconciled
        // out before the new entry goes in.
        let replaced = self.detach(&key).is_some();
        if replaced {
            self.replacements += 1;
        }
        self.attach(CacheEntry {
            key,
            level,
            query: q.clone(),
            result,
            stored_bytes,
            last_used: self.clock,
            expires_at_micros,
            stored_at_micros: self.now_micros,
            stored_epoch: 0,
            stored_stream: 0,
        });
        let mut evicted = Vec::new();
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let victim = self
                    .lru
                    .iter()
                    .next()
                    .map(|(_, k)| k.clone())
                    .expect("nonempty while over capacity");
                self.detach(&victim);
                self.evictions += 1;
                evicted.push(victim);
            }
        }
        StoreOutcome {
            stored: true,
            replaced,
            evicted,
        }
    }

    /// Removes every entry the predicate marks for invalidation; returns
    /// `(entries_scanned, entries_invalidated)`. This is the full-scan
    /// path: recovery flushes and view-level inspection must see every
    /// entry.
    pub fn invalidate_where(
        &mut self,
        mut must_invalidate: impl FnMut(&CacheEntry) -> bool,
    ) -> (usize, usize) {
        let keys: Vec<CacheKey> = self.entries.keys().cloned().collect();
        self.invalidate_keys(keys, &mut must_invalidate)
    }

    /// Like [`ResultCache::invalidate_where`], but only visits
    /// *candidate* entries: every blind-level entry (Property 1 — either
    /// side blind ⇒ invalidate, so no index may hide them) plus the
    /// entries of the given query templates. Callers pass the templates
    /// the IPM marks as conflicting with the update; entries of
    /// untouched templates are never scanned, which is the point.
    pub fn invalidate_candidates(
        &mut self,
        templates: &[TemplateId],
        mut must_invalidate: impl FnMut(&CacheEntry) -> bool,
    ) -> (usize, usize) {
        let mut keys: Vec<CacheKey> = self.blind_keys.iter().cloned().collect();
        for t in templates {
            if let Some(set) = self.by_template.get(t) {
                keys.extend(set.iter().cloned());
            }
        }
        self.invalidate_keys(keys, &mut must_invalidate)
    }

    fn invalidate_keys(
        &mut self,
        keys: Vec<CacheKey>,
        must_invalidate: &mut impl FnMut(&CacheEntry) -> bool,
    ) -> (usize, usize) {
        let scanned = keys.len();
        let mut invalidated = 0;
        for key in keys {
            let kill = must_invalidate(&self.entries[&key]);
            if kill {
                self.detach(&key);
                invalidated += 1;
            }
        }
        (scanned, invalidated)
    }

    /// Detaches and returns every entry the predicate selects, intact —
    /// the donor half of an elastic-fleet state handoff. The entries keep
    /// their `stored_at` / `expires_at` / `stored_epoch` stamps, so a
    /// receiver that imports them inherits exactly the staleness bound
    /// the donor was operating under; nothing is re-aged or re-leased.
    pub fn extract_where(
        &mut self,
        mut select: impl FnMut(&CacheEntry) -> bool,
    ) -> Vec<CacheEntry> {
        let keys: Vec<CacheKey> = self
            .entries
            .values()
            .filter(|e| select(e))
            .map(|e| e.key.clone())
            .collect();
        keys.into_iter().filter_map(|k| self.detach(&k)).collect()
    }

    /// Inserts a handed-off entry, preserving its store-time stamps (the
    /// receiver half of [`ResultCache::extract_where`]). An existing live
    /// entry under the same key is replaced; the capacity bound applies
    /// as for any store. Returns whether the entry went in (an entry
    /// whose lease has already run out is dropped, not imported).
    pub fn import(&mut self, mut e: CacheEntry) -> bool {
        if e.expires_at_micros < self.now_micros {
            self.lease_expirations += 1;
            return false;
        }
        self.clock += 1;
        e.last_used = self.clock;
        if self.detach(&e.key).is_some() {
            self.replacements += 1;
        }
        self.attach(e);
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let victim = self
                    .lru
                    .iter()
                    .next()
                    .map(|(_, k)| k.clone())
                    .expect("nonempty while over capacity");
                self.detach(&victim);
                self.evictions += 1;
            }
        }
        true
    }

    /// Stamps the home epoch a just-stored entry's result reflects. The
    /// proxy calls this right after the miss fill, once it knows the
    /// epoch the home served at; a no-op when the entry was not stored
    /// (empty result) or has already been displaced.
    pub fn set_stored_epoch(&mut self, q: &Query, epoch: u64) {
        let key = CacheKey {
            template_id: q.template_id,
            params: q.params.clone(),
        };
        if let Some(e) = self.entries.get_mut(&key) {
            e.stored_epoch = epoch;
        }
    }

    /// Stamps the invalidation stream *and* epoch a just-stored entry's
    /// result reflects — the sharded-home fill path, where the epoch
    /// counts on the owning shard's stream rather than stream 0.
    pub fn set_stored_provenance(&mut self, q: &Query, stream: u64, epoch: u64) {
        let key = CacheKey {
            template_id: q.template_id,
            params: q.params.clone(),
        };
        if let Some(e) = self.entries.get_mut(&key) {
            e.stored_stream = stream;
            e.stored_epoch = epoch;
        }
    }

    /// Drops everything (a blind strategy's response to any update).
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.lru.clear();
        self.by_template.clear();
        self.blind_keys.clear();
        self.stored_bytes_total = 0;
        n
    }

    /// Iterates over entries (used by statistics and tests).
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Approximate stored size: encrypted payloads carry the envelope
    /// overhead of the deterministic cipher.
    fn stored_size(&self, q: &Query, result: &QueryResult, level: ExposureLevel) -> usize {
        let key_bytes = match level {
            ExposureLevel::View | ExposureLevel::Stmt => q.statement_text().len(),
            ExposureLevel::Template => {
                8 + self.encryptor.encrypt_str(&format!("{:?}", q.params)).len()
            }
            ExposureLevel::Blind => self.encryptor.encrypt_str(&q.statement_text()).len(),
        };
        let payload = result.approx_size_bytes();
        let payload_bytes = if level == ExposureLevel::View {
            payload
        } else {
            payload + 8 // envelope overhead of the toy cipher
        };
        key_bytes + payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scs_sqlkit::parse_query;
    use std::sync::Arc;

    fn query(tid: usize, param: i64) -> Query {
        let t = Arc::new(parse_query("SELECT a FROM t WHERE b = ?").unwrap());
        Query::bind(tid, t, vec![Value::Int(param)]).unwrap()
    }

    fn result(n: usize) -> QueryResult {
        QueryResult::new(
            vec!["t.a".into()],
            (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        )
    }

    fn cache() -> ResultCache {
        ResultCache::new(Encryptor::for_app("test"))
    }

    #[test]
    fn store_and_lookup() {
        let mut c = cache();
        let q = query(0, 5);
        assert!(c.store(&q, result(2), ExposureLevel::View));
        assert_eq!(c.lookup(&q).unwrap().serve().len(), 2);
        assert!(c.lookup(&query(0, 6)).is_none());
        assert!(c.lookup(&query(1, 5)).is_none());
    }

    #[test]
    fn empty_results_not_cached() {
        let mut c = cache();
        let q = query(0, 5);
        assert!(!c.store(&q, result(0), ExposureLevel::View));
        assert!(c.lookup(&q).is_none());
    }

    #[test]
    fn visibility_gates_by_level() {
        let mut c = cache();
        for (level, tid) in [
            (ExposureLevel::View, 0),
            (ExposureLevel::Stmt, 1),
            (ExposureLevel::Template, 2),
            (ExposureLevel::Blind, 3),
        ] {
            c.store(&query(tid, 1), result(1), level);
        }
        let by_tid = |tid: usize| c.peek(&query(tid, 1)).unwrap();
        assert!(by_tid(0).visible_result().is_some());
        assert!(by_tid(0).visible_statement().is_some());
        assert!(by_tid(1).visible_result().is_none());
        assert!(by_tid(1).visible_statement().is_some());
        assert!(by_tid(2).visible_statement().is_none());
        assert_eq!(by_tid(2).visible_template_id(), Some(2));
        assert!(by_tid(3).visible_template_id().is_none());
        // Serving always works — the client decrypts.
        assert_eq!(by_tid(3).serve().len(), 1);
    }

    #[test]
    fn invalidate_where_removes_matches() {
        let mut c = cache();
        for p in 0..10 {
            c.store(&query(0, p), result(1), ExposureLevel::View);
        }
        let (scanned, dropped) =
            c.invalidate_where(|e| matches!(e.key().params[0], Value::Int(p) if p % 2 == 0));
        assert_eq!(scanned, 10);
        assert_eq!(dropped, 5);
        assert_eq!(c.len(), 5);
        assert!(c.lookup(&query(0, 1)).is_some());
        assert!(c.lookup(&query(0, 2)).is_none());
    }

    #[test]
    fn candidate_scan_visits_only_candidate_templates() {
        let mut c = cache();
        // Template 0: 4 entries, template 1: 3 entries, template 2: 2
        // entries — all at template exposure, so all indexed.
        for p in 0..4 {
            c.store(&query(0, p), result(1), ExposureLevel::Template);
        }
        for p in 0..3 {
            c.store(&query(1, p), result(1), ExposureLevel::Stmt);
        }
        for p in 0..2 {
            c.store(&query(2, p), result(1), ExposureLevel::View);
        }
        // Only template 1 is a candidate: the scan must visit exactly its
        // 3 entries, not all 9.
        let (scanned, dropped) = c.invalidate_candidates(&[1], |_| true);
        assert_eq!(scanned, 3);
        assert_eq!(dropped, 3);
        assert_eq!(c.len(), 6);
        assert!(c.peek(&query(0, 0)).is_some());
        assert!(c.peek(&query(2, 0)).is_some());
        // A template with no cached entries scans nothing.
        let (scanned, dropped) = c.invalidate_candidates(&[7], |_| true);
        assert_eq!((scanned, dropped), (0, 0));
    }

    #[test]
    fn blind_entries_are_always_candidates() {
        let mut c = cache();
        c.store(&query(0, 1), result(1), ExposureLevel::Blind);
        c.store(&query(1, 1), result(1), ExposureLevel::Template);
        // Even with an empty template list, every blind entry is visited
        // — Property 1 says no index may hide it from an update.
        let (scanned, dropped) = c.invalidate_candidates(&[], |_| true);
        assert_eq!(scanned, 1);
        assert_eq!(dropped, 1);
        assert!(c.peek(&query(0, 1)).is_none(), "blind entry invalidated");
        assert!(c.peek(&query(1, 1)).is_some(), "non-candidate survived");
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = cache();
        c.store(&query(0, 1), result(1), ExposureLevel::Blind);
        c.store(&query(0, 2), result(1), ExposureLevel::Blind);
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
        assert_eq!(c.stored_bytes_total(), 0);
        // The indexes were cleared too: a candidate scan finds nothing.
        let (scanned, _) = c.invalidate_candidates(&[0], |_| true);
        assert_eq!(scanned, 0);
    }

    #[test]
    fn restore_overwrites_and_reports_replacement() {
        let mut c = cache();
        let q = query(0, 1);
        let first = c.store_with_evictions(&q, result(1), ExposureLevel::View);
        assert!(first.stored && !first.replaced);
        let second = c.store_with_evictions(&q, result(3), ExposureLevel::View);
        assert!(second.stored && second.replaced);
        assert!(second.evicted.is_empty(), "replacement is not an eviction");
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&q).unwrap().serve().len(), 3);
        assert_eq!(c.replacements(), 1);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn replacement_reconciles_stored_bytes() {
        let mut c = cache();
        let q = query(0, 1);
        c.store(&q, result(5), ExposureLevel::View);
        let big = c.stored_bytes_total();
        c.store(&q, result(1), ExposureLevel::View);
        let small = c.stored_bytes_total();
        assert_eq!(small, c.peek(&q).unwrap().stored_bytes as u64);
        assert!(small < big, "replaced entry's bytes were reconciled out");
        // Replacing at a different exposure level moves the entry between
        // indexes; the old membership must not linger.
        c.store(&q, result(2), ExposureLevel::Blind);
        let (scanned, _) = c.invalidate_candidates(&[0], |_| false);
        assert_eq!(scanned, 1, "entry counted once, in the blind set");
    }

    #[test]
    fn stored_bytes_total_tracks_removals() {
        let mut c = ResultCache::with_capacity(Encryptor::for_app("test"), 2);
        c.store(&query(0, 1), result(1), ExposureLevel::View);
        c.store(&query(0, 2), result(1), ExposureLevel::View);
        c.store(&query(0, 3), result(1), ExposureLevel::View); // evicts one
        let live: u64 = c.iter().map(|e| e.stored_bytes as u64).sum();
        assert_eq!(c.stored_bytes_total(), live);
        c.invalidate_where(|_| true);
        assert_eq!(c.stored_bytes_total(), 0);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut c = ResultCache::with_capacity(Encryptor::for_app("test"), 3);
        for p in 0..3 {
            c.store(&query(0, p), result(1), ExposureLevel::View);
        }
        // Touch 0 and 1; storing a 4th entry must evict 2 (the LRU).
        c.lookup(&query(0, 0));
        c.lookup(&query(0, 1));
        c.store(&query(0, 3), result(1), ExposureLevel::View);
        assert_eq!(c.len(), 3);
        assert!(c.peek(&query(0, 0)).is_some());
        assert!(c.peek(&query(0, 1)).is_some());
        assert!(c.peek(&query(0, 2)).is_none(), "LRU victim");
        assert!(c.peek(&query(0, 3)).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn eviction_order_is_exactly_least_recently_used() {
        // Pins the victim sequence under interleaved stores and lookups,
        // so the order-tracked eviction structure provably matches the
        // old full-scan `min_by_key` semantics.
        let mut c = ResultCache::with_capacity(Encryptor::for_app("test"), 4);
        for p in 0..4 {
            c.store(&query(0, p), result(1), ExposureLevel::View);
        }
        // Recency (old → new) is now 0,1,2,3. Touch 0 and 2: 1,3,0,2.
        c.lookup(&query(0, 0));
        c.lookup(&query(0, 2));
        let mut victims = Vec::new();
        for p in 4..8 {
            let outcome = c.store_with_evictions(&query(0, p), result(1), ExposureLevel::View);
            victims.extend(outcome.evicted.into_iter().map(|k| k.params[0].clone()));
        }
        assert_eq!(
            victims,
            vec![Value::Int(1), Value::Int(3), Value::Int(0), Value::Int(2)],
            "victims fall in exact LRU order"
        );
        assert_eq!(c.evictions(), 4);
    }

    #[test]
    fn store_outcome_reports_victims() {
        let mut c = ResultCache::with_capacity(Encryptor::for_app("test"), 2);
        assert!(c
            .store_with_evictions(&query(0, 1), result(1), ExposureLevel::View)
            .evicted
            .is_empty());
        c.store(&query(0, 2), result(1), ExposureLevel::View);
        let outcome = c.store_with_evictions(&query(0, 3), result(1), ExposureLevel::View);
        assert!(outcome.stored);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(outcome.evicted[0].params, vec![Value::Int(1)]);
        // Empty results: not stored, nothing evicted.
        let noop = c.store_with_evictions(&query(0, 9), result(0), ExposureLevel::View);
        assert!(!noop.stored && !noop.replaced && noop.evicted.is_empty());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = cache();
        for p in 0..1000 {
            c.store(&query(0, p), result(1), ExposureLevel::View);
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn capacity_of_zero_clamps_to_one() {
        let mut c = ResultCache::with_capacity(Encryptor::for_app("test"), 0);
        c.store(&query(0, 1), result(1), ExposureLevel::View);
        c.store(&query(0, 2), result(1), ExposureLevel::View);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lease_expiry_drops_entries_at_lookup() {
        let mut c = cache();
        c.set_lease_micros(Some(100));
        c.set_now_micros(1_000);
        let q = query(0, 1);
        c.store(&q, result(2), ExposureLevel::View);
        // Within the lease window: served.
        c.set_now_micros(1_100);
        assert!(matches!(c.lookup_classified(&q), Lookup::Hit(_)));
        // Past the lease: dropped, classified as expired, then gone.
        c.set_now_micros(1_101);
        assert!(matches!(c.lookup_classified(&q), Lookup::Expired));
        assert!(matches!(c.lookup_classified(&q), Lookup::Miss));
        assert_eq!(c.lease_expirations(), 1);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stored_bytes_total(), 0);
    }

    #[test]
    fn no_lease_means_no_expiry() {
        let mut c = cache();
        let q = query(0, 1);
        c.store(&q, result(1), ExposureLevel::View);
        c.set_now_micros(u64::MAX - 1);
        assert!(c.lookup(&q).is_some());
        assert_eq!(c.lease_expirations(), 0);
    }

    #[test]
    fn restore_renews_the_lease() {
        let mut c = cache();
        c.set_lease_micros(Some(50));
        let q = query(0, 1);
        c.set_now_micros(0);
        c.store(&q, result(1), ExposureLevel::View);
        c.set_now_micros(40);
        c.store(&q, result(3), ExposureLevel::View);
        // The first store's lease (0..=50) has passed, the second's
        // (40..=90) has not.
        c.set_now_micros(85);
        assert_eq!(c.lookup(&q).unwrap().serve().len(), 3);
    }

    #[test]
    fn encrypted_entries_are_larger() {
        let mut c = cache();
        c.store(&query(0, 1), result(5), ExposureLevel::View);
        c.store(&query(1, 1), result(5), ExposureLevel::Blind);
        let view = c.lookup(&query(0, 1)).unwrap().stored_bytes;
        let blind = c.lookup(&query(1, 1)).unwrap().stored_bytes;
        assert!(blind > view, "encryption envelope adds overhead");
    }
}
