//! The DSSP's cache of (possibly encrypted) query results.
//!
//! Deterministic encryption makes caching work at every exposure level
//! (footnote 3 of the paper). The lookup key depends on the query
//! template's exposure level:
//!
//! * `view` / `stmt` — the plaintext statement text;
//! * `template` — the template id plus the encrypted parameters;
//! * `blind` — the encrypted statement text.
//!
//! Every key form identifies the same logical entity (template id + bound
//! parameters), so the cache indexes entries by a canonical internal key
//! and additionally records the *wire form* for size accounting.
//!
//! What an invalidation strategy may *see* of an entry is gated by the
//! exposure level through [`CacheEntry::visible_statement`] and
//! [`CacheEntry::visible_result`] — encrypted fields are simply absent
//! from the strategy's view.
//!
//! The cache never stores **empty results**: §2.1.1 assumes no query
//! subject to insertion/deletion invalidation returns an empty result, and
//! the §4.5 primary-key refinement leans on it. Declining to cache empty
//! results enforces the assumption structurally.

use scs_core::ExposureLevel;
use scs_crypto::Encryptor;
use scs_sqlkit::{Query, TemplateId, Value};
use scs_storage::QueryResult;
use std::collections::HashMap;

/// Canonical identity of a cached query instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub template_id: TemplateId,
    pub params: Vec<Value>,
}

/// A cached query result with exposure-gated visibility.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    key: CacheKey,
    level: ExposureLevel,
    query: Query,
    result: QueryResult,
    /// Approximate stored size in bytes (header + payload, with the
    /// encryption envelope overhead when the result is encrypted).
    pub stored_bytes: usize,
    /// Logical timestamp of the last lookup or store (LRU bookkeeping).
    last_used: u64,
    /// Simulation time (µs) past which the entry may no longer be served
    /// — the staleness lease. `u64::MAX` when the cache has no lease.
    expires_at_micros: u64,
}

impl CacheEntry {
    /// The exposure level the entry was cached under.
    pub fn level(&self) -> ExposureLevel {
        self.level
    }

    /// The template id — visible at `template` exposure and above.
    pub fn visible_template_id(&self) -> Option<TemplateId> {
        (self.level >= ExposureLevel::Template).then_some(self.key.template_id)
    }

    /// The full query statement — visible at `stmt` exposure and above.
    pub fn visible_statement(&self) -> Option<&Query> {
        (self.level >= ExposureLevel::Stmt).then_some(&self.query)
    }

    /// The materialized result — visible only at `view` exposure.
    pub fn visible_result(&self) -> Option<&QueryResult> {
        (self.level == ExposureLevel::View).then_some(&self.result)
    }

    /// Serves the stored result to the client (who holds the decryption
    /// key); not part of any invalidation strategy's view.
    pub fn serve(&self) -> &QueryResult {
        &self.result
    }

    pub fn key(&self) -> &CacheKey {
        &self.key
    }

    /// When the entry's staleness lease runs out (µs; `u64::MAX` = no
    /// lease).
    pub fn expires_at_micros(&self) -> u64 {
        self.expires_at_micros
    }
}

/// What a lease-aware lookup found.
#[derive(Debug)]
pub enum Lookup<'a> {
    /// A live, within-lease entry.
    Hit(&'a CacheEntry),
    /// An entry existed but its lease had run out; it has been dropped.
    Expired,
    /// No entry.
    Miss,
}

/// What [`ResultCache::store_with_evictions`] did: whether the entry went
/// in, and which entries the capacity bound pushed out to make room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreOutcome {
    pub stored: bool,
    pub evicted: Vec<CacheKey>,
}

/// The result cache, optionally bounded with LRU eviction.
pub struct ResultCache {
    entries: HashMap<CacheKey, CacheEntry>,
    encryptor: Encryptor,
    /// Maximum number of entries (`None` = unbounded).
    capacity: Option<usize>,
    /// Logical clock for LRU bookkeeping.
    clock: u64,
    /// Entries dropped by capacity eviction (not by invalidation).
    evictions: u64,
    /// Staleness lease applied to stored entries (`None` = entries never
    /// expire, the paper's setting).
    lease_micros: Option<u64>,
    /// Current simulation time (µs), fed by the proxy; stays 0 outside a
    /// simulation.
    now_micros: u64,
    /// Entries dropped because their lease ran out before a lookup.
    lease_expirations: u64,
}

impl ResultCache {
    pub fn new(encryptor: Encryptor) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            encryptor,
            capacity: None,
            clock: 0,
            evictions: 0,
            lease_micros: None,
            now_micros: 0,
            lease_expirations: 0,
        }
    }

    /// A cache bounded to `capacity` entries; the least-recently-used
    /// entry is evicted when a store would exceed it.
    pub fn with_capacity(encryptor: Encryptor, capacity: usize) -> ResultCache {
        let mut c = ResultCache::new(encryptor);
        c.capacity = Some(capacity.max(1));
        c
    }

    /// Entries evicted due to the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bounds staleness: stored entries expire `lease` µs after the
    /// store. `None` restores the unbounded default. Only affects
    /// entries stored afterwards.
    pub fn set_lease_micros(&mut self, lease: Option<u64>) {
        self.lease_micros = lease;
    }

    /// Advances the cache's notion of "now" (µs). Leases are judged
    /// against this clock.
    pub fn set_now_micros(&mut self, now: u64) {
        self.now_micros = now;
    }

    /// Entries dropped at lookup because their lease had run out.
    pub fn lease_expirations(&self) -> u64 {
        self.lease_expirations
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a query, refreshing its LRU position. The key form the
    /// client sends depends on the exposure level, but all forms resolve
    /// to the canonical key. An entry whose lease has run out is dropped
    /// and reported as [`Lookup::Expired`] — it must never be served,
    /// however the home server is faring.
    pub fn lookup_classified(&mut self, q: &Query) -> Lookup<'_> {
        self.clock += 1;
        let clock = self.clock;
        let key = CacheKey {
            template_id: q.template_id,
            params: q.params.clone(),
        };
        let expired = match self.entries.get(&key) {
            None => return Lookup::Miss,
            Some(e) => e.expires_at_micros < self.now_micros,
        };
        if expired {
            self.entries.remove(&key);
            self.lease_expirations += 1;
            return Lookup::Expired;
        }
        let e = self.entries.get_mut(&key).expect("present and live");
        e.last_used = clock;
        Lookup::Hit(&*e)
    }

    /// [`ResultCache::lookup_classified`] collapsed to an `Option` —
    /// expired entries read as misses.
    pub fn lookup(&mut self, q: &Query) -> Option<&CacheEntry> {
        match self.lookup_classified(q) {
            Lookup::Hit(e) => Some(e),
            Lookup::Expired | Lookup::Miss => None,
        }
    }

    /// Whether a fresh (within-lease) entry for `q` is present: a
    /// read-only probe with no LRU refresh and no expiry side effects.
    /// The overload layer routes on this without touching the home tier
    /// — an expired entry reads as not-fresh, exactly as
    /// [`ResultCache::lookup_classified`] would refuse to serve it.
    pub fn peek_fresh(&self, q: &Query) -> bool {
        self.peek(q)
            .is_some_and(|e| e.expires_at_micros >= self.now_micros)
    }

    /// Read-only lookup (no LRU refresh), for tests and diagnostics.
    pub fn peek(&self, q: &Query) -> Option<&CacheEntry> {
        self.entries.get(&CacheKey {
            template_id: q.template_id,
            params: q.params.clone(),
        })
    }

    /// Stores a result under the query's exposure level. Empty results are
    /// not cached (see module docs); returns whether the entry was stored.
    pub fn store(&mut self, q: &Query, result: QueryResult, level: ExposureLevel) -> bool {
        self.store_with_evictions(q, result, level).stored
    }

    /// [`ResultCache::store`], additionally reporting which entries the
    /// capacity bound evicted — the proxy's telemetry attributes each
    /// victim to its query template.
    pub fn store_with_evictions(
        &mut self,
        q: &Query,
        result: QueryResult,
        level: ExposureLevel,
    ) -> StoreOutcome {
        if result.is_empty() {
            return StoreOutcome {
                stored: false,
                evicted: Vec::new(),
            };
        }
        let key = CacheKey {
            template_id: q.template_id,
            params: q.params.clone(),
        };
        let stored_bytes = self.stored_size(q, &result, level);
        self.clock += 1;
        let expires_at_micros = match self.lease_micros {
            Some(lease) => self.now_micros.saturating_add(lease),
            None => u64::MAX,
        };
        self.entries.insert(
            key.clone(),
            CacheEntry {
                key,
                level,
                query: q.clone(),
                result,
                stored_bytes,
                last_used: self.clock,
                expires_at_micros,
            },
        );
        let mut evicted = Vec::new();
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let victim = self
                    .entries
                    .values()
                    .min_by_key(|e| e.last_used)
                    .map(|e| e.key.clone())
                    .expect("nonempty while over capacity");
                self.entries.remove(&victim);
                self.evictions += 1;
                evicted.push(victim);
            }
        }
        StoreOutcome {
            stored: true,
            evicted,
        }
    }

    /// Removes every entry the predicate marks for invalidation; returns
    /// `(entries_scanned, entries_invalidated)`.
    pub fn invalidate_where(
        &mut self,
        mut must_invalidate: impl FnMut(&CacheEntry) -> bool,
    ) -> (usize, usize) {
        let scanned = self.entries.len();
        let before = self.entries.len();
        self.entries.retain(|_, e| !must_invalidate(e));
        (scanned, before - self.entries.len())
    }

    /// Drops everything (a blind strategy's response to any update).
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Iterates over entries (used by statistics and tests).
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Approximate stored size: encrypted payloads carry the envelope
    /// overhead of the deterministic cipher.
    fn stored_size(&self, q: &Query, result: &QueryResult, level: ExposureLevel) -> usize {
        let key_bytes = match level {
            ExposureLevel::View | ExposureLevel::Stmt => q.statement_text().len(),
            ExposureLevel::Template => {
                8 + self.encryptor.encrypt_str(&format!("{:?}", q.params)).len()
            }
            ExposureLevel::Blind => self.encryptor.encrypt_str(&q.statement_text()).len(),
        };
        let payload = result.approx_size_bytes();
        let payload_bytes = if level == ExposureLevel::View {
            payload
        } else {
            payload + 8 // envelope overhead of the toy cipher
        };
        key_bytes + payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scs_sqlkit::parse_query;
    use std::sync::Arc;

    fn query(tid: usize, param: i64) -> Query {
        let t = Arc::new(parse_query("SELECT a FROM t WHERE b = ?").unwrap());
        Query::bind(tid, t, vec![Value::Int(param)]).unwrap()
    }

    fn result(n: usize) -> QueryResult {
        QueryResult::new(
            vec!["t.a".into()],
            (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        )
    }

    fn cache() -> ResultCache {
        ResultCache::new(Encryptor::for_app("test"))
    }

    #[test]
    fn store_and_lookup() {
        let mut c = cache();
        let q = query(0, 5);
        assert!(c.store(&q, result(2), ExposureLevel::View));
        assert_eq!(c.lookup(&q).unwrap().serve().len(), 2);
        assert!(c.lookup(&query(0, 6)).is_none());
        assert!(c.lookup(&query(1, 5)).is_none());
    }

    #[test]
    fn empty_results_not_cached() {
        let mut c = cache();
        let q = query(0, 5);
        assert!(!c.store(&q, result(0), ExposureLevel::View));
        assert!(c.lookup(&q).is_none());
    }

    #[test]
    fn visibility_gates_by_level() {
        let mut c = cache();
        for (level, tid) in [
            (ExposureLevel::View, 0),
            (ExposureLevel::Stmt, 1),
            (ExposureLevel::Template, 2),
            (ExposureLevel::Blind, 3),
        ] {
            c.store(&query(tid, 1), result(1), level);
        }
        let by_tid = |tid: usize| c.peek(&query(tid, 1)).unwrap();
        assert!(by_tid(0).visible_result().is_some());
        assert!(by_tid(0).visible_statement().is_some());
        assert!(by_tid(1).visible_result().is_none());
        assert!(by_tid(1).visible_statement().is_some());
        assert!(by_tid(2).visible_statement().is_none());
        assert_eq!(by_tid(2).visible_template_id(), Some(2));
        assert!(by_tid(3).visible_template_id().is_none());
        // Serving always works — the client decrypts.
        assert_eq!(by_tid(3).serve().len(), 1);
    }

    #[test]
    fn invalidate_where_removes_matches() {
        let mut c = cache();
        for p in 0..10 {
            c.store(&query(0, p), result(1), ExposureLevel::View);
        }
        let (scanned, dropped) =
            c.invalidate_where(|e| matches!(e.key().params[0], Value::Int(p) if p % 2 == 0));
        assert_eq!(scanned, 10);
        assert_eq!(dropped, 5);
        assert_eq!(c.len(), 5);
        assert!(c.lookup(&query(0, 1)).is_some());
        assert!(c.lookup(&query(0, 2)).is_none());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = cache();
        c.store(&query(0, 1), result(1), ExposureLevel::Blind);
        c.store(&query(0, 2), result(1), ExposureLevel::Blind);
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn restore_overwrites() {
        let mut c = cache();
        let q = query(0, 1);
        c.store(&q, result(1), ExposureLevel::View);
        c.store(&q, result(3), ExposureLevel::View);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&q).unwrap().serve().len(), 3);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut c = ResultCache::with_capacity(Encryptor::for_app("test"), 3);
        for p in 0..3 {
            c.store(&query(0, p), result(1), ExposureLevel::View);
        }
        // Touch 0 and 1; storing a 4th entry must evict 2 (the LRU).
        c.lookup(&query(0, 0));
        c.lookup(&query(0, 1));
        c.store(&query(0, 3), result(1), ExposureLevel::View);
        assert_eq!(c.len(), 3);
        assert!(c.peek(&query(0, 0)).is_some());
        assert!(c.peek(&query(0, 1)).is_some());
        assert!(c.peek(&query(0, 2)).is_none(), "LRU victim");
        assert!(c.peek(&query(0, 3)).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn store_outcome_reports_victims() {
        let mut c = ResultCache::with_capacity(Encryptor::for_app("test"), 2);
        assert!(c
            .store_with_evictions(&query(0, 1), result(1), ExposureLevel::View)
            .evicted
            .is_empty());
        c.store(&query(0, 2), result(1), ExposureLevel::View);
        let outcome = c.store_with_evictions(&query(0, 3), result(1), ExposureLevel::View);
        assert!(outcome.stored);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(outcome.evicted[0].params, vec![Value::Int(1)]);
        // Empty results: not stored, nothing evicted.
        let noop = c.store_with_evictions(&query(0, 9), result(0), ExposureLevel::View);
        assert!(!noop.stored && noop.evicted.is_empty());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = cache();
        for p in 0..1000 {
            c.store(&query(0, p), result(1), ExposureLevel::View);
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn capacity_of_zero_clamps_to_one() {
        let mut c = ResultCache::with_capacity(Encryptor::for_app("test"), 0);
        c.store(&query(0, 1), result(1), ExposureLevel::View);
        c.store(&query(0, 2), result(1), ExposureLevel::View);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lease_expiry_drops_entries_at_lookup() {
        let mut c = cache();
        c.set_lease_micros(Some(100));
        c.set_now_micros(1_000);
        let q = query(0, 1);
        c.store(&q, result(2), ExposureLevel::View);
        // Within the lease window: served.
        c.set_now_micros(1_100);
        assert!(matches!(c.lookup_classified(&q), Lookup::Hit(_)));
        // Past the lease: dropped, classified as expired, then gone.
        c.set_now_micros(1_101);
        assert!(matches!(c.lookup_classified(&q), Lookup::Expired));
        assert!(matches!(c.lookup_classified(&q), Lookup::Miss));
        assert_eq!(c.lease_expirations(), 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn no_lease_means_no_expiry() {
        let mut c = cache();
        let q = query(0, 1);
        c.store(&q, result(1), ExposureLevel::View);
        c.set_now_micros(u64::MAX - 1);
        assert!(c.lookup(&q).is_some());
        assert_eq!(c.lease_expirations(), 0);
    }

    #[test]
    fn restore_renews_the_lease() {
        let mut c = cache();
        c.set_lease_micros(Some(50));
        let q = query(0, 1);
        c.set_now_micros(0);
        c.store(&q, result(1), ExposureLevel::View);
        c.set_now_micros(40);
        c.store(&q, result(3), ExposureLevel::View);
        // The first store's lease (0..=50) has passed, the second's
        // (40..=90) has not.
        c.set_now_micros(85);
        assert_eq!(c.lookup(&q).unwrap().serve().len(), 3);
    }

    #[test]
    fn encrypted_entries_are_larger() {
        let mut c = cache();
        c.store(&query(0, 1), result(5), ExposureLevel::View);
        c.store(&query(1, 1), result(5), ExposureLevel::Blind);
        let view = c.lookup(&query(0, 1)).unwrap().stored_bytes;
        let blind = c.lookup(&query(1, 1)).unwrap().stored_bytes;
        assert!(blind > view, "encryption envelope adds overhead");
    }
}
