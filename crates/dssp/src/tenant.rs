//! Multi-tenant DSSP node.
//!
//! "To be cost-effective, DSSPs will need to cache data from home servers
//! of many applications" (§1, Figure 1) — which is exactly why security
//! matters: tenants must not read each other's data, and the DSSP
//! administrator must not read any tenant's sensitive data (footnote 1).
//!
//! [`DsspNode`] hosts one [`Dssp`] proxy per registered application, each
//! with its own encryption key (derived per `app_id`), exposure
//! assignment, IPM matrix, and home-server connection. Tenant isolation
//! is structural: queries and updates are routed by tenant id, and a
//! tenant's ciphertexts are indecipherable under any other tenant's key
//! (tested in `scs-crypto`).

use crate::fleet::{FleetConfig, ProxyFleet, RoutingMode};
use crate::home::HomeServer;
use crate::proxy::{Dssp, DsspConfig, QueryResponse, UpdateResponse};
use crate::stats::DsspStats;
use scs_sqlkit::{Query, Update};
use scs_storage::StorageError;
use std::collections::HashMap;

/// Identifies a registered application on the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Errors at the node routing layer.
#[derive(Debug)]
pub enum NodeError {
    UnknownTenant(TenantId),
    DuplicateTenant(String),
    Storage(StorageError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::UnknownTenant(t) => write!(f, "unknown tenant {}", t.0),
            NodeError::DuplicateTenant(app) => write!(f, "app `{app}` already registered"),
            NodeError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for NodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NodeError::Storage(e) => Some(e),
            NodeError::UnknownTenant(_) | NodeError::DuplicateTenant(_) => None,
        }
    }
}

impl From<StorageError> for NodeError {
    fn from(e: StorageError) -> Self {
        NodeError::Storage(e)
    }
}

/// One registered application: its proxy fleet (a single-replica fleet
/// for classically registered tenants) plus the home connection the
/// fleet owns.
struct Tenant {
    app_id: String,
    fleet: ProxyFleet,
}

/// A DSSP node multiplexing many applications.
#[derive(Default)]
pub struct DsspNode {
    tenants: Vec<Tenant>,
    by_app: HashMap<String, TenantId>,
}

impl DsspNode {
    pub fn new() -> DsspNode {
        DsspNode::default()
    }

    /// Registers an application: its DSSP configuration plus its home
    /// server connection. Returns the tenant handle used for routing.
    /// The tenant is backed by a degenerate single-replica fleet with
    /// immediate fanout over a reliable zero-latency pipe, which behaves
    /// exactly like a standalone proxy (pinned by `fleet` tests).
    pub fn register(
        &mut self,
        config: DsspConfig,
        home: HomeServer,
    ) -> Result<TenantId, NodeError> {
        self.register_fleet(
            config,
            home,
            FleetConfig::reliable(1, RoutingMode::RoundRobin),
        )
    }

    /// Registers an application backed by a multi-replica proxy fleet
    /// (§5's deployment: N proxies, broadcast invalidation fanout).
    pub fn register_fleet(
        &mut self,
        config: DsspConfig,
        home: HomeServer,
        fleet: FleetConfig,
    ) -> Result<TenantId, NodeError> {
        if self.by_app.contains_key(&config.app_id) {
            return Err(NodeError::DuplicateTenant(config.app_id));
        }
        let id = TenantId(self.tenants.len() as u32);
        let app_id = config.app_id.clone();
        self.by_app.insert(app_id.clone(), id);
        let mut fleet = ProxyFleet::new(config, home, fleet);
        fleet.set_tenant_label(id.0);
        self.tenants.push(Tenant { app_id, fleet });
        Ok(id)
    }

    /// Number of registered applications.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Looks up a tenant id by application name.
    pub fn tenant_of(&self, app_id: &str) -> Option<TenantId> {
        self.by_app.get(app_id).copied()
    }

    fn tenant_mut(&mut self, t: TenantId) -> Result<&mut Tenant, NodeError> {
        self.tenants
            .get_mut(t.0 as usize)
            .ok_or(NodeError::UnknownTenant(t))
    }

    /// Routes a query to its tenant's fleet (the fleet's balancer picks
    /// the replica).
    pub fn execute_query(&mut self, t: TenantId, q: &Query) -> Result<QueryResponse, NodeError> {
        let tenant = self.tenant_mut(t)?;
        Ok(tenant.fleet.execute_query(q)?.resp)
    }

    /// Routes an update to its tenant's fleet. Only the tenant's own
    /// cached entries are scanned — one tenant's updates never disturb
    /// another's cache.
    pub fn execute_update(&mut self, t: TenantId, u: &Update) -> Result<UpdateResponse, NodeError> {
        let tenant = self.tenant_mut(t)?;
        Ok(tenant.fleet.execute_update(u)?.resp)
    }

    /// Per-tenant statistics, by application name (fleet-wide roll-up
    /// per tenant).
    pub fn stats(&self) -> Vec<(&str, DsspStats)> {
        self.tenants
            .iter()
            .map(|t| (t.app_id.as_str(), t.fleet.rollup_stats()))
            .collect()
    }

    /// Node-wide counter roll-up across tenants ([`DsspStats::merge`]).
    pub fn rollup_stats(&self) -> DsspStats {
        let mut total = DsspStats::default();
        for t in &self.tenants {
            total.merge(&t.fleet.rollup_stats());
        }
        total
    }

    /// Node-wide metrics roll-up: every tenant's registry merged into one
    /// snapshot (counters/gauges add, histograms merge bucket-wise).
    pub fn rollup_metrics(&self) -> scs_telemetry::MetricsSnapshot {
        let mut total = scs_telemetry::MetricsSnapshot::default();
        for t in &self.tenants {
            total.merge(&t.fleet.rollup_metrics());
        }
        total
    }

    /// Total cached entries across tenants (node capacity planning).
    pub fn total_cache_entries(&self) -> usize {
        self.tenants
            .iter()
            .map(|t| t.fleet.total_cache_entries())
            .sum()
    }

    /// Read access to one tenant's first replica (diagnostics/tests;
    /// the whole proxy for classically registered tenants).
    pub fn dssp(&self, t: TenantId) -> Option<&Dssp> {
        self.tenants.get(t.0 as usize).map(|x| x.fleet.proxy(0))
    }

    /// Read access to one tenant's fleet.
    pub fn fleet(&self, t: TenantId) -> Option<&ProxyFleet> {
        self.tenants.get(t.0 as usize).map(|x| &x.fleet)
    }

    /// Mutable access to one tenant's fleet (simulation drivers advance
    /// its clock and pump its pipes).
    pub fn fleet_mut(&mut self, t: TenantId) -> Option<&mut ProxyFleet> {
        self.tenants.get_mut(t.0 as usize).map(|x| &mut x.fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use scs_core::{characterize_app, AnalysisOptions, Catalog};
    use scs_sqlkit::{parse_query, parse_update, Value};
    use scs_storage::{ColumnType, Database, TableSchema};
    use std::sync::Arc;

    fn make_tenant(
        app_id: &str,
        seed_val: i64,
    ) -> (
        DsspConfig,
        HomeServer,
        Arc<scs_sqlkit::QueryTemplate>,
        Arc<scs_sqlkit::UpdateTemplate>,
    ) {
        let schema = TableSchema::builder("t")
            .column("id", ColumnType::Int)
            .column("v", ColumnType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let mut db = Database::new();
        db.create_table(schema.clone()).unwrap();
        for id in 1..=5 {
            db.insert_row("t", vec![Value::Int(id), Value::Int(seed_val * id)])
                .unwrap();
        }
        let q = Arc::new(parse_query("SELECT v FROM t WHERE id = ?").unwrap());
        let u = Arc::new(parse_update("UPDATE t SET v = ? WHERE id = ?").unwrap());
        let matrix = characterize_app(
            std::slice::from_ref(&u),
            std::slice::from_ref(&q),
            &Catalog::new([schema]),
            AnalysisOptions::default(),
        );
        let config = DsspConfig::new(
            app_id,
            StrategyKind::StatementInspection.exposures(1, 1),
            matrix,
        );
        (config, HomeServer::new(db), q, u)
    }

    #[test]
    fn tenants_are_isolated() {
        let mut node = DsspNode::new();
        let (ca, ha, qa, _) = make_tenant("app-a", 10);
        let (cb, hb, qb, ub) = make_tenant("app-b", 100);
        let ta = node.register(ca, ha).unwrap();
        let tb = node.register(cb, hb).unwrap();
        assert_eq!(node.tenant_count(), 2);
        assert_eq!(node.tenant_of("app-a"), Some(ta));

        // Same logical query, different tenants, different data.
        let q_a = Query::bind(0, qa, vec![Value::Int(3)]).unwrap();
        let q_b = Query::bind(0, qb, vec![Value::Int(3)]).unwrap();
        let ra = node.execute_query(ta, &q_a).unwrap();
        let rb = node.execute_query(tb, &q_b).unwrap();
        assert_eq!(ra.result.rows, vec![vec![Value::Int(30)]]);
        assert_eq!(rb.result.rows, vec![vec![Value::Int(300)]]);

        // Warm both caches; an update by tenant B must not touch tenant
        // A's entries.
        assert!(node.execute_query(ta, &q_a).unwrap().hit);
        assert!(node.execute_query(tb, &q_b).unwrap().hit);
        let u_b = Update::bind(0, ub, vec![Value::Int(1), Value::Int(3)]).unwrap();
        let resp = node.execute_update(tb, &u_b).unwrap();
        assert_eq!(resp.invalidated, 1, "B's own entry dies");
        assert!(
            node.execute_query(ta, &q_a).unwrap().hit,
            "A's entry survives"
        );
        assert!(!node.execute_query(tb, &q_b).unwrap().hit);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut node = DsspNode::new();
        let (ca, ha, _, _) = make_tenant("app-a", 1);
        let (cb, hb, _, _) = make_tenant("app-a", 2);
        node.register(ca, ha).unwrap();
        assert!(matches!(
            node.register(cb, hb),
            Err(NodeError::DuplicateTenant(_))
        ));
    }

    #[test]
    fn unknown_tenant_rejected() {
        let mut node = DsspNode::new();
        let (_, _, q, _) = make_tenant("x", 1);
        let query = Query::bind(0, q, vec![Value::Int(1)]).unwrap();
        assert!(matches!(
            node.execute_query(TenantId(9), &query),
            Err(NodeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn tenant_registries_are_isolated_and_roll_up() {
        let mut node = DsspNode::new();
        let (ca, ha, qa, _) = make_tenant("app-a", 1);
        let (cb, hb, qb, _) = make_tenant("app-b", 2);
        let ta = node.register(ca, ha).unwrap();
        let tb = node.register(cb, hb).unwrap();

        let q_a = Query::bind(0, qa, vec![Value::Int(1)]).unwrap();
        let q_b = Query::bind(0, qb, vec![Value::Int(1)]).unwrap();
        for _ in 0..3 {
            node.execute_query(ta, &q_a).unwrap();
        }
        node.execute_query(tb, &q_b).unwrap();

        // Isolation: each tenant's registry saw only its own traffic.
        let reg_a = node.dssp(ta).unwrap().registry();
        let reg_b = node.dssp(tb).unwrap().registry();
        assert_eq!(reg_a.counter_value("dssp.queries"), 3);
        assert_eq!(reg_b.counter_value("dssp.queries"), 1);
        assert_eq!(reg_a.counter_value("dssp.hits"), 2);
        assert_eq!(reg_b.counter_value("dssp.hits"), 0);

        // Roll-up: node totals are the tenant sums.
        let rolled = node.rollup_metrics();
        assert_eq!(rolled.counters["dssp.queries"], 4);
        assert_eq!(rolled.counters["dssp.hits"], 2);
        let totals = node.rollup_stats();
        assert_eq!(totals.queries, 4);
        assert_eq!(totals.hits, 2);
        assert_eq!(totals.misses, 2);
    }

    #[test]
    fn node_error_chains_to_storage_source() {
        use std::error::Error;
        let storage = StorageError::UnknownTable("toys".into());
        let err = NodeError::from(storage.clone());
        assert_eq!(err.to_string(), format!("storage error: {storage}"));
        let source = err.source().expect("storage errors carry a source");
        assert_eq!(source.to_string(), storage.to_string());
        assert!(NodeError::UnknownTenant(TenantId(3)).source().is_none());
        assert!(NodeError::DuplicateTenant("a".into()).source().is_none());
    }

    #[test]
    fn fleet_backed_tenant_routes_and_rolls_up() {
        use crate::fleet::{FleetConfig, RoutingMode};
        let mut node = DsspNode::new();
        let (ca, ha, qa, ua) = make_tenant("app-a", 10);
        let ta = node
            .register_fleet(ca, ha, FleetConfig::reliable(3, RoutingMode::RoundRobin))
            .unwrap();
        assert_eq!(node.fleet(ta).unwrap().len(), 3);
        // Three identical queries round-robin across replicas: all miss.
        let q = Query::bind(0, qa, vec![Value::Int(2)]).unwrap();
        for _ in 0..3 {
            assert!(!node.execute_query(ta, &q).unwrap().hit);
        }
        assert_eq!(node.total_cache_entries(), 3);
        // One update fans out and kills every replica's copy.
        let u = Update::bind(0, ua, vec![Value::Int(1), Value::Int(2)]).unwrap();
        let resp = node.execute_update(ta, &u).unwrap();
        assert_eq!(resp.invalidated, 3, "all three replicas invalidate");
        assert_eq!(node.total_cache_entries(), 0);
        assert_eq!(node.rollup_stats().queries, 3);
    }

    #[test]
    fn node_stats_aggregate() {
        let mut node = DsspNode::new();
        let (ca, ha, qa, _) = make_tenant("app-a", 1);
        let ta = node.register(ca, ha).unwrap();
        let q = Query::bind(0, qa, vec![Value::Int(1)]).unwrap();
        node.execute_query(ta, &q).unwrap();
        node.execute_query(ta, &q).unwrap();
        let stats = node.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.queries, 2);
        assert_eq!(node.total_cache_entries(), 1);
    }
}
