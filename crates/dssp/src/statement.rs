//! Statement-inspection invalidation (MSIS, §2.2): given the full update
//! and query *statements* (templates + parameters), conservatively decide
//! whether the update might change the query's result on some database.
//!
//! The test is sound: it returns `false` (do-not-invalidate) only when no
//! database state could make the update affect the query. It reasons per
//! alias of the updated relation over conjunctions of single-attribute
//! comparisons (the §2.1.1 model guarantees there are no intra-relation
//! column comparisons; if one appears anyway, the test degrades to
//! "invalidate").

use scs_sqlkit::{CmpOp, Query, Update, UpdateTemplate, Value};
use std::collections::HashMap;

/// A bound single-attribute constraint: `column op value`.
#[derive(Debug, Clone)]
pub struct Constraint {
    pub column: String,
    pub op: CmpOp,
    pub value: Value,
}

/// Decides whether `u` might affect `q` (`true` = must invalidate).
pub fn statement_may_affect(u: &Update, q: &Query) -> bool {
    let table = u.template.table();
    let aliases: Vec<&str> = q
        .template
        .from
        .iter()
        .filter(|t| t.table == table)
        .map(|t| t.alias.as_str())
        .collect();
    if aliases.is_empty() {
        // The updated relation does not occur in the query. (Template-level
        // ignorability normally catches this earlier.)
        return false;
    }
    // A column-column predicate inside one relation defeats the
    // per-attribute reasoning; stay conservative.
    let has_intra = q.template.predicates.iter().any(|p| {
        p.as_join()
            .is_some_and(|(l, _, r)| l.qualifier == r.qualifier)
    }) || u.template.predicates().iter().any(|p| p.is_join());
    if has_intra {
        return true;
    }

    aliases.iter().any(|alias| alias_may_affect(u, q, alias))
}

fn alias_may_affect(u: &Update, q: &Query, alias: &str) -> bool {
    let q_restrictions = query_restrictions(q, alias);
    match &*u.template {
        UpdateTemplate::Insert(ins) => {
            // The fresh row affects the query only if it satisfies the
            // query's local restrictions on this alias (join conditions
            // with other relations cannot be ruled out statically).
            let row: HashMap<&str, &Value> = ins
                .columns
                .iter()
                .map(String::as_str)
                .zip(ins.values.iter().map(|s| u.resolve(s)))
                .collect();
            q_restrictions
                .iter()
                .all(|c| match row.get(c.column.as_str()) {
                    Some(v) => c.op.eval(v, &c.value),
                    None => true, // partially specified — cannot rule out
                })
        }
        UpdateTemplate::Delete(_) => {
            // A deleted row matters only if some row can satisfy both the
            // deletion predicate and the query's restrictions.
            let mut all = update_constraints(u);
            all.extend(q_restrictions);
            constraints_satisfiable(&all)
        }
        UpdateTemplate::Modify(m) => {
            let u_constraints = update_constraints(u);
            let modified: Vec<&str> = m.set.iter().map(|(c, _)| c.as_str()).collect();

            // Direction 1 — the row *was* in the query's input: its old
            // values satisfy both the update predicate and the query's
            // restrictions.
            let mut joint = u_constraints.clone();
            joint.extend(q_restrictions.iter().cloned());
            if constraints_satisfiable(&joint) {
                return true;
            }

            // Direction 2 — the row *enters* after the update: unmodified
            // attributes still obey the update predicate + restrictions;
            // modified attributes take their known new values.
            let unmodified_ok = {
                let subset: Vec<Constraint> = joint
                    .iter()
                    .filter(|c| !modified.contains(&c.column.as_str()))
                    .cloned()
                    .collect();
                constraints_satisfiable(&subset)
            };
            let new_values_ok = q_restrictions.iter().all(|c| {
                match m.set.iter().find(|(col, _)| col == &c.column) {
                    Some((_, s)) => c.op.eval(u.resolve(s), &c.value),
                    None => true,
                }
            });
            unmodified_ok && new_values_ok
        }
    }
}

/// The query's bound `column op value` restrictions on one alias.
pub fn query_restrictions(q: &Query, alias: &str) -> Vec<Constraint> {
    q.template
        .predicates
        .iter()
        .filter_map(|p| p.as_restriction())
        .filter(|(c, _, _)| c.qualifier == alias)
        .map(|(c, op, s)| Constraint {
            column: c.column.clone(),
            op,
            value: q.resolve(s).clone(),
        })
        .collect()
}

/// The update's bound `column op value` predicates.
pub fn update_constraints(u: &Update) -> Vec<Constraint> {
    u.template
        .predicates()
        .iter()
        .filter_map(|p| p.as_restriction())
        .map(|(c, op, s)| Constraint {
            column: c.column.clone(),
            op,
            value: u.resolve(s).clone(),
        })
        .collect()
}

/// Conservative satisfiability of a conjunction of single-attribute
/// comparisons: attributes are independent (no intra-relation column
/// comparisons), so the conjunction is satisfiable iff each attribute's
/// constraint set is. Integer-domain gaps (e.g. `x > 3 ∧ x < 4`) are *not*
/// detected — reported satisfiable, which errs toward invalidation.
pub fn constraints_satisfiable(cs: &[Constraint]) -> bool {
    let mut by_col: HashMap<&str, Vec<&Constraint>> = HashMap::new();
    for c in cs {
        by_col.entry(c.column.as_str()).or_default().push(c);
    }
    by_col.values().all(|group| column_satisfiable(group))
}

fn column_satisfiable(cs: &[&Constraint]) -> bool {
    let mut eq: Option<&Value> = None;
    // (value, strict)
    let mut lower: Option<(&Value, bool)> = None;
    let mut upper: Option<(&Value, bool)> = None;
    for c in cs {
        match c.op {
            CmpOp::Eq => {
                if let Some(prev) = eq {
                    if prev != &c.value {
                        return false;
                    }
                }
                eq = Some(&c.value);
            }
            CmpOp::Gt | CmpOp::Ge => {
                let strict = c.op == CmpOp::Gt;
                lower = Some(match lower {
                    None => (&c.value, strict),
                    Some((v, s)) => match c.value.cmp(v) {
                        std::cmp::Ordering::Greater => (&c.value, strict),
                        std::cmp::Ordering::Equal => (v, s || strict),
                        std::cmp::Ordering::Less => (v, s),
                    },
                });
            }
            CmpOp::Lt | CmpOp::Le => {
                let strict = c.op == CmpOp::Lt;
                upper = Some(match upper {
                    None => (&c.value, strict),
                    Some((v, s)) => match c.value.cmp(v) {
                        std::cmp::Ordering::Less => (&c.value, strict),
                        std::cmp::Ordering::Equal => (v, s || strict),
                        std::cmp::Ordering::Greater => (v, s),
                    },
                });
            }
        }
    }
    if let Some(v) = eq {
        let lower_ok = lower.is_none_or(|(l, strict)| if strict { v > l } else { v >= l });
        let upper_ok = upper.is_none_or(|(up, strict)| if strict { v < up } else { v <= up });
        return lower_ok && upper_ok;
    }
    match (lower, upper) {
        (Some((l, ls)), Some((u, us))) => match l.cmp(u) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => !ls && !us,
            std::cmp::Ordering::Greater => false,
        },
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scs_sqlkit::{parse_query, parse_update};
    use std::sync::Arc;

    fn q(sql: &str, params: Vec<Value>) -> Query {
        Query::bind(0, Arc::new(parse_query(sql).unwrap()), params).unwrap()
    }

    fn u(sql: &str, params: Vec<Value>) -> Update {
        Update::bind(0, Arc::new(parse_update(sql).unwrap()), params).unwrap()
    }

    /// Table 2, row 3 of the paper: with statements visible, the deletion
    /// `U1(5)` invalidates `Q2(toy_id)` only when `toy_id = 5`.
    #[test]
    fn table2_statement_row() {
        let del = u("DELETE FROM toys WHERE toy_id = ?", vec![Value::Int(5)]);
        let q2_5 = q("SELECT qty FROM toys WHERE toy_id = ?", vec![Value::Int(5)]);
        let q2_7 = q("SELECT qty FROM toys WHERE toy_id = ?", vec![Value::Int(7)]);
        assert!(statement_may_affect(&del, &q2_5));
        assert!(!statement_may_affect(&del, &q2_7));
        // Q1 selects on toy_name: parameters incomparable — invalidate.
        let q1 = q(
            "SELECT toy_id FROM toys WHERE toy_name = ?",
            vec![Value::str("bear")],
        );
        assert!(statement_may_affect(&del, &q1));
        // Q3 references other relations only.
        let q3 = q(
            "SELECT cust_name FROM customers WHERE cust_id = ?",
            vec![Value::Int(1)],
        );
        assert!(!statement_may_affect(&del, &q3));
    }

    #[test]
    fn delete_range_overlap() {
        let del = u("DELETE FROM toys WHERE qty < ?", vec![Value::Int(5)]);
        let low = q(
            "SELECT toy_id FROM toys WHERE qty <= ?",
            vec![Value::Int(3)],
        );
        let high = q(
            "SELECT toy_id FROM toys WHERE qty > ?",
            vec![Value::Int(10)],
        );
        assert!(statement_may_affect(&del, &low));
        assert!(
            !statement_may_affect(&del, &high),
            "qty < 5 and qty > 10 are disjoint"
        );
        let touching = q(
            "SELECT toy_id FROM toys WHERE qty >= ?",
            vec![Value::Int(4)],
        );
        assert!(
            statement_may_affect(&del, &touching),
            "qty = 4 satisfies both"
        );
    }

    #[test]
    fn insert_checked_against_restrictions() {
        let ins = |qty: i64| {
            u(
                "INSERT INTO toys (toy_id, toy_name, qty) VALUES (?, ?, ?)",
                vec![Value::Int(9), Value::str("drone"), Value::Int(qty)],
            )
        };
        let big = q(
            "SELECT toy_id FROM toys WHERE qty > ?",
            vec![Value::Int(100)],
        );
        assert!(!statement_may_affect(&ins(10), &big));
        assert!(statement_may_affect(&ins(200), &big));
        let name = q(
            "SELECT toy_id FROM toys WHERE toy_name = ?",
            vec![Value::str("drone")],
        );
        assert!(statement_may_affect(&ins(10), &name));
        let other = q(
            "SELECT toy_id FROM toys WHERE toy_name = ?",
            vec![Value::str("kite")],
        );
        assert!(!statement_may_affect(&ins(10), &other));
    }

    #[test]
    fn insert_join_conditions_conservative() {
        let ins = u(
            "INSERT INTO credit_card (cid, number, zip_code) VALUES (?, ?, ?)",
            vec![Value::Int(3), Value::str("4111"), Value::Int(15213)],
        );
        let join_match = q(
            "SELECT customers.cust_name FROM customers, credit_card \
             WHERE customers.cust_id = credit_card.cid AND credit_card.zip_code = ?",
            vec![Value::Int(15213)],
        );
        assert!(statement_may_affect(&ins, &join_match));
        let join_other = q(
            "SELECT customers.cust_name FROM customers, credit_card \
             WHERE customers.cust_id = credit_card.cid AND credit_card.zip_code = ?",
            vec![Value::Int(90210)],
        );
        assert!(!statement_may_affect(&ins, &join_other));
    }

    #[test]
    fn modify_pk_match() {
        let m = u(
            "UPDATE toys SET qty = ? WHERE toy_id = ?",
            vec![Value::Int(0), Value::Int(5)],
        );
        let same = q("SELECT qty FROM toys WHERE toy_id = ?", vec![Value::Int(5)]);
        let other = q("SELECT qty FROM toys WHERE toy_id = ?", vec![Value::Int(6)]);
        assert!(statement_may_affect(&m, &same));
        assert!(!statement_may_affect(&m, &other));
    }

    #[test]
    fn modify_entering_direction() {
        // Row 5 had unknown qty; setting qty = 50 may make it enter
        // `qty > 10` even though direction 1 also holds; setting qty = 5
        // cannot make it enter, but it may have been in the result before.
        let enter = u(
            "UPDATE toys SET qty = ? WHERE toy_id = ?",
            vec![Value::Int(50), Value::Int(5)],
        );
        let big = q(
            "SELECT toy_id FROM toys WHERE qty > ?",
            vec![Value::Int(10)],
        );
        assert!(statement_may_affect(&enter, &big));
        let leave = u(
            "UPDATE toys SET qty = ? WHERE toy_id = ?",
            vec![Value::Int(5), Value::Int(5)],
        );
        assert!(
            statement_may_affect(&leave, &big),
            "row may leave the result"
        );
    }

    #[test]
    fn modify_cannot_affect_when_excluded_both_ways() {
        // Query restricted to toy_id = 7; update touches toy_id = 5 only.
        let m = u(
            "UPDATE toys SET qty = ? WHERE toy_id = ?",
            vec![Value::Int(50), Value::Int(5)],
        );
        let other = q(
            "SELECT qty FROM toys WHERE toy_id = ? AND qty > ?",
            vec![Value::Int(7), Value::Int(10)],
        );
        assert!(!statement_may_affect(&m, &other));
    }

    #[test]
    fn self_join_uses_any_alias() {
        let del = u("DELETE FROM toys WHERE toy_id = ?", vec![Value::Int(5)]);
        let sj = q(
            "SELECT t1.toy_id FROM toys t1, toys t2 \
             WHERE t1.toy_id = ? AND t2.toy_id = ?",
            vec![Value::Int(1), Value::Int(2)],
        );
        assert!(!statement_may_affect(&del, &sj), "5 matches neither alias");
        let sj_hit = q(
            "SELECT t1.toy_id FROM toys t1, toys t2 \
             WHERE t1.toy_id = ? AND t2.toy_id = ?",
            vec![Value::Int(1), Value::Int(5)],
        );
        assert!(statement_may_affect(&del, &sj_hit), "5 matches alias t2");
    }

    #[test]
    fn satisfiability_basics() {
        let c = |col: &str, op: CmpOp, v: i64| Constraint {
            column: col.into(),
            op,
            value: Value::Int(v),
        };
        assert!(constraints_satisfiable(&[
            c("x", CmpOp::Gt, 3),
            c("x", CmpOp::Lt, 10)
        ]));
        assert!(!constraints_satisfiable(&[
            c("x", CmpOp::Gt, 10),
            c("x", CmpOp::Lt, 3)
        ]));
        assert!(constraints_satisfiable(&[
            c("x", CmpOp::Ge, 5),
            c("x", CmpOp::Le, 5)
        ]));
        assert!(!constraints_satisfiable(&[
            c("x", CmpOp::Gt, 5),
            c("x", CmpOp::Le, 5)
        ]));
        assert!(!constraints_satisfiable(&[
            c("x", CmpOp::Eq, 1),
            c("x", CmpOp::Eq, 2)
        ]));
        assert!(constraints_satisfiable(&[
            c("x", CmpOp::Eq, 7),
            c("x", CmpOp::Gt, 3)
        ]));
        assert!(!constraints_satisfiable(&[
            c("x", CmpOp::Eq, 2),
            c("x", CmpOp::Gt, 3)
        ]));
        // Different columns are independent.
        assert!(constraints_satisfiable(&[
            c("x", CmpOp::Gt, 10),
            c("y", CmpOp::Lt, 3)
        ]));
        // Integer gap: conservatively satisfiable.
        assert!(constraints_satisfiable(&[
            c("x", CmpOp::Gt, 3),
            c("x", CmpOp::Lt, 4)
        ]));
    }
}
