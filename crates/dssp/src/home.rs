//! The application home server: master copies of all data (Figure 1).
//!
//! Every successfully applied update bumps a **monotone update epoch**,
//! and the epoch is stamped on the invalidation notification the home
//! server hands back (see [`crate::delivery::InvalidationMsg`]). Proxies
//! track the last epoch they applied; a skipped epoch is proof that an
//! invalidation was lost (or that the master was written out of band) and
//! triggers a recovery flush. This turns silent delivery failures —
//! the one failure mode a transparent-invalidation system must rule
//! out — into detected, recoverable events.

use crate::delivery::{InvalidationMsg, PipeRegistration};
use scs_sqlkit::{Query, Update};
use scs_storage::{Database, QueryResult, StorageError, UpdateEffect, Wal};
use scs_telemetry::SharedProvenance;

/// Wraps the master database with simple accounting — the home server's
/// load (queries served on cache misses + updates) is what limits
/// scalability in the evaluation — plus the update-epoch counter that
/// sequences the invalidation stream.
#[derive(Debug, Clone, Default)]
pub struct HomeServer {
    db: Database,
    queries_served: u64,
    updates_applied: u64,
    /// Monotone sequence number of the last applied master write
    /// (updates *and* out-of-band [`HomeServer::mutate_database`] calls).
    epoch: u64,
    /// Total wall-clock time spent executing queries and updates against
    /// the master copy (ns) — the home side of the span pipeline's
    /// `home_trip` phase.
    service_nanos: u64,
    /// Simulated clock, advanced by the harness; stamps each commit's
    /// birth time on the freshness plane.
    now_micros: u64,
    /// The freshness plane, when a harness attached one: every applied
    /// update stamps its epoch's commit here.
    prov: Option<SharedProvenance>,
    /// Commit stamps written through a poisoned provenance lock (the
    /// lock is recovered rather than letting telemetry panic the write
    /// path; see [`HomeServer::prov_poison_recovered`]).
    prov_poison_recovered: u64,
    /// Invalidation-stream id stamped on freshness-plane commits. A
    /// classic single home is stream 0; a sharded home labels each
    /// shard's server with its shard id (stream id = shard id).
    stream: u64,
    /// Fanout pipes currently registered, in registration order — the
    /// home-side membership view an elastic fleet maintains through
    /// [`HomeServer::register_pipe`] / [`HomeServer::unregister_pipe`].
    pipes: Vec<PipeRegistration>,
    /// The durable write-ahead log: every master write — statement-form
    /// updates *and* out-of-band [`HomeServer::mutate_database`] calls —
    /// appends one epoch-stamped record. The log is what survives a
    /// crash ([`HomeServer::crash`] / [`HomeServer::recover`]) and what
    /// a replication group ships to standbys.
    wal: Wal,
}

impl HomeServer {
    pub fn new(db: Database) -> HomeServer {
        let wal = Wal::new(db.clone(), 0);
        HomeServer {
            db,
            queries_served: 0,
            updates_applied: 0,
            epoch: 0,
            service_nanos: 0,
            now_micros: 0,
            prov: None,
            prov_poison_recovered: 0,
            stream: 0,
            pipes: Vec::new(),
            wal,
        }
    }

    /// Rebuilds a home server from a durable log: the database is the
    /// log's full replay and the epoch resumes at the log's tip. This is
    /// both crash recovery (replaying your own log) and standby
    /// promotion (replaying the log you were shipped). Load accounting
    /// restarts at zero — the process is new even if the state is not.
    /// Panics if the log is corrupt (a record fails to re-apply).
    pub fn recover(wal: Wal) -> HomeServer {
        let db = wal
            .replay()
            .expect("WAL records re-apply cleanly: corrupt log");
        HomeServer {
            db,
            queries_served: 0,
            updates_applied: 0,
            epoch: wal.last_epoch(),
            service_nanos: 0,
            now_micros: 0,
            prov: None,
            prov_poison_recovered: 0,
            stream: 0,
            pipes: Vec::new(),
            wal,
        }
    }

    /// Crashes the server: the in-memory state is gone; only the durable
    /// log survives, and this returns it.
    pub fn crash(self) -> Wal {
        self.wal
    }

    /// The durable log (read access: replication ships from here).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Folds every log record at or below `epoch` into the base
    /// snapshot, bounding log growth. Records below the new base can no
    /// longer be shipped individually — callers must keep the compaction
    /// point at or below every standby's acked epoch.
    pub fn compact_wal_to(&mut self, epoch: u64) {
        self.wal
            .compact_to(epoch)
            .expect("WAL records re-apply cleanly: corrupt log");
    }

    /// Advances the epoch to exactly `epoch` (which must be ahead) by
    /// writing one checkpoint record — the **promotion barrier**. A
    /// standby promoted after a failover calls this with the group's
    /// high-water epoch + 1: epochs the dead primary issued but never
    /// replicated become a permanent, *detectable* gap in the stream
    /// (never reused for different content), and the checkpoint pins the
    /// fenced state the new primary resumes from.
    pub fn advance_epoch_to(&mut self, epoch: u64) {
        assert!(
            epoch > self.epoch,
            "promotion barrier must move the epoch forward: {} -> {}",
            self.epoch,
            epoch
        );
        // One checkpoint record at the barrier epoch; the interior
        // skipped epochs become an explicit WAL gap (the gap is the
        // point), so the barrier costs O(database), not O(gap ×
        // database).
        self.epoch = epoch;
        self.wal.append_checkpoint(epoch, self.db.clone());
    }

    /// Restores a fanout-pipe registry wholesale — cluster metadata a
    /// replication group re-installs on a freshly promoted primary so
    /// fanout resumes toward the same fleet.
    pub fn restore_pipes(&mut self, pipes: Vec<PipeRegistration>) {
        self.pipes = pipes;
    }

    /// Advances the home's simulated clock (µs). Commit stamps on the
    /// freshness plane use this time axis.
    pub fn set_sim_time_micros(&mut self, micros: u64) {
        self.now_micros = micros;
    }

    /// Attaches the freshness plane: every subsequent applied update
    /// stamps its epoch's commit (template, sim time, payload size).
    pub fn attach_provenance(&mut self, prov: SharedProvenance) {
        self.prov = Some(prov);
    }

    /// Labels this server's invalidation stream on the freshness plane.
    /// A sharded home sets each shard's server to its shard id; the
    /// default (stream 0) is the classic single-home stream.
    pub fn set_stream_label(&mut self, stream: u64) {
        self.stream = stream;
    }

    /// The invalidation-stream id this server stamps on commits.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Executes a query against the master copy (a DSSP cache miss).
    pub fn execute_query(&mut self, q: &Query) -> Result<QueryResult, StorageError> {
        self.queries_served += 1;
        let start = std::time::Instant::now();
        let result = self.db.execute(q);
        self.service_nanos = self
            .service_nanos
            .saturating_add(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        result
    }

    /// Accounts one scatter-gather sub-query served by this shard
    /// (`nanos` of master service time) without executing anything: the
    /// sharded home executes the gathered plan once centrally and
    /// charges each participating shard its share of the work.
    pub fn note_scatter_query(&mut self, nanos: u64) {
        self.queries_served += 1;
        self.service_nanos = self.service_nanos.saturating_add(nanos);
    }

    /// Applies an update to the master copy; on success the update epoch
    /// advances and the epoch-stamped invalidation notification for the
    /// proxy-bound stream is returned alongside the effect. Failed
    /// updates change nothing and do **not** consume an epoch.
    pub fn apply_update(
        &mut self,
        u: &Update,
    ) -> Result<(UpdateEffect, InvalidationMsg), StorageError> {
        self.apply_update_inner(u, true)
    }

    /// [`HomeServer::apply_update`] without the storage-level FK check.
    /// A sharded home owns only its shard's rows, so a child row's parent
    /// may legitimately live on another shard; the sharded home verifies
    /// every FK probe against the parent's owner shard *before* routing
    /// here (see `crate::sharded::ShardedHome`), making the local check
    /// both wrong (spurious violations) and redundant.
    pub fn apply_update_unchecked(
        &mut self,
        u: &Update,
    ) -> Result<(UpdateEffect, InvalidationMsg), StorageError> {
        self.apply_update_inner(u, false)
    }

    fn apply_update_inner(
        &mut self,
        u: &Update,
        check_fks: bool,
    ) -> Result<(UpdateEffect, InvalidationMsg), StorageError> {
        self.updates_applied += 1;
        let start = std::time::Instant::now();
        let effect = if check_fks {
            self.db.apply(u)
        } else {
            self.db.apply_unchecked(u)
        };
        self.service_nanos = self
            .service_nanos
            .saturating_add(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        let effect = effect?;
        self.epoch += 1;
        self.wal.append_statement(self.epoch, u.clone());
        let msg = InvalidationMsg {
            epoch: self.epoch,
            update: u.clone(),
        };
        if let Some(prov) = &self.prov {
            // Recover a poisoned lock instead of propagating the panic:
            // the provenance log is append-only stamps, so the worst a
            // poisoner leaves behind is a missing stamp — never a torn
            // invariant — and the master write has already committed by
            // this point, so panicking here would wedge the whole write
            // path over telemetry.
            let mut p = prov.lock().unwrap_or_else(|poisoned| {
                self.prov_poison_recovered += 1;
                poisoned.into_inner()
            });
            p.note_commit_on(
                self.stream,
                self.epoch,
                u.template_id,
                self.now_micros,
                msg.payload_bytes(),
            );
        }
        Ok((effect, msg))
    }

    /// Commit stamps that had to recover a poisoned provenance lock
    /// (0 in healthy runs).
    pub fn prov_poison_recovered(&self) -> u64 {
        self.prov_poison_recovered
    }

    /// The current update epoch: the sequence number of the most recent
    /// master write. Piggybacked on query responses so proxies can
    /// handshake after a restart.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registers a fanout pipe for `replica` and returns the current
    /// epoch — the pipe's initial cursor. A joining replica calls this
    /// *before* entering the routing ring: from this epoch on, every
    /// invalidation is owed to (and will be offered on) its pipe, and
    /// everything at or below it is already reflected in the master
    /// state the replica warms from. Registering an already-registered
    /// replica is a bug in the membership protocol and panics.
    pub fn register_pipe(&mut self, replica: usize) -> u64 {
        assert!(
            !self.pipes.iter().any(|p| p.replica == replica),
            "replica {replica} already has a registered pipe"
        );
        self.pipes.push(PipeRegistration {
            replica,
            joined_epoch: self.epoch,
        });
        self.epoch
    }

    /// Unregisters `replica`'s fanout pipe (the final step of a leave or
    /// of a join rollback); returns its registration if it was present.
    /// After this, no further batches are owed to the replica.
    pub fn unregister_pipe(&mut self, replica: usize) -> Option<PipeRegistration> {
        let i = self.pipes.iter().position(|p| p.replica == replica)?;
        Some(self.pipes.remove(i))
    }

    /// The registered fanout pipes, in registration order — the home's
    /// view of fleet membership, with each pipe's join-epoch cursor.
    pub fn registered_pipes(&self) -> &[PipeRegistration] {
        &self.pipes
    }

    /// Read access for tests and ground-truth checks (not part of the DSSP
    /// pathway).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutates the master copy outside the DSSP update pathway
    /// (test fixtures, administrative repairs). The write consumes an
    /// epoch **without** emitting an invalidation, so the next message a
    /// proxy receives exposes a gap and forces a recovery flush — an
    /// out-of-band write can desynchronize a cache only detectably,
    /// never silently.
    ///
    /// The write is durable: the closure is not replayable, so the WAL
    /// records the full post-write state as a checkpoint under the
    /// consumed epoch. A crash after an out-of-band write therefore
    /// recovers it, and it still surfaces to proxies as exactly one gap.
    /// The epoch advances and the checkpoint lands only after the
    /// closure returns — a panicking closure consumes nothing, leaving
    /// epoch and WAL consistent.
    pub fn mutate_database<R>(&mut self, f: impl FnOnce(&mut Database) -> R) -> R {
        let r = f(&mut self.db);
        self.epoch += 1;
        self.wal.append_checkpoint(self.epoch, self.db.clone());
        r
    }

    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Total wall-clock time spent executing against the master copy
    /// (ns).
    pub fn service_nanos(&self) -> u64 {
        self.service_nanos
    }

    /// Mean wall-clock service time per operation (ns); 0 when the home
    /// server has served nothing.
    pub fn mean_service_nanos(&self) -> f64 {
        let ops = self.queries_served + self.updates_applied;
        if ops == 0 {
            0.0
        } else {
            self.service_nanos as f64 / ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scs_sqlkit::{parse_update, Value};
    use scs_storage::{ColumnType, TableSchema};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn seed_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("toys")
                .column("toy_id", ColumnType::Int)
                .column("qty", ColumnType::Int)
                .primary_key(&["toy_id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert_row("toys", vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        db
    }

    fn insert(id: i64, qty: i64) -> Update {
        Update::bind(
            0,
            Arc::new(parse_update("INSERT INTO toys (toy_id, qty) VALUES (?, ?)").unwrap()),
            vec![Value::Int(id), Value::Int(qty)],
        )
        .unwrap()
    }

    /// A panicking out-of-band mutation must not consume an epoch: the
    /// epoch advances and the checkpoint lands only after the closure
    /// returns, so the server stays usable (no "WAL append out of
    /// order" wedge on the next write).
    #[test]
    fn panicking_out_of_band_mutation_consumes_nothing() {
        let mut h = HomeServer::new(seed_db());
        let before = h.epoch();
        let wal_len = h.wal().len();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            h.mutate_database(|_db| -> () { panic!("mutation failed") });
        }));
        assert!(caught.is_err());
        assert_eq!(h.epoch(), before, "no epoch consumed");
        assert_eq!(h.wal().len(), wal_len, "no record appended");
        // The server is not wedged: the normal pathway still works and
        // the log still replays to the live state.
        h.apply_update(&insert(2, 2)).expect("server still usable");
        assert_eq!(h.epoch(), before + 1);
        assert_eq!(h.wal().replay().unwrap(), *h.database());
    }

    /// A poisoned provenance mutex must not panic the commit path: the
    /// master write has already happened, so the lock is recovered (and
    /// counted) and the commit stamp still lands.
    #[test]
    fn poisoned_provenance_lock_does_not_panic_the_write_path() {
        let mut h = HomeServer::new(seed_db());
        let prov = scs_telemetry::shared_provenance(1);
        h.attach_provenance(prov.clone());
        // Poison the mutex: a thread panics while holding the lock.
        let poisoner = prov.clone();
        std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the provenance lock");
        })
        .join()
        .unwrap_err();
        assert!(prov.lock().is_err(), "lock is poisoned");
        let (_, msg) = h.apply_update(&insert(2, 2)).expect("write path survives");
        assert_eq!(msg.epoch, 1);
        assert_eq!(h.prov_poison_recovered(), 1);
        // The stamp landed despite the poison.
        let log = prov.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(log.commits().len(), 1);
        assert_eq!(log.commit_at(1), Some(0));
    }

    /// The promotion barrier is one checkpoint record no matter how
    /// wide the lost tail: the interior epochs become an explicit WAL
    /// gap instead of one full-state clone each.
    #[test]
    fn promotion_barrier_is_one_record_regardless_of_gap() {
        let mut h = HomeServer::new(seed_db());
        h.apply_update(&insert(2, 2)).unwrap();
        let len = h.wal().len();
        h.advance_epoch_to(1_000); // a 998-epoch lost tail
        assert_eq!(h.epoch(), 1_000);
        assert_eq!(h.wal().len(), len + 1, "one checkpoint, not one per epoch");
        assert_eq!(h.wal().last_epoch(), 1_000);
        let recovered = HomeServer::recover(h.wal().clone());
        assert_eq!(recovered.epoch(), 1_000);
        assert_eq!(recovered.database(), h.database());
    }
}
