//! The application home server: master copies of all data (Figure 1).

use scs_sqlkit::{Query, Update};
use scs_storage::{Database, QueryResult, StorageError, UpdateEffect};

/// Wraps the master database with simple accounting — the home server's
/// load (queries served on cache misses + updates) is what limits
/// scalability in the evaluation.
#[derive(Debug, Clone, Default)]
pub struct HomeServer {
    db: Database,
    queries_served: u64,
    updates_applied: u64,
}

impl HomeServer {
    pub fn new(db: Database) -> HomeServer {
        HomeServer {
            db,
            queries_served: 0,
            updates_applied: 0,
        }
    }

    /// Executes a query against the master copy (a DSSP cache miss).
    pub fn execute_query(&mut self, q: &Query) -> Result<QueryResult, StorageError> {
        self.queries_served += 1;
        self.db.execute(q)
    }

    /// Applies an update to the master copy.
    pub fn apply_update(&mut self, u: &Update) -> Result<UpdateEffect, StorageError> {
        self.updates_applied += 1;
        self.db.apply(u)
    }

    /// Read access for tests and ground-truth checks (not part of the DSSP
    /// pathway).
    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }
}
