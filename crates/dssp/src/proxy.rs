//! The DSSP proxy node: answers queries from the cache, forwards misses to
//! the home server, routes updates through, and invalidates affected
//! cached results (Figure 2's pathways).

use crate::cache::ResultCache;
use crate::home::HomeServer;
use crate::stats::DsspStats;
use crate::strategy::{must_invalidate, UpdateView};
use scs_core::{Exposures, IpmMatrix};
use scs_crypto::Encryptor;
use scs_sqlkit::{Query, Update};
use scs_storage::{QueryResult, StorageError, UpdateEffect};

/// Configuration for one application's slice of the DSSP.
#[derive(Clone)]
pub struct DsspConfig {
    /// Application identifier (keys the tenant's encryption).
    pub app_id: String,
    /// Per-template exposure levels (from the §3 methodology, or a uniform
    /// assignment for the pure strategies of §2.2).
    pub exposures: Exposures,
    /// The statically derived IPM characterization for the application.
    pub matrix: IpmMatrix,
    /// Optional cache capacity in entries (LRU eviction); `None` =
    /// unbounded, as in the paper's prototype.
    pub cache_capacity: Option<usize>,
}

impl DsspConfig {
    /// An unbounded-cache configuration (the paper's setting).
    pub fn new(app_id: impl Into<String>, exposures: Exposures, matrix: IpmMatrix) -> DsspConfig {
        DsspConfig {
            app_id: app_id.into(),
            exposures,
            matrix,
            cache_capacity: None,
        }
    }
}

/// The outcome of a query through the DSSP.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    pub result: QueryResult,
    /// Whether the cache answered (no home-server round trip).
    pub hit: bool,
}

/// The outcome of an update through the DSSP.
#[derive(Debug, Clone)]
pub struct UpdateResponse {
    pub effect: UpdateEffect,
    /// Cache entries examined by the invalidation pass.
    pub scanned: usize,
    /// Cache entries invalidated.
    pub invalidated: usize,
}

/// One application's DSSP proxy state.
pub struct Dssp {
    exposures: Exposures,
    matrix: IpmMatrix,
    cache: ResultCache,
    stats: DsspStats,
}

impl Dssp {
    pub fn new(config: DsspConfig) -> Dssp {
        let encryptor = Encryptor::for_app(&config.app_id);
        let cache = match config.cache_capacity {
            Some(cap) => ResultCache::with_capacity(encryptor, cap),
            None => ResultCache::new(encryptor),
        };
        Dssp {
            cache,
            exposures: config.exposures,
            matrix: config.matrix,
            stats: DsspStats::default(),
        }
    }

    /// Cache entries evicted by the capacity bound (0 when unbounded).
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Handles a client query: serve from cache, or forward to the home
    /// server and cache the (non-empty) result.
    pub fn execute_query(
        &mut self,
        q: &Query,
        home: &mut HomeServer,
    ) -> Result<QueryResponse, StorageError> {
        self.stats.queries += 1;
        if let Some(entry) = self.cache.lookup(q) {
            self.stats.hits += 1;
            return Ok(QueryResponse {
                result: entry.serve().clone(),
                hit: true,
            });
        }
        self.stats.misses += 1;
        let result = home.execute_query(q)?;
        let level = self.exposures.queries[q.template_id];
        self.cache.store(q, result.clone(), level);
        Ok(QueryResponse { result, hit: false })
    }

    /// Handles an update: apply at the home server (master copy), then
    /// invalidate affected cached results. The DSSP never sees more of the
    /// update than its exposure level allows.
    pub fn execute_update(
        &mut self,
        u: &Update,
        home: &mut HomeServer,
    ) -> Result<UpdateResponse, StorageError> {
        self.stats.updates += 1;
        let effect = home.apply_update(u)?;
        let view = UpdateView::new(u, self.exposures.updates[u.template_id]);
        let matrix = &self.matrix;
        let (scanned, invalidated) = self
            .cache
            .invalidate_where(|entry| must_invalidate(matrix, &view, entry));
        self.stats.entries_scanned += scanned as u64;
        self.stats.invalidations += invalidated as u64;
        Ok(UpdateResponse {
            effect,
            scanned,
            invalidated,
        })
    }

    pub fn stats(&self) -> &DsspStats {
        &self.stats
    }

    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Iterates over cached entries — used by correctness tests to verify
    /// freshness against re-execution, never by the serving path.
    pub fn cache_entries(&self) -> impl Iterator<Item = &crate::cache::CacheEntry> {
        self.cache.iter()
    }

    pub fn exposures(&self) -> &Exposures {
        &self.exposures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use scs_core::{characterize_app, AnalysisOptions, Catalog};
    use scs_sqlkit::{parse_query, parse_update, QueryTemplate, UpdateTemplate, Value};
    use scs_storage::{ColumnType, Database, TableSchema};
    use std::sync::Arc;

    struct Fixture {
        dssp: Dssp,
        home: HomeServer,
        queries: Vec<Arc<QueryTemplate>>,
        updates: Vec<Arc<UpdateTemplate>>,
    }

    fn fixture(kind: StrategyKind) -> Fixture {
        let schema = TableSchema::builder("toys")
            .column("toy_id", ColumnType::Int)
            .column("toy_name", ColumnType::Str)
            .column("qty", ColumnType::Int)
            .primary_key(&["toy_id"])
            .index("toy_name")
            .build()
            .unwrap();
        let mut db = Database::new();
        db.create_table(schema.clone()).unwrap();
        for (id, name, qty) in [(1, "bear", 10), (2, "car", 5), (3, "kite", 7)] {
            db.insert_row(
                "toys",
                vec![Value::Int(id), Value::str(name), Value::Int(qty)],
            )
            .unwrap();
        }
        let queries = vec![
            Arc::new(parse_query("SELECT toy_id FROM toys WHERE toy_name = ?").unwrap()),
            Arc::new(parse_query("SELECT qty FROM toys WHERE toy_id = ?").unwrap()),
        ];
        let updates = vec![Arc::new(
            parse_update("DELETE FROM toys WHERE toy_id = ?").unwrap(),
        )];
        let catalog = Catalog::new([schema]);
        let matrix = characterize_app(&updates, &queries, &catalog, AnalysisOptions::default());
        let dssp = Dssp::new(DsspConfig {
            app_id: "toystore".into(),
            exposures: kind.exposures(updates.len(), queries.len()),
            matrix,
            cache_capacity: None,
        });
        Fixture {
            dssp,
            home: HomeServer::new(db),
            queries,
            updates,
        }
    }

    impl Fixture {
        fn query(&mut self, tid: usize, params: Vec<Value>) -> QueryResponse {
            let q = Query::bind(tid, self.queries[tid].clone(), params).unwrap();
            self.dssp.execute_query(&q, &mut self.home).unwrap()
        }

        fn update(&mut self, tid: usize, params: Vec<Value>) -> UpdateResponse {
            let u = Update::bind(tid, self.updates[tid].clone(), params).unwrap();
            self.dssp.execute_update(&u, &mut self.home).unwrap()
        }
    }

    #[test]
    fn cache_hit_after_miss() {
        let mut f = fixture(StrategyKind::ViewInspection);
        let r1 = f.query(0, vec![Value::str("bear")]);
        assert!(!r1.hit);
        let r2 = f.query(0, vec![Value::str("bear")]);
        assert!(r2.hit);
        assert_eq!(r1.result, r2.result);
        assert_eq!(f.home.queries_served(), 1);
    }

    #[test]
    fn blind_strategy_clears_everything() {
        let mut f = fixture(StrategyKind::Blind);
        f.query(0, vec![Value::str("bear")]);
        f.query(1, vec![Value::Int(2)]);
        assert_eq!(f.dssp.cache_len(), 2);
        let resp = f.update(0, vec![Value::Int(3)]);
        assert_eq!(resp.invalidated, 2, "blind: every entry invalidated");
        assert_eq!(f.dssp.cache_len(), 0);
    }

    #[test]
    fn statement_strategy_spares_unrelated_instances() {
        let mut f = fixture(StrategyKind::StatementInspection);
        f.query(1, vec![Value::Int(1)]);
        f.query(1, vec![Value::Int(2)]);
        let resp = f.update(0, vec![Value::Int(2)]); // delete toy 2
        assert_eq!(resp.invalidated, 1, "only the toy_id = 2 instance dies");
        // toy 1 entry still served from cache.
        assert!(f.query(1, vec![Value::Int(1)]).hit);
        assert!(!f.query(1, vec![Value::Int(2)]).hit);
    }

    #[test]
    fn template_strategy_invalidates_all_instances_of_affected_templates() {
        let mut f = fixture(StrategyKind::TemplateInspection);
        f.query(1, vec![Value::Int(1)]);
        f.query(1, vec![Value::Int(2)]);
        let resp = f.update(0, vec![Value::Int(3)]);
        assert_eq!(
            resp.invalidated, 2,
            "template level cannot compare parameters"
        );
    }

    #[test]
    fn updated_data_is_re_fetched_fresh() {
        let mut f = fixture(StrategyKind::ViewInspection);
        let before = f.query(1, vec![Value::Int(2)]);
        assert_eq!(before.result.rows, vec![vec![Value::Int(5)]]);
        f.update(0, vec![Value::Int(2)]);
        let after = f.query(1, vec![Value::Int(2)]);
        assert!(!after.hit);
        assert!(after.result.is_empty(), "toy 2 deleted at the master");
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fixture(StrategyKind::ViewInspection);
        f.query(0, vec![Value::str("bear")]);
        f.query(0, vec![Value::str("bear")]);
        f.update(0, vec![Value::Int(9)]);
        let s = f.dssp.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.updates, 1);
    }
}
