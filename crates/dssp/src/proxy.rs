//! The DSSP proxy node: answers queries from the cache, forwards misses to
//! the home server, routes updates through, and invalidates affected
//! cached results (Figure 2's pathways).
//!
//! Delivery of invalidations is *epoched* (see [`crate::delivery`]): the
//! home server stamps each applied update with a monotone sequence
//! number, and the proxy applies a notification only in order. A skipped
//! epoch means a lost notification (or an out-of-band master write) and
//! triggers a recovery flush; staleness from failures that produce no
//! detectable gap is bounded by the per-entry lease. The classic
//! [`Dssp::execute_query`] / [`Dssp::execute_update`] entry points keep
//! the paper's perfect-delivery behaviour; the `_ft` variants expose the
//! fault-tolerant pathway (retry with exponential backoff, outage-aware
//! degradation, deferred invalidation delivery).

use crate::admission::{
    AdmissionController, BreakerState, BreakerTransition, BrownoutController, CircuitBreaker,
    OverloadConfig, Overloaded, QueueState, ShedReason,
};
use crate::cache::{Lookup, ResultCache};
use crate::delivery::{
    splitmix64, BatchOutcome, DeliveryOutcome, FtOutcome, FtQueryResponse, FtUpdateOutcome,
    FtUpdateResponse, HomeLink, InvalidationBatch, InvalidationMsg, RecoveryMode, RetryPolicy,
};
use crate::home::HomeServer;
use crate::sharded::ShardedHome;
use crate::stats::DsspStats;
use crate::strategy::{decide, DecisionPath, UpdateView};
use scs_core::{request_reveals, ExposureLevel, Exposures, IpmMatrix, RevealKind};
use scs_crypto::{CryptoMeter, Encryptor};
use scs_sqlkit::{Query, Update, Value};
use scs_storage::{QueryResult, StorageError, UpdateEffect};
use scs_telemetry::{
    ApplyKind, AttributionMatrix, Counter, MetricsRegistry, RevealStamp, SharedAudit,
    SharedProvenance, SpanId, SpanPhase, SpanRecorder, TraceEventKind, TraceSink, Tracer,
};
use std::sync::Arc;

/// Wire size of a template identifier as the audit plane meters it: the
/// id itself plus framing, matching the cost model's fixed-key overhead.
const TEMPLATE_ID_BYTES: u64 = 8;

/// Scan-time leakage aggregation: (entry template, reveal kind, decision
/// path, entry level) -> (bytes, inspected pairs).
type ScanAgg =
    std::collections::BTreeMap<(usize, &'static str, &'static str, &'static str), (u64, u64)>;

/// Plaintext bytes a bound parameter value exposes when inspected in the
/// clear (mirrors [`QueryResult::approx_size_bytes`]'s per-value sizing).
fn value_plain_bytes(v: &Value) -> u64 {
    match v {
        Value::Int(_) => 8,
        Value::Real(_) => 8,
        Value::Str(s) => s.len() as u64 + 4,
    }
}

/// Stable hash of a parameter value for distinct-value leakage counting.
fn value_hash(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Configuration for one application's slice of the DSSP.
#[derive(Clone)]
pub struct DsspConfig {
    /// Application identifier (keys the tenant's encryption).
    pub app_id: String,
    /// Per-template exposure levels (from the §3 methodology, or a uniform
    /// assignment for the pure strategies of §2.2).
    pub exposures: Exposures,
    /// The statically derived IPM characterization for the application.
    pub matrix: IpmMatrix,
    /// Optional cache capacity in entries (LRU eviction); `None` =
    /// unbounded, as in the paper's prototype.
    pub cache_capacity: Option<usize>,
    /// Staleness lease on cached entries (µs); `None` = entries never
    /// expire (safe only under the paper's perfect-delivery assumption).
    pub lease_micros: Option<u64>,
    /// What to flush when the invalidation stream skips an epoch.
    pub recovery: RecoveryMode,
    /// Overload protection (admission control, circuit breaker,
    /// brownout); `None` = accept everything, the paper's behaviour.
    pub overload: Option<OverloadConfig>,
}

impl DsspConfig {
    /// An unbounded-cache configuration (the paper's setting): no entry
    /// cap, no lease, affected-template recovery.
    pub fn new(app_id: impl Into<String>, exposures: Exposures, matrix: IpmMatrix) -> DsspConfig {
        DsspConfig {
            app_id: app_id.into(),
            exposures,
            matrix,
            cache_capacity: None,
            lease_micros: None,
            recovery: RecoveryMode::FlushAffected,
            overload: None,
        }
    }
}

/// The outcome of a query through the DSSP.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    pub result: QueryResult,
    /// Whether the cache answered (no home-server round trip).
    pub hit: bool,
}

/// The outcome of an update through the DSSP.
#[derive(Debug, Clone)]
pub struct UpdateResponse {
    pub effect: UpdateEffect,
    /// Cache entries examined by the invalidation pass.
    pub scanned: usize,
    /// Cache entries invalidated.
    pub invalidated: usize,
}

/// The outcome of a query through the overload-guarded entry point
/// ([`Dssp::execute_query_overload`]): the fault-tolerant outcomes plus
/// explicit shedding.
#[derive(Debug, Clone)]
pub enum OverloadOutcome {
    Served {
        result: QueryResult,
        /// Whether the cache answered (no home-server round trip).
        hit: bool,
        /// Served under degradation: either the home link was down
        /// (PR 2 semantics) or brownout mode marked the hit degraded.
        /// Always within-lease — never stale beyond it.
        degraded: bool,
    },
    /// Admitted, but the home server stayed unreachable through every
    /// retry.
    Unavailable,
    /// Turned away by overload protection before costing anything.
    Shed(Overloaded),
}

/// A query response from the overload-guarded path.
#[derive(Debug, Clone)]
pub struct OverloadQueryResponse {
    pub outcome: OverloadOutcome,
    pub attempts: u32,
    pub backoff_micros: u64,
}

impl OverloadQueryResponse {
    fn from_ft(r: FtQueryResponse) -> OverloadQueryResponse {
        let outcome = match r.outcome {
            FtOutcome::Served {
                result,
                hit,
                degraded,
            } => OverloadOutcome::Served {
                result,
                hit,
                degraded,
            },
            FtOutcome::Unavailable => OverloadOutcome::Unavailable,
        };
        OverloadQueryResponse {
            outcome,
            attempts: r.attempts,
            backoff_micros: r.backoff_micros,
        }
    }
}

/// The outcome of an update through [`Dssp::execute_update_overload`].
#[derive(Debug, Clone)]
pub enum OverloadUpdateOutcome {
    /// Applied at the master; the invalidation notification is returned
    /// for the delivery channel, exactly as in the `_ft` path.
    Applied {
        effect: UpdateEffect,
        msg: InvalidationMsg,
    },
    /// Admitted but the home server stayed unreachable; master unchanged.
    Unavailable,
    /// Turned away by overload protection; master unchanged.
    Shed(Overloaded),
}

/// An update response from the overload-guarded path.
#[derive(Debug, Clone)]
pub struct OverloadUpdateResponse {
    pub outcome: OverloadUpdateOutcome,
    pub attempts: u32,
    pub backoff_micros: u64,
}

impl OverloadUpdateResponse {
    fn from_ft(r: FtUpdateResponse) -> OverloadUpdateResponse {
        let outcome = match r.outcome {
            FtUpdateOutcome::Applied { effect, msg } => {
                OverloadUpdateOutcome::Applied { effect, msg }
            }
            FtUpdateOutcome::Unavailable => OverloadUpdateOutcome::Unavailable,
        };
        OverloadUpdateResponse {
            outcome,
            attempts: r.attempts,
            backoff_micros: r.backoff_micros,
        }
    }
}

/// Live overload-protection state (present when
/// [`DsspConfig::overload`] was set).
struct OverloadState {
    config: OverloadConfig,
    breaker: CircuitBreaker,
    brownout: BrownoutController,
    brownout_active: bool,
}

/// Cached handles into the proxy's [`MetricsRegistry`] so the hot path
/// never re-resolves metric names. The totals mirror [`DsspStats`];
/// the per-template vectors are indexed by template id.
struct ProxyMetrics {
    queries: Counter,
    hits: Counter,
    misses: Counter,
    updates: Counter,
    invalidations: Counter,
    entries_scanned: Counter,
    evictions: Counter,
    cache_replacements: Counter,
    cache_entries: scs_telemetry::Gauge,
    scan_size: std::sync::Arc<scs_telemetry::LogHistogram>,
    query_hits: Vec<Counter>,
    query_misses: Vec<Counter>,
    query_invalidated: Vec<Counter>,
    query_evicted: Vec<Counter>,
    update_applied: Vec<Counter>,
    update_invalidations: Vec<Counter>,
    // Fault-tolerance counters (all zero under perfect delivery).
    epoch_gaps: Counter,
    recovery_flushes: Counter,
    recovery_flushed_entries: Counter,
    duplicate_invalidations: Counter,
    lease_expirations: Counter,
    home_retries: Counter,
    home_unavailable: Counter,
    degraded_serves: Counter,
    restarts: Counter,
    // Elastic-membership counters (all zero in a static fleet).
    handoff_exported: Counter,
    handoff_imported: Counter,
    // Overload-protection counters (all zero when protection is off).
    shed_admission: Counter,
    shed_breaker_open: Counter,
    shed_brownout: Counter,
    shed_queue_full: Counter,
    breaker_opens: Counter,
    breaker_half_opens: Counter,
    breaker_closes: Counter,
    brownout_entries: Counter,
    brownout_exits: Counter,
    brownout_serves: Counter,
    // Fleet fanout counters (all zero outside a `ProxyFleet`).
    fanout_batches_applied: Counter,
    fanout_batch_msgs: Counter,
    fanout_batch_duplicates: Counter,
    fanout_batch_gaps: Counter,
}

impl ProxyMetrics {
    fn new(registry: &MetricsRegistry, update_count: usize, query_count: usize) -> ProxyMetrics {
        let per_template = |prefix: &str, suffix: &str, n: usize| -> Vec<Counter> {
            (0..n)
                .map(|i| registry.counter(&format!("{prefix}.{i}.{suffix}")))
                .collect()
        };
        ProxyMetrics {
            queries: registry.counter("dssp.queries"),
            hits: registry.counter("dssp.hits"),
            misses: registry.counter("dssp.misses"),
            updates: registry.counter("dssp.updates"),
            invalidations: registry.counter("dssp.invalidations"),
            entries_scanned: registry.counter("dssp.entries_scanned"),
            evictions: registry.counter("dssp.evictions"),
            cache_replacements: registry.counter("dssp.cache_replacements"),
            cache_entries: registry.gauge("dssp.cache_entries"),
            scan_size: registry.histogram("dssp.invalidation_scan_size"),
            query_hits: per_template("query_template", "hits", query_count),
            query_misses: per_template("query_template", "misses", query_count),
            query_invalidated: per_template("query_template", "invalidated", query_count),
            query_evicted: per_template("query_template", "evicted", query_count),
            update_applied: per_template("update_template", "applied", update_count),
            update_invalidations: per_template("update_template", "invalidations", update_count),
            epoch_gaps: registry.counter("dssp.epoch_gaps"),
            recovery_flushes: registry.counter("dssp.recovery_flushes"),
            recovery_flushed_entries: registry.counter("dssp.recovery_flushed_entries"),
            duplicate_invalidations: registry.counter("dssp.duplicate_invalidations"),
            lease_expirations: registry.counter("dssp.lease_expirations"),
            home_retries: registry.counter("dssp.home_retries"),
            home_unavailable: registry.counter("dssp.home_unavailable"),
            degraded_serves: registry.counter("dssp.degraded_serves"),
            restarts: registry.counter("dssp.restarts"),
            handoff_exported: registry.counter("dssp.handoff_exported"),
            handoff_imported: registry.counter("dssp.handoff_imported"),
            shed_admission: registry.counter("dssp.shed_admission"),
            shed_breaker_open: registry.counter("dssp.shed_breaker_open"),
            shed_brownout: registry.counter("dssp.shed_brownout"),
            shed_queue_full: registry.counter("dssp.shed_queue_full"),
            breaker_opens: registry.counter("dssp.breaker_opens"),
            breaker_half_opens: registry.counter("dssp.breaker_half_opens"),
            breaker_closes: registry.counter("dssp.breaker_closes"),
            brownout_entries: registry.counter("dssp.brownout_entries"),
            brownout_exits: registry.counter("dssp.brownout_exits"),
            brownout_serves: registry.counter("dssp.brownout_serves"),
            fanout_batches_applied: registry.counter("dssp.fanout_batches_applied"),
            fanout_batch_msgs: registry.counter("dssp.fanout_batch_msgs"),
            fanout_batch_duplicates: registry.counter("dssp.fanout_batch_duplicates"),
            fanout_batch_gaps: registry.counter("dssp.fanout_batch_gaps"),
        }
    }
}

/// One application's DSSP proxy state.
pub struct Dssp {
    exposures: Exposures,
    matrix: IpmMatrix,
    cache: ResultCache,
    registry: MetricsRegistry,
    metrics: ProxyMetrics,
    tracer: Tracer,
    /// Causal span trees (disabled by default; see
    /// [`Dssp::enable_span_recording`]).
    spans: SpanRecorder,
    attribution: AttributionMatrix,
    /// Tenant label stamped on trace events (set by `DsspNode::register`).
    tenant: u32,
    /// Simulation clock in µs; trace events are stamped with it. Stays 0
    /// outside a simulation.
    now_micros: u64,
    /// Last invalidation-stream epoch applied (or covered by a recovery
    /// flush) on stream 0 — the classic single-home stream.
    epoch: u64,
    /// Merge cursors for invalidation streams ≥ 1 (one per home shard;
    /// see [`Dssp::apply_invalidation_from`]). Stream 0 lives in
    /// `epoch` so every classic single-stream path is untouched.
    stream_epochs: std::collections::HashMap<u64, u64>,
    recovery: RecoveryMode,
    /// Overload protection; `None` = accept everything.
    overload: Option<OverloadState>,
    /// Monotone per-proxy request counter, mixed with `jitter_salt` to
    /// seed full-jitter backoff draws.
    request_seq: u64,
    /// Per-proxy jitter salt derived from the app id, so identically
    /// scripted proxies retry on decorrelated schedules.
    jitter_salt: u64,
    /// The freshness plane and this proxy's replica index on it, when a
    /// harness attached one (see [`Dssp::attach_provenance`]).
    prov: Option<(SharedProvenance, usize)>,
    /// The leakage audit plane and this proxy's replica index on it, when
    /// a harness attached one (see [`Dssp::attach_audit`]). `None` keeps
    /// the hot path stamp-free, like the other observability planes.
    audit: Option<(SharedAudit, usize)>,
    /// Envelope seal/open meter feeding the `leakage` export; attached
    /// together with the audit plane.
    crypto_meter: Option<Arc<CryptoMeter>>,
    /// Application id, kept as the tenant label on audit ledgers.
    app_id: String,
}

impl Dssp {
    pub fn new(config: DsspConfig) -> Dssp {
        let encryptor = Encryptor::for_app(&config.app_id);
        let mut cache = match config.cache_capacity {
            Some(cap) => ResultCache::with_capacity(encryptor, cap),
            None => ResultCache::new(encryptor),
        };
        cache.set_lease_micros(config.lease_micros);
        let update_count = config.exposures.updates.len();
        let query_count = config.exposures.queries.len();
        let registry = MetricsRegistry::new();
        let metrics = ProxyMetrics::new(&registry, update_count, query_count);
        let jitter_salt = config
            .app_id
            .bytes()
            .fold(0x5c5_c5c5u64, |acc, b| splitmix64(acc ^ b as u64));
        let overload = config.overload.map(|cfg| OverloadState {
            config: cfg,
            breaker: CircuitBreaker::new(cfg.breaker),
            brownout: BrownoutController::new(cfg.brownout),
            brownout_active: false,
        });
        Dssp {
            cache,
            exposures: config.exposures,
            matrix: config.matrix,
            registry,
            metrics,
            tracer: Tracer::new(),
            spans: SpanRecorder::disabled(),
            attribution: AttributionMatrix::new(update_count, query_count),
            tenant: 0,
            now_micros: 0,
            epoch: 0,
            stream_epochs: std::collections::HashMap::new(),
            recovery: config.recovery,
            overload,
            request_seq: 0,
            jitter_salt,
            prov: None,
            audit: None,
            crypto_meter: None,
            app_id: config.app_id,
        }
    }

    /// Attaches the freshness plane: this proxy stamps serves, misses,
    /// stores, invalidations, and batch arrivals as `replica` on the
    /// shared log. The home server and the fanout layer must share the
    /// same log for the stamps to chain.
    pub fn attach_provenance(&mut self, prov: SharedProvenance, replica: usize) {
        self.prov = Some((prov, replica));
    }

    /// Attaches the leakage audit plane: this proxy stamps every
    /// encryption-boundary crossing (template ids observed, parameters
    /// inspected, view rows read) as `replica` on the shared log, and a
    /// [`CryptoMeter`] starts tallying the cache's envelope seals/opens.
    /// Without this call the proxy takes no audit locks and allocates
    /// nothing for metering.
    pub fn attach_audit(&mut self, audit: SharedAudit, replica: usize) {
        let meter = CryptoMeter::new();
        self.cache.meter_crypto(meter.clone());
        audit.lock().unwrap().register_replica(replica);
        self.crypto_meter = Some(meter);
        self.audit = Some((audit, replica));
    }

    /// The attached leakage audit plane, if any.
    pub fn audit(&self) -> Option<&SharedAudit> {
        self.audit.as_ref().map(|(a, _)| a)
    }

    /// The envelope seal/open meter, if the audit plane is attached.
    pub fn crypto_meter(&self) -> Option<&Arc<CryptoMeter>> {
        self.crypto_meter.as_ref()
    }

    /// Stamps the request-plane reveals of one arriving statement
    /// (template id at `template`+, parameter values at `stmt`+) and
    /// opens the audit request root follow-on reveals chain back to.
    /// Returns `None` — without touching a lock — when no audit plane is
    /// attached.
    fn audit_arrival(
        &self,
        is_update: bool,
        template: usize,
        level: ExposureLevel,
        origin: &'static str,
        params: &[Value],
    ) -> Option<u64> {
        let (audit, replica) = self.audit.as_ref()?;
        let mut a = audit.lock().unwrap();
        let req = a.begin_request(
            *replica,
            &self.app_id,
            is_update,
            template,
            level.as_str(),
            origin,
            self.now_micros,
        );
        for kind in request_reveals(level) {
            let bytes = match kind {
                RevealKind::TemplateId => TEMPLATE_ID_BYTES,
                RevealKind::Params => params.iter().map(value_plain_bytes).sum(),
                RevealKind::ViewRows => continue,
            };
            a.note_reveal(
                *replica,
                req,
                &self.app_id,
                is_update,
                template,
                RevealStamp {
                    kind: kind.name(),
                    path: "request",
                    level: level.as_str(),
                    bytes,
                    pairs: 1,
                },
                self.now_micros,
            );
        }
        if RevealKind::Params.possible_at(level) {
            a.note_param_values(
                &self.app_id,
                is_update,
                template,
                params.iter().map(value_hash),
            );
        }
        Some(req)
    }

    /// Stamps a plaintext result read (`view` exposure only): a cache
    /// serve or a miss fill whose rows the proxy sees in the clear.
    fn audit_view_read(
        &self,
        request: Option<u64>,
        template: usize,
        path: &'static str,
        result: &QueryResult,
    ) {
        let (Some((audit, replica)), Some(req)) = (&self.audit, request) else {
            return;
        };
        let mut a = audit.lock().unwrap();
        a.note_reveal(
            *replica,
            req,
            &self.app_id,
            false,
            template,
            RevealStamp {
                kind: RevealKind::ViewRows.name(),
                path,
                level: ExposureLevel::View.as_str(),
                bytes: result.approx_size_bytes() as u64,
                pairs: 1,
            },
            self.now_micros,
        );
        a.note_fields(template, result.columns.iter());
    }

    /// Changes the staleness lease applied to subsequently stored
    /// entries (`None` = never expire). Already-stored entries keep the
    /// lease they were stored under.
    pub fn set_lease_micros(&mut self, lease: Option<u64>) {
        self.cache.set_lease_micros(lease);
    }

    /// Stamps a batch arrival on the freshness plane, resolving the
    /// batch's stamp by its `first_epoch` (contiguous disjoint ranges
    /// make that unique). Silently skips batches the fanout layer never
    /// stamped — e.g. the perfect-delivery entry points.
    fn prov_arrival(&self, first_epoch: u64, kind: ApplyKind, before: u64, after: u64) {
        if let Some((prov, replica)) = &self.prov {
            let mut p = prov.lock().unwrap();
            if let Some(batch) = p.batch_for_epoch(first_epoch) {
                p.note_arrival(*replica, batch, self.now_micros, kind, before, after);
            }
        }
    }

    /// Cache entries evicted by the capacity bound (0 when unbounded).
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Handles a client query: serve from cache, or forward to the home
    /// server and cache the (non-empty) result.
    ///
    /// This is the paper's perfect-delivery entry point: a reliable link,
    /// no retries. It is a thin wrapper over [`Dssp::execute_query_ft`].
    pub fn execute_query(
        &mut self,
        q: &Query,
        home: &mut HomeServer,
    ) -> Result<QueryResponse, StorageError> {
        let resp =
            self.execute_query_ft(q, home, &HomeLink::reliable(), &RetryPolicy::no_retries())?;
        match resp.outcome {
            FtOutcome::Served { result, hit, .. } => Ok(QueryResponse { result, hit }),
            FtOutcome::Unavailable => unreachable!("reliable link never fails"),
        }
    }

    /// Handles an update: apply at the home server (master copy), then
    /// invalidate affected cached results. The DSSP never sees more of the
    /// update than its exposure level allows.
    ///
    /// Perfect-delivery entry point: the epoch-stamped invalidation
    /// notification is delivered back to this proxy immediately (wrapping
    /// [`Dssp::execute_update_ft`] + [`Dssp::apply_invalidation`]). If the
    /// master was written out of band since the last notification, the
    /// delivery exposes the epoch gap here and the response reports the
    /// recovery flush instead of a targeted invalidation pass.
    pub fn execute_update(
        &mut self,
        u: &Update,
        home: &mut HomeServer,
    ) -> Result<UpdateResponse, StorageError> {
        let resp =
            self.execute_update_ft(u, home, &HomeLink::reliable(), &RetryPolicy::no_retries())?;
        match resp.outcome {
            FtUpdateOutcome::Applied { effect, msg } => {
                let (scanned, invalidated) = match self.apply_invalidation(&msg) {
                    DeliveryOutcome::Applied {
                        scanned,
                        invalidated,
                    } => (scanned, invalidated),
                    DeliveryOutcome::Recovered { flushed } => (flushed, flushed),
                    DeliveryOutcome::Duplicate => (0, 0),
                };
                Ok(UpdateResponse {
                    effect,
                    scanned,
                    invalidated,
                })
            }
            FtUpdateOutcome::Unavailable => unreachable!("reliable link never fails"),
        }
    }

    /// Fault-tolerant query path. Within-lease cache hits serve even while
    /// the home link is down (graceful degradation — counted and traced);
    /// misses retry the home trip under `policy`'s backoff schedule and
    /// surface [`FtOutcome::Unavailable`] when the link stays down, never a
    /// stale substitute. Entries whose lease ran out are dropped, counted,
    /// and re-fetched like misses.
    pub fn execute_query_ft(
        &mut self,
        q: &Query,
        home: &mut HomeServer,
        link: &HomeLink,
        policy: &RetryPolicy,
    ) -> Result<FtQueryResponse, StorageError> {
        let tid = q.template_id;
        let level = self.exposures.queries[tid];
        let exposure = level.rank() as u8;
        let audit_req = self.audit_arrival(false, tid, level, "query", &q.params);
        self.metrics.queries.inc();
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::QueryRequest,
            SpanId::NONE,
            self.tenant,
            Some(tid as u32),
        );
        let root_timer = self.spans.timer();
        let lookup_timer = self.spans.timer();
        let mut lease_expired = false;
        match self.cache.lookup_classified(q) {
            Lookup::Hit(entry) => {
                let result = entry.serve().clone();
                let plaintext_hit = entry.visible_result().is_some();
                let (stored_at, stored_epoch, stored_stream, expires_at) = (
                    entry.stored_at_micros(),
                    entry.stored_epoch(),
                    entry.stored_stream(),
                    entry.expires_at_micros(),
                );
                self.spans.record_closed(
                    self.now_micros,
                    SpanPhase::CacheLookup,
                    root,
                    self.tenant,
                    Some(tid as u32),
                    lookup_timer,
                );
                self.metrics.hits.inc();
                self.metrics.query_hits[tid].inc();
                self.tracer.emit(
                    self.now_micros,
                    self.tenant,
                    TraceEventKind::QueryHit {
                        query_template: tid as u32,
                        exposure,
                    },
                );
                let degraded = !link.is_up(self.now_micros);
                if degraded {
                    self.metrics.degraded_serves.inc();
                    self.tracer.emit(
                        self.now_micros,
                        self.tenant,
                        TraceEventKind::DegradedServe {
                            query_template: tid as u32,
                        },
                    );
                }
                if let Some((prov, replica)) = &self.prov {
                    let mut p = prov.lock().unwrap();
                    // Staleness is scoped to the stream the entry was
                    // filled on (stream 0 for a classic home).
                    p.note_serve_on(
                        *replica,
                        tid,
                        stored_stream,
                        self.epoch_of(stored_stream),
                        stored_epoch,
                        stored_at,
                        expires_at,
                        self.now_micros,
                    );
                    if degraded {
                        p.note_degraded(*replica, tid, self.now_micros);
                    }
                }
                if plaintext_hit {
                    // A `view`-exposed serve reads the cached rows in the
                    // clear; lower levels return an opaque envelope.
                    self.audit_view_read(audit_req, tid, "serve", &result);
                }
                self.spans.close(root, root_timer);
                return Ok(FtQueryResponse {
                    outcome: FtOutcome::Served {
                        result,
                        hit: true,
                        degraded,
                    },
                    attempts: 0,
                    backoff_micros: 0,
                });
            }
            Lookup::Expired => {
                lease_expired = true;
                self.metrics.lease_expirations.inc();
                self.tracer.emit(
                    self.now_micros,
                    self.tenant,
                    TraceEventKind::LeaseExpired {
                        query_template: tid as u32,
                    },
                );
            }
            Lookup::Miss => {}
        }
        self.spans.record_closed(
            self.now_micros,
            SpanPhase::CacheLookup,
            root,
            self.tenant,
            Some(tid as u32),
            lookup_timer,
        );
        self.metrics.misses.inc();
        self.metrics.query_misses[tid].inc();
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::QueryMiss {
                query_template: tid as u32,
                exposure,
            },
        );
        if let Some((prov, replica)) = &self.prov {
            prov.lock()
                .unwrap()
                .note_miss(*replica, tid, self.now_micros, lease_expired);
        }
        let mut attempts = 0u32;
        let mut backoff = 0u64;
        let jitter_seed = self.next_jitter_seed();
        loop {
            let next = attempts + 1;
            let wait = policy.backoff_before_seeded(next, jitter_seed);
            if next > policy.max_attempts || backoff.saturating_add(wait) > policy.timeout_micros {
                break;
            }
            attempts = next;
            backoff += wait;
            if attempts > 1 {
                self.metrics.home_retries.inc();
                self.tracer.emit(
                    self.now_micros,
                    self.tenant,
                    TraceEventKind::HomeRetry {
                        attempt: attempts.min(u8::MAX as u32) as u8,
                    },
                );
            }
            if !link.is_up(self.now_micros.saturating_add(backoff)) {
                continue;
            }
            let trip_timer = self.spans.timer();
            let result = home.execute_query(q)?;
            self.spans.record_closed(
                self.now_micros,
                SpanPhase::HomeTrip,
                root,
                self.tenant,
                Some(tid as u32),
                trip_timer,
            );
            // Epoch handshake on the piggybacked home epoch — but only
            // while the cache is empty. With nothing cached, skipping
            // ahead cannot leave a stale entry behind; with entries
            // present, the gap must surface on the message stream so the
            // recovery flush covers them.
            if self.cache.is_empty() && home.epoch() > self.epoch {
                self.epoch = home.epoch();
            }
            let crypto_timer = self.spans.timer();
            let outcome = self.cache.store_with_evictions(q, result.clone(), level);
            self.spans.record_closed(
                self.now_micros,
                SpanPhase::Crypto,
                root,
                self.tenant,
                Some(tid as u32),
                crypto_timer,
            );
            if outcome.stored {
                // The fill carries the home's epoch as of the miss trip:
                // the entry is provably fresh up to that point, which is
                // the floor the staleness-age accounting starts from.
                let fill_epoch = home.epoch();
                self.cache.set_stored_epoch(q, fill_epoch);
                if let Some((prov, replica)) = &self.prov {
                    prov.lock()
                        .unwrap()
                        .note_store(*replica, tid, fill_epoch, self.now_micros);
                }
            }
            if outcome.replaced {
                self.metrics.cache_replacements.inc();
            }
            if level == ExposureLevel::View {
                // At `view` exposure the fill is stored — and thus read —
                // as plaintext rows.
                self.audit_view_read(audit_req, tid, "fill", &result);
            }
            for victim in &outcome.evicted {
                self.metrics.evictions.inc();
                self.metrics.query_evicted[victim.template_id].inc();
                self.tracer.emit(
                    self.now_micros,
                    self.tenant,
                    TraceEventKind::EntryEvicted {
                        query_template: victim.template_id as u32,
                    },
                );
            }
            self.metrics.cache_entries.set(self.cache.len() as i64);
            self.spans.close(root, root_timer);
            return Ok(FtQueryResponse {
                outcome: FtOutcome::Served {
                    result,
                    hit: false,
                    degraded: false,
                },
                attempts,
                backoff_micros: backoff,
            });
        }
        self.metrics.home_unavailable.inc();
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::HomeUnreachable {
                attempts: attempts.min(u8::MAX as u32) as u8,
            },
        );
        self.spans.close(root, root_timer);
        Ok(FtQueryResponse {
            outcome: FtOutcome::Unavailable,
            attempts,
            backoff_micros: backoff,
        })
    }

    /// Fault-tolerant update path: apply at the master under `policy`'s
    /// retry schedule. On success the epoch-stamped invalidation
    /// notification is **returned, not applied** — the caller owns the
    /// delivery channel (the simulator may drop, delay, duplicate, or
    /// reorder it before [`Dssp::apply_invalidation`] sees it). While the
    /// link stays down the master is untouched and the outcome is
    /// [`FtUpdateOutcome::Unavailable`].
    pub fn execute_update_ft(
        &mut self,
        u: &Update,
        home: &mut HomeServer,
        link: &HomeLink,
        policy: &RetryPolicy,
    ) -> Result<FtUpdateResponse, StorageError> {
        let uid = u.template_id;
        let level = self.exposures.updates[uid];
        let _ = self.audit_arrival(true, uid, level, "update", &u.params);
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::UpdateRequest,
            SpanId::NONE,
            self.tenant,
            Some(uid as u32),
        );
        let root_timer = self.spans.timer();
        let mut attempts = 0u32;
        let mut backoff = 0u64;
        let jitter_seed = self.next_jitter_seed();
        loop {
            let next = attempts + 1;
            let wait = policy.backoff_before_seeded(next, jitter_seed);
            if next > policy.max_attempts || backoff.saturating_add(wait) > policy.timeout_micros {
                break;
            }
            attempts = next;
            backoff += wait;
            if attempts > 1 {
                self.metrics.home_retries.inc();
                self.tracer.emit(
                    self.now_micros,
                    self.tenant,
                    TraceEventKind::HomeRetry {
                        attempt: attempts.min(u8::MAX as u32) as u8,
                    },
                );
            }
            if !link.is_up(self.now_micros.saturating_add(backoff)) {
                continue;
            }
            self.metrics.updates.inc();
            self.metrics.update_applied[uid].inc();
            self.attribution.record_update(uid);
            self.tracer.emit(
                self.now_micros,
                self.tenant,
                TraceEventKind::UpdateApplied {
                    update_template: uid as u32,
                    exposure: level.rank() as u8,
                },
            );
            let trip_timer = self.spans.timer();
            let (effect, msg) = home.apply_update(u)?;
            self.spans.record_closed(
                self.now_micros,
                SpanPhase::HomeTrip,
                root,
                self.tenant,
                Some(uid as u32),
                trip_timer,
            );
            self.spans.close(root, root_timer);
            return Ok(FtUpdateResponse {
                outcome: FtUpdateOutcome::Applied { effect, msg },
                attempts,
                backoff_micros: backoff,
            });
        }
        self.metrics.home_unavailable.inc();
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::HomeUnreachable {
                attempts: attempts.min(u8::MAX as u32) as u8,
            },
        );
        self.spans.close(root, root_timer);
        Ok(FtUpdateResponse {
            outcome: FtUpdateOutcome::Unavailable,
            attempts,
            backoff_micros: backoff,
        })
    }

    /// The overload-guarded query path: [`Dssp::execute_query_ft`]
    /// wrapped in deadline-aware admission, the per-home-link circuit
    /// breaker, and brownout serving.
    ///
    /// `queue` is the caller's snapshot of the home-side bottleneck
    /// (queueing lives in the simulator's service centers, not in the
    /// proxy). Decision order for a request offered at the current sim
    /// time:
    ///
    /// 1. a fresh (within-lease) cache hit always serves — under
    ///    brownout it serves *degraded* and is counted as a brownout
    ///    serve; staleness stays lease-bounded either way;
    /// 2. under brownout (breaker open, or the last window's *backstop*
    ///    rejection ratio — bounded-queue refusals, not orderly
    ///    admission sheds — at threshold) a miss fast-rejects with
    ///    [`Overloaded`];
    /// 3. a miss whose projected completion (`queue` wait + service
    ///    estimate) already violates the deadline is shed at arrival;
    /// 4. an open breaker refuses the home trip locally; a half-open
    ///    breaker admits exactly one probe;
    /// 5. otherwise the `_ft` path runs, and its outcome feeds the
    ///    breaker (`Served` → success, `Unavailable` → failure).
    ///
    /// Without [`DsspConfig::overload`] this is a transparent wrapper
    /// over the `_ft` path — nothing is ever shed.
    pub fn execute_query_overload(
        &mut self,
        q: &Query,
        home: &mut HomeServer,
        link: &HomeLink,
        policy: &RetryPolicy,
        queue: &QueueState,
    ) -> Result<OverloadQueryResponse, StorageError> {
        if self.overload.is_none() {
            let resp = self.execute_query_ft(q, home, link, policy)?;
            return Ok(OverloadQueryResponse::from_ft(resp));
        }
        let now = self.now_micros;
        let tid = q.template_id as u32;
        self.poll_breaker(now);
        let (breaker_open, brownout) = {
            let ol = self.overload.as_mut().expect("checked above");
            let open = ol.breaker.state() == BreakerState::Open;
            (open, ol.brownout.active(now, open))
        };
        self.set_brownout_active(brownout);
        let fresh_hit = self.cache.peek_fresh(q);
        if fresh_hit {
            // Hits never touch the home tier, so neither admission nor
            // the breaker applies; under brownout the serve is degraded.
            let resp = self.execute_query_ft(q, home, link, policy)?;
            self.record_offered(now, false);
            let mut out = OverloadQueryResponse::from_ft(resp);
            if brownout {
                if let OverloadOutcome::Served { degraded, .. } = &mut out.outcome {
                    if !*degraded {
                        self.metrics.degraded_serves.inc();
                        self.tracer.emit(
                            now,
                            self.tenant,
                            TraceEventKind::DegradedServe {
                                query_template: tid,
                            },
                        );
                    }
                    *degraded = true;
                    self.metrics.brownout_serves.inc();
                }
            }
            return Ok(out);
        }
        if brownout {
            // Brownout fast-rejects misses instead of queueing them. Its
            // own rejects are deliberate, not distress, so they do not
            // feed the trigger — counting them would latch brownout for
            // as long as the overload lasts (shed → ratio hot → shed …),
            // starving the cache of refills.
            let why = if breaker_open {
                Overloaded::BreakerOpen {
                    retry_after_micros: self.breaker_retry_after(now),
                }
            } else {
                Overloaded::Brownout
            };
            self.record_offered(now, false);
            return Ok(self.shed_query(tid, why));
        }
        let admission = {
            let ol = self.overload.as_ref().expect("checked above");
            AdmissionController::new(ol.config.admission)
        };
        if let Err(r) = admission.admit(now, queue) {
            // Admission shedding is the system operating correctly at
            // overload — it does not feed the brownout trigger either.
            self.record_offered(now, false);
            return Ok(self.shed_query(tid, Overloaded::Admission(r)));
        }
        let acquired = {
            let ol = self.overload.as_mut().expect("checked above");
            ol.breaker.try_acquire(now)
        };
        if !acquired {
            // Breaker state already forces brownout directly.
            let why = Overloaded::BreakerOpen {
                retry_after_micros: self.breaker_retry_after(now),
            };
            self.record_offered(now, false);
            return Ok(self.shed_query(tid, why));
        }
        let resp = self.execute_query_ft(q, home, link, policy)?;
        let transition = {
            let ol = self.overload.as_mut().expect("checked above");
            match resp.outcome {
                FtOutcome::Served { .. } => ol.breaker.on_success(now),
                FtOutcome::Unavailable => ol.breaker.on_failure(now),
            }
        };
        if let Some(t) = transition {
            self.note_transition(t);
        }
        self.record_offered(now, false);
        Ok(OverloadQueryResponse::from_ft(resp))
    }

    /// The overload-guarded update path. Updates always need the home
    /// tier, so deadline admission and the circuit breaker gate them;
    /// brownout does **not** shed updates on its own (writes carry more
    /// value than reads, and an admitted update feeds the breaker the
    /// freshest link signal). A shed update leaves the master untouched.
    pub fn execute_update_overload(
        &mut self,
        u: &Update,
        home: &mut HomeServer,
        link: &HomeLink,
        policy: &RetryPolicy,
        queue: &QueueState,
    ) -> Result<OverloadUpdateResponse, StorageError> {
        if self.overload.is_none() {
            let resp = self.execute_update_ft(u, home, link, policy)?;
            return Ok(OverloadUpdateResponse::from_ft(resp));
        }
        let now = self.now_micros;
        let tid = u.template_id as u32;
        self.poll_breaker(now);
        let admission = {
            let ol = self.overload.as_ref().expect("checked above");
            AdmissionController::new(ol.config.admission)
        };
        if let Err(r) = admission.admit(now, queue) {
            self.record_offered(now, false);
            return Ok(self.shed_update(tid, Overloaded::Admission(r)));
        }
        let acquired = {
            let ol = self.overload.as_mut().expect("checked above");
            ol.breaker.try_acquire(now)
        };
        if !acquired {
            let why = Overloaded::BreakerOpen {
                retry_after_micros: self.breaker_retry_after(now),
            };
            self.record_offered(now, false);
            return Ok(self.shed_update(tid, why));
        }
        let resp = self.execute_update_ft(u, home, link, policy)?;
        let transition = {
            let ol = self.overload.as_mut().expect("checked above");
            match resp.outcome {
                FtUpdateOutcome::Applied { .. } => ol.breaker.on_success(now),
                FtUpdateOutcome::Unavailable => ol.breaker.on_failure(now),
            }
        };
        if let Some(t) = transition {
            self.note_transition(t);
        }
        self.record_offered(now, false);
        Ok(OverloadUpdateResponse::from_ft(resp))
    }

    /// Accounts a request the *caller* shed at a bounded netsim queue
    /// (`try_serve`/`try_send` rejection) so the proxy's shed counters
    /// and brownout shed-ratio see it. Returns the error to surface.
    pub fn record_queue_rejection(&mut self, query_template: u32) -> Overloaded {
        let now = self.now_micros;
        self.record_offered(now, true);
        self.note_shed(query_template, ShedReason::QueueFull);
        Overloaded::QueueFull
    }

    /// The circuit breaker's current state (`None` when overload
    /// protection is off).
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.overload.as_ref().map(|ol| ol.breaker.state())
    }

    /// Whether brownout mode was active at the last guarded request.
    pub fn brownout_active(&self) -> bool {
        self.overload.as_ref().is_some_and(|ol| ol.brownout_active)
    }

    /// The configured overload protection, if any.
    pub fn overload_config(&self) -> Option<&OverloadConfig> {
        self.overload.as_ref().map(|ol| &ol.config)
    }

    fn next_jitter_seed(&mut self) -> u64 {
        self.request_seq += 1;
        splitmix64(self.jitter_salt ^ self.request_seq)
    }

    fn poll_breaker(&mut self, now: u64) {
        let transition = self.overload.as_mut().and_then(|ol| ol.breaker.poll(now));
        if let Some(t) = transition {
            self.note_transition(t);
        }
    }

    fn breaker_retry_after(&self, now: u64) -> u64 {
        self.overload
            .as_ref()
            .map(|ol| ol.breaker.probe_due_micros().saturating_sub(now))
            .unwrap_or(0)
    }

    /// Feeds the brownout trigger. `distress` is true only for backstop
    /// rejections (a bounded queue refusing admitted work): orderly
    /// admission sheds, breaker refusals (the breaker forces brownout by
    /// state), and brownout's own fast-rejects stay out of the ratio so
    /// sustained overload cannot latch brownout on its own output.
    fn record_offered(&mut self, now: u64, distress: bool) {
        if let Some(ol) = self.overload.as_mut() {
            ol.brownout.record(now, distress);
        }
    }

    fn set_brownout_active(&mut self, active: bool) {
        let Some(ol) = self.overload.as_mut() else {
            return;
        };
        if ol.brownout_active == active {
            return;
        }
        ol.brownout_active = active;
        if active {
            self.metrics.brownout_entries.inc();
        } else {
            self.metrics.brownout_exits.inc();
        }
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::BrownoutMode { active },
        );
    }

    fn note_transition(&mut self, t: BreakerTransition) {
        match t.to {
            BreakerState::Open => self.metrics.breaker_opens.inc(),
            BreakerState::HalfOpen => self.metrics.breaker_half_opens.inc(),
            BreakerState::Closed => self.metrics.breaker_closes.inc(),
        }
        self.tracer.emit(
            t.at_micros,
            self.tenant,
            TraceEventKind::BreakerTransition {
                from: t.from.code(),
                to: t.to.code(),
            },
        );
    }

    fn note_shed(&mut self, template: u32, reason: ShedReason) {
        match reason {
            ShedReason::Admission => self.metrics.shed_admission.inc(),
            ShedReason::BreakerOpen => self.metrics.shed_breaker_open.inc(),
            ShedReason::Brownout => self.metrics.shed_brownout.inc(),
            ShedReason::QueueFull => self.metrics.shed_queue_full.inc(),
        }
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::RequestShed {
                query_template: template,
                reason: reason.code(),
            },
        );
    }

    fn shed_query(&mut self, template: u32, why: Overloaded) -> OverloadQueryResponse {
        self.note_shed(template, why.reason());
        OverloadQueryResponse {
            outcome: OverloadOutcome::Shed(why),
            attempts: 0,
            backoff_micros: 0,
        }
    }

    fn shed_update(&mut self, template: u32, why: Overloaded) -> OverloadUpdateResponse {
        self.note_shed(template, why.reason());
        OverloadUpdateResponse {
            outcome: OverloadUpdateOutcome::Shed(why),
            attempts: 0,
            backoff_micros: 0,
        }
    }

    /// Delivers one epoch-stamped invalidation notification.
    ///
    /// * `epoch == last + 1` — in order: the update's invalidation pass
    ///   runs exactly as under perfect delivery.
    /// * `epoch <= last` — a duplicate, or a reorder whose gap already
    ///   forced a flush that covered it: dropped.
    /// * `epoch > last + 1` — a gap: one or more notifications were lost
    ///   (or the master was written out of band). The [`RecoveryMode`]
    ///   flush runs; it covers this message's own invalidations too, so
    ///   the message itself is not applied separately.
    pub fn apply_invalidation(&mut self, msg: &InvalidationMsg) -> DeliveryOutcome {
        let expected = self.epoch + 1;
        if msg.epoch < expected {
            self.metrics.duplicate_invalidations.inc();
            self.prov_arrival(msg.epoch, ApplyKind::Duplicate, self.epoch, self.epoch);
            return DeliveryOutcome::Duplicate;
        }
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::InvalidationFanout,
            SpanId::NONE,
            self.tenant,
            Some(msg.update.template_id as u32),
        );
        let root_timer = self.spans.timer();
        if msg.epoch > expected {
            self.metrics.epoch_gaps.inc();
            self.tracer.emit(
                self.now_micros,
                self.tenant,
                TraceEventKind::EpochGap {
                    expected,
                    got: msg.epoch,
                },
            );
            let recovery_timer = self.spans.timer();
            let flushed = self.recovery_flush();
            self.spans.record_closed(
                self.now_micros,
                SpanPhase::Recovery,
                root,
                self.tenant,
                None,
                recovery_timer,
            );
            let before = self.epoch;
            self.epoch = msg.epoch;
            self.prov_arrival(
                msg.epoch,
                ApplyKind::Recovered {
                    flushed: flushed as u64,
                },
                before,
                msg.epoch,
            );
            self.spans.close(root, root_timer);
            return DeliveryOutcome::Recovered { flushed };
        }
        let before = self.epoch;
        self.epoch = msg.epoch;
        let (scanned, invalidated) = self.run_invalidation_pass(&msg.update, msg.epoch);
        self.prov_arrival(
            msg.epoch,
            ApplyKind::Applied {
                applied: 1,
                skipped: 0,
            },
            before,
            msg.epoch,
        );
        self.spans.close(root, root_timer);
        DeliveryOutcome::Applied {
            scanned,
            invalidated,
        }
    }

    /// Delivers one fanout batch covering the contiguous epoch range
    /// `[first_epoch, last_epoch]`.
    ///
    /// Batch-level ordering mirrors [`Dssp::apply_invalidation`]:
    ///
    /// * `last_epoch <= last applied` — the whole batch is a duplicate
    ///   (a redelivered batch, or one covered by an earlier gap flush).
    /// * `first_epoch > last applied + 1` — a gap: an earlier batch was
    ///   lost, so the [`RecoveryMode`] flush runs and covers this
    ///   batch's own invalidations.
    /// * otherwise the batch attaches (possibly overlapping): retained
    ///   messages with an epoch beyond the stream position are applied
    ///   in order, the rest skipped as covered.
    ///
    /// Within an attaching batch the retained epochs may be
    /// non-contiguous — coalescing removed earlier duplicates of a
    /// later representative — so messages are **not** routed through
    /// `apply_invalidation` (which would misread each coalesced hole as
    /// a lost notification and flush). The hole is safe precisely
    /// because coalescing keeps the *latest*-epoch representative: the
    /// content of every removed epoch is re-stated by a message at or
    /// after it within this same batch.
    pub fn apply_batch(&mut self, batch: &InvalidationBatch) -> BatchOutcome {
        let epoch_before = self.epoch;
        if batch.last_epoch <= self.epoch {
            self.metrics.fanout_batch_duplicates.inc();
            self.metrics
                .duplicate_invalidations
                .add(batch.msgs.len() as u64);
            self.prov_arrival(
                batch.first_epoch,
                ApplyKind::Duplicate,
                epoch_before,
                epoch_before,
            );
            return BatchOutcome::Duplicate;
        }
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::BatchApply,
            SpanId::NONE,
            self.tenant,
            batch.msgs.first().map(|m| m.update.template_id as u32),
        );
        let root_timer = self.spans.timer();
        let expected = self.epoch + 1;
        if batch.first_epoch > expected {
            self.metrics.fanout_batch_gaps.inc();
            self.metrics.epoch_gaps.inc();
            self.tracer.emit(
                self.now_micros,
                self.tenant,
                TraceEventKind::EpochGap {
                    expected,
                    got: batch.first_epoch,
                },
            );
            let recovery_timer = self.spans.timer();
            let flushed = self.recovery_flush();
            self.spans.record_closed(
                self.now_micros,
                SpanPhase::Recovery,
                root,
                self.tenant,
                None,
                recovery_timer,
            );
            self.epoch = batch.last_epoch;
            self.prov_arrival(
                batch.first_epoch,
                ApplyKind::Recovered {
                    flushed: flushed as u64,
                },
                epoch_before,
                self.epoch,
            );
            self.spans.close(root, root_timer);
            return BatchOutcome::Recovered { flushed };
        }
        let mut applied = 0usize;
        let mut skipped = 0usize;
        let mut scanned = 0usize;
        let mut invalidated = 0usize;
        for msg in &batch.msgs {
            if msg.epoch <= self.epoch {
                skipped += 1;
                self.metrics.duplicate_invalidations.inc();
                continue;
            }
            self.epoch = msg.epoch;
            let (s, i) = self.run_invalidation_pass(&msg.update, msg.epoch);
            scanned += s;
            invalidated += i;
            applied += 1;
        }
        // Epochs past the last retained message were coalesced away;
        // their content is covered by the representatives just applied.
        self.epoch = batch.last_epoch;
        self.metrics.fanout_batches_applied.inc();
        self.metrics.fanout_batch_msgs.add(applied as u64);
        self.prov_arrival(
            batch.first_epoch,
            ApplyKind::Applied {
                applied: applied as u64,
                skipped: skipped as u64,
            },
            epoch_before,
            self.epoch,
        );
        self.spans.close(root, root_timer);
        BatchOutcome::Applied {
            applied,
            skipped,
            scanned,
            invalidated,
        }
    }

    /// The update's invalidation pass: ask the strategy per entry,
    /// account per victim. When the update's template is visible, the
    /// scan restricts itself to *candidate* entries — blind-level entries
    /// (always victims under Property 1) plus entries of the query
    /// templates the IPM marks as conflicting — via the cache's secondary
    /// index. A blind update gives the strategy nothing to filter on
    /// (every entry is a victim), so it keeps the full scan.
    fn run_invalidation_pass(&mut self, u: &Update, at_epoch: u64) -> (usize, usize) {
        let uid = u.template_id;
        let level = self.exposures.updates[uid];
        let view = UpdateView::new(u, level);
        let matrix = &self.matrix;
        // Collect per-victim attribution while the cache is borrowed; the
        // entry's *canonical* template id is recorded (telemetry sits
        // inside the DSSP's trust boundary and may account for entries the
        // strategy itself cannot inspect).
        let mut victims: Vec<(usize, DecisionPath, u8)> = Vec::new();
        // Scan-time leakage aggregation, keyed by (entry template, reveal
        // kind, decision path, entry level): each inspected pair reveals
        // what the decision path had to read. Aggregated locally inside
        // the judge and flushed as one event per key after the scan — the
        // audit lock is never taken per pair. `None` when the plane is
        // off, keeping the closure allocation-free.
        let mut scan_agg: Option<ScanAgg> = self
            .audit
            .as_ref()
            .map(|_| std::collections::BTreeMap::new());
        let mut judge = |entry: &crate::cache::CacheEntry| {
            let (kill, path) = decide(matrix, &view, entry);
            if let Some(agg) = scan_agg.as_mut() {
                let qid = entry.key().template_id;
                let lvl = entry.level().as_str();
                let mut note = |kind: &'static str, bytes: u64| {
                    let slot = agg.entry((qid, kind, path.name(), lvl)).or_insert((0, 0));
                    slot.0 += bytes;
                    slot.1 += 1;
                };
                // Reveals are cumulative down the decision paths, like
                // `request_reveals` down the lattice: reading a
                // statement necessarily reveals the template id, and
                // reading a view reveals both — so raising a level
                // never shrinks any single ledger counter.
                match path {
                    // A blind side inspects nothing.
                    DecisionPath::BlindSide => {}
                    DecisionPath::Template => {
                        note(RevealKind::TemplateId.name(), TEMPLATE_ID_BYTES);
                    }
                    DecisionPath::Statement => {
                        note(RevealKind::TemplateId.name(), TEMPLATE_ID_BYTES);
                        let bytes = entry
                            .visible_statement()
                            .map_or(0, |q| q.statement_text().len() as u64);
                        note(RevealKind::Params.name(), bytes);
                    }
                    DecisionPath::View => {
                        note(RevealKind::TemplateId.name(), TEMPLATE_ID_BYTES);
                        let stmt = entry
                            .visible_statement()
                            .map_or(0, |q| q.statement_text().len() as u64);
                        note(RevealKind::Params.name(), stmt);
                        let rows = entry
                            .visible_result()
                            .map_or(0, |r| r.approx_size_bytes() as u64);
                        note(RevealKind::ViewRows.name(), rows);
                    }
                }
            }
            if kill {
                victims.push((entry.key().template_id, path, entry.level().rank() as u8));
            }
            kill
        };
        let (scanned, invalidated) = match view.visible_template_id() {
            Some(_) => {
                let candidates: Vec<usize> = (0..matrix.query_count())
                    .filter(|&qid| !matrix.entry(uid, qid).all_zero())
                    .collect();
                self.cache.invalidate_candidates(&candidates, &mut judge)
            }
            None => self.cache.invalidate_where(&mut judge),
        };
        if let Some((prov, replica)) = &self.prov {
            let mut p = prov.lock().unwrap();
            p.note_scan(uid, scanned as u64, invalidated as u64);
            for (qid, _, _) in &victims {
                p.note_invalidate(*replica, *qid, uid, at_epoch, self.now_micros);
            }
        }
        if let (Some((audit, replica)), Some(agg)) = (&self.audit, scan_agg) {
            if !agg.is_empty() {
                // One audit root per invalidation pass: delivery is
                // asynchronous from the client's update request, so the
                // scan's reveals chain to an `apply`-origin root here.
                let mut a = audit.lock().unwrap();
                let req = a.begin_request(
                    *replica,
                    &self.app_id,
                    true,
                    uid,
                    level.as_str(),
                    "apply",
                    self.now_micros,
                );
                for ((qid, kind, path, lvl), (bytes, pairs)) in agg {
                    a.note_reveal(
                        *replica,
                        req,
                        &self.app_id,
                        false,
                        qid,
                        RevealStamp {
                            kind,
                            path,
                            level: lvl,
                            bytes,
                            pairs,
                        },
                        self.now_micros,
                    );
                }
            }
        }
        for (qid, path, entry_exposure) in victims {
            self.metrics.invalidations.inc();
            self.metrics.query_invalidated[qid].inc();
            self.metrics.update_invalidations[uid].inc();
            self.attribution.record_invalidation(uid, qid);
            self.tracer.emit(
                self.now_micros,
                self.tenant,
                TraceEventKind::EntryInvalidated {
                    update_template: uid as u32,
                    query_template: qid as u32,
                    exposure: entry_exposure,
                    decision: path.code(),
                },
            );
        }
        self.metrics.entries_scanned.add(scanned as u64);
        self.metrics.scan_size.record(scanned as u64);
        self.metrics.cache_entries.set(self.cache.len() as i64);
        (scanned, invalidated)
    }

    /// Flushes what an unknown missed update could have invalidated.
    /// `FlushAffected` keeps only entries whose query template the static
    /// IPM proved conflict-free against *every* update template — exposure
    /// does not matter here, because the IPM speaks about ground truth over
    /// templates, not about what the proxy may inspect at runtime.
    fn recovery_flush(&mut self) -> usize {
        let flushed = match self.recovery {
            RecoveryMode::FlushAll => self.cache.clear(),
            RecoveryMode::FlushAffected => {
                let matrix = &self.matrix;
                let update_count = matrix.update_count();
                self.cache
                    .invalidate_where(|entry| {
                        let qid = entry.key().template_id;
                        (0..update_count).any(|uid| !matrix.entry(uid, qid).all_zero())
                    })
                    .1
            }
        };
        self.metrics.recovery_flushes.inc();
        self.metrics.recovery_flushed_entries.add(flushed as u64);
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::RecoveryFlush {
                flushed: flushed as u64,
                mode: self.recovery.code(),
            },
        );
        self.metrics.cache_entries.set(self.cache.len() as i64);
        flushed
    }

    /// Simulates a crash + restart of this proxy: the cache is lost and
    /// the epoch tracker re-handshakes from the home server's current
    /// epoch (piggybacked on the reconnect). Starting empty makes the
    /// skip-ahead safe — there is nothing cached for a missed update to
    /// have left stale — and any in-flight notifications from before the
    /// crash then arrive as droppable duplicates.
    pub fn restart(&mut self, home_epoch: u64) {
        let timer = self.spans.timer();
        self.cache.clear();
        self.epoch = home_epoch;
        self.metrics.restarts.inc();
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::NodeRestart { epoch: home_epoch },
        );
        self.metrics.cache_entries.set(0);
        self.spans.record_closed(
            self.now_micros,
            SpanPhase::Recovery,
            SpanId::NONE,
            self.tenant,
            None,
            timer,
        );
    }

    /// Last invalidation-stream epoch this proxy has applied or covered.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets a fresh joiner's epoch cursor to the home server's epoch at
    /// pipe registration. Unlike [`Dssp::restart`] this neither clears
    /// the cache nor counts as a crash: the joiner starts empty anyway,
    /// and every update ≤ `home_epoch` is already reflected in the
    /// master state it warms from, while every later one arrives on its
    /// own newly-registered pipe.
    pub fn handshake(&mut self, home_epoch: u64) {
        self.epoch = home_epoch;
    }

    /// This replica's merge cursor on invalidation stream `stream` —
    /// the last epoch applied or covered on that shard's stream.
    /// Stream 0 is [`Dssp::epoch`]; unseen streams start at 0.
    pub fn epoch_of(&self, stream: u64) -> u64 {
        if stream == 0 {
            self.epoch
        } else {
            self.stream_epochs.get(&stream).copied().unwrap_or(0)
        }
    }

    fn set_stream_cursor(&mut self, stream: u64, epoch: u64) {
        if stream == 0 {
            self.epoch = epoch;
        } else {
            self.stream_epochs.insert(stream, epoch);
        }
    }

    /// [`Dssp::handshake`] for one shard stream: sets the merge cursor
    /// without clearing the cache (a fresh joiner warming from a
    /// sharded master calls this once per shard).
    pub fn handshake_stream(&mut self, stream: u64, epoch: u64) {
        self.set_stream_cursor(stream, epoch);
    }

    /// [`Dssp::prov_arrival`] for a labeled stream: the batch stamp is
    /// resolved per `(stream, first_epoch)` — epochs are only unique
    /// within one shard's stream.
    fn prov_arrival_on(
        &self,
        stream: u64,
        first_epoch: u64,
        kind: ApplyKind,
        before: u64,
        after: u64,
    ) {
        if let Some((prov, replica)) = &self.prov {
            let mut p = prov.lock().unwrap();
            if let Some(batch) = p.batch_for_epoch_on(stream, first_epoch) {
                p.note_arrival(*replica, batch, self.now_micros, kind, before, after);
            }
        }
    }

    /// Delivers one invalidation from shard stream `stream`, merging it
    /// at this replica under that stream's own cursor. Stream 0 is the
    /// classic path ([`Dssp::apply_invalidation`]) unchanged; for other
    /// streams the same ordering protocol runs per stream — duplicate
    /// below the cursor, gap above `cursor + 1` (a lost notification
    /// *on that shard's stream*) triggering the recovery flush, in-order
    /// delivery running the invalidation pass. The flush is deliberately
    /// not stream-scoped: a missed update on any shard may have touched
    /// any cached entry, so the conservative [`RecoveryMode`] sweep of
    /// the whole cache is what keeps cross-stream merges safe.
    pub fn apply_invalidation_from(
        &mut self,
        stream: u64,
        msg: &InvalidationMsg,
    ) -> DeliveryOutcome {
        if stream == 0 {
            return self.apply_invalidation(msg);
        }
        let cursor = self.epoch_of(stream);
        let expected = cursor + 1;
        if msg.epoch < expected {
            self.metrics.duplicate_invalidations.inc();
            self.prov_arrival_on(stream, msg.epoch, ApplyKind::Duplicate, cursor, cursor);
            return DeliveryOutcome::Duplicate;
        }
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::InvalidationFanout,
            SpanId::NONE,
            self.tenant,
            Some(msg.update.template_id as u32),
        );
        let root_timer = self.spans.timer();
        if msg.epoch > expected {
            self.metrics.epoch_gaps.inc();
            self.tracer.emit(
                self.now_micros,
                self.tenant,
                TraceEventKind::EpochGap {
                    expected,
                    got: msg.epoch,
                },
            );
            let recovery_timer = self.spans.timer();
            let flushed = self.recovery_flush();
            self.spans.record_closed(
                self.now_micros,
                SpanPhase::Recovery,
                root,
                self.tenant,
                None,
                recovery_timer,
            );
            self.set_stream_cursor(stream, msg.epoch);
            self.prov_arrival_on(
                stream,
                msg.epoch,
                ApplyKind::Recovered {
                    flushed: flushed as u64,
                },
                cursor,
                msg.epoch,
            );
            self.spans.close(root, root_timer);
            return DeliveryOutcome::Recovered { flushed };
        }
        self.set_stream_cursor(stream, msg.epoch);
        let (scanned, invalidated) = self.run_invalidation_pass(&msg.update, msg.epoch);
        self.prov_arrival_on(
            stream,
            msg.epoch,
            ApplyKind::Applied {
                applied: 1,
                skipped: 0,
            },
            cursor,
            msg.epoch,
        );
        self.spans.close(root, root_timer);
        DeliveryOutcome::Applied {
            scanned,
            invalidated,
        }
    }

    /// Delivers one fanout batch from shard stream `stream` — the
    /// batch-level mirror of [`Dssp::apply_invalidation_from`], with
    /// [`Dssp::apply_batch`]'s duplicate/gap/attach ordering evaluated
    /// against that stream's own cursor.
    pub fn apply_batch_from(&mut self, stream: u64, batch: &InvalidationBatch) -> BatchOutcome {
        if stream == 0 {
            return self.apply_batch(batch);
        }
        let epoch_before = self.epoch_of(stream);
        if batch.last_epoch <= epoch_before {
            self.metrics.fanout_batch_duplicates.inc();
            self.metrics
                .duplicate_invalidations
                .add(batch.msgs.len() as u64);
            self.prov_arrival_on(
                stream,
                batch.first_epoch,
                ApplyKind::Duplicate,
                epoch_before,
                epoch_before,
            );
            return BatchOutcome::Duplicate;
        }
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::BatchApply,
            SpanId::NONE,
            self.tenant,
            batch.msgs.first().map(|m| m.update.template_id as u32),
        );
        let root_timer = self.spans.timer();
        let expected = epoch_before + 1;
        if batch.first_epoch > expected {
            self.metrics.fanout_batch_gaps.inc();
            self.metrics.epoch_gaps.inc();
            self.tracer.emit(
                self.now_micros,
                self.tenant,
                TraceEventKind::EpochGap {
                    expected,
                    got: batch.first_epoch,
                },
            );
            let recovery_timer = self.spans.timer();
            let flushed = self.recovery_flush();
            self.spans.record_closed(
                self.now_micros,
                SpanPhase::Recovery,
                root,
                self.tenant,
                None,
                recovery_timer,
            );
            self.set_stream_cursor(stream, batch.last_epoch);
            self.prov_arrival_on(
                stream,
                batch.first_epoch,
                ApplyKind::Recovered {
                    flushed: flushed as u64,
                },
                epoch_before,
                batch.last_epoch,
            );
            self.spans.close(root, root_timer);
            return BatchOutcome::Recovered { flushed };
        }
        let mut applied = 0usize;
        let mut skipped = 0usize;
        let mut scanned = 0usize;
        let mut invalidated = 0usize;
        let mut cursor = epoch_before;
        for msg in &batch.msgs {
            if msg.epoch <= cursor {
                skipped += 1;
                self.metrics.duplicate_invalidations.inc();
                continue;
            }
            cursor = msg.epoch;
            let (s, i) = self.run_invalidation_pass(&msg.update, msg.epoch);
            scanned += s;
            invalidated += i;
            applied += 1;
        }
        self.set_stream_cursor(stream, batch.last_epoch);
        self.metrics.fanout_batches_applied.inc();
        self.metrics.fanout_batch_msgs.add(applied as u64);
        self.prov_arrival_on(
            stream,
            batch.first_epoch,
            ApplyKind::Applied {
                applied: applied as u64,
                skipped: skipped as u64,
            },
            epoch_before,
            batch.last_epoch,
        );
        self.spans.close(root, root_timer);
        BatchOutcome::Applied {
            applied,
            skipped,
            scanned,
            invalidated,
        }
    }

    /// Handles a client query against a **sharded** home tier: serve
    /// from cache, or scatter/route the miss through
    /// [`ShardedHome::execute_query`] and cache the result stamped with
    /// its owning shard's stream and epoch. The perfect-delivery mirror
    /// of [`Dssp::execute_query`] for N home shards.
    pub fn execute_query_sharded(
        &mut self,
        q: &Query,
        home: &mut ShardedHome,
    ) -> Result<QueryResponse, StorageError> {
        let tid = q.template_id;
        let level = self.exposures.queries[tid];
        let exposure = level.rank() as u8;
        let audit_req = self.audit_arrival(false, tid, level, "query", &q.params);
        self.metrics.queries.inc();
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::QueryRequest,
            SpanId::NONE,
            self.tenant,
            Some(tid as u32),
        );
        let root_timer = self.spans.timer();
        let lookup_timer = self.spans.timer();
        let mut lease_expired = false;
        match self.cache.lookup_classified(q) {
            Lookup::Hit(entry) => {
                let result = entry.serve().clone();
                let plaintext_hit = entry.visible_result().is_some();
                let (stored_at, stored_epoch, stored_stream, expires_at) = (
                    entry.stored_at_micros(),
                    entry.stored_epoch(),
                    entry.stored_stream(),
                    entry.expires_at_micros(),
                );
                self.spans.record_closed(
                    self.now_micros,
                    SpanPhase::CacheLookup,
                    root,
                    self.tenant,
                    Some(tid as u32),
                    lookup_timer,
                );
                self.metrics.hits.inc();
                self.metrics.query_hits[tid].inc();
                self.tracer.emit(
                    self.now_micros,
                    self.tenant,
                    TraceEventKind::QueryHit {
                        query_template: tid as u32,
                        exposure,
                    },
                );
                if let Some((prov, replica)) = &self.prov {
                    let mut p = prov.lock().unwrap();
                    p.note_serve_on(
                        *replica,
                        tid,
                        stored_stream,
                        self.epoch_of(stored_stream),
                        stored_epoch,
                        stored_at,
                        expires_at,
                        self.now_micros,
                    );
                }
                if plaintext_hit {
                    self.audit_view_read(audit_req, tid, "serve", &result);
                }
                self.spans.close(root, root_timer);
                return Ok(QueryResponse { result, hit: true });
            }
            Lookup::Expired => {
                lease_expired = true;
                self.metrics.lease_expirations.inc();
                self.tracer.emit(
                    self.now_micros,
                    self.tenant,
                    TraceEventKind::LeaseExpired {
                        query_template: tid as u32,
                    },
                );
            }
            Lookup::Miss => {}
        }
        self.spans.record_closed(
            self.now_micros,
            SpanPhase::CacheLookup,
            root,
            self.tenant,
            Some(tid as u32),
            lookup_timer,
        );
        self.metrics.misses.inc();
        self.metrics.query_misses[tid].inc();
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::QueryMiss {
                query_template: tid as u32,
                exposure,
            },
        );
        if let Some((prov, replica)) = &self.prov {
            prov.lock()
                .unwrap()
                .note_miss(*replica, tid, self.now_micros, lease_expired);
        }
        let trip_timer = self.spans.timer();
        let resp = home.execute_query(q)?;
        self.spans.record_closed(
            self.now_micros,
            SpanPhase::HomeTrip,
            root,
            self.tenant,
            Some(tid as u32),
            trip_timer,
        );
        // Per-stream epoch handshake on the piggybacked shard epochs —
        // same rule as the classic path: only while the cache is empty
        // can a cursor skip ahead without leaving a stale entry behind.
        if self.cache.is_empty() {
            for &s in &resp.shards {
                let stream = s as u64;
                if home.epoch_of(s) > self.epoch_of(stream) {
                    self.set_stream_cursor(stream, home.epoch_of(s));
                }
            }
        }
        let crypto_timer = self.spans.timer();
        let outcome = self
            .cache
            .store_with_evictions(q, resp.result.clone(), level);
        self.spans.record_closed(
            self.now_micros,
            SpanPhase::Crypto,
            root,
            self.tenant,
            Some(tid as u32),
            crypto_timer,
        );
        if outcome.stored {
            // The fill is stamped with its first participating shard's
            // stream and that shard's epoch as of the miss trip. For a
            // scatter-gather fill this tracks only one of the streams
            // the result depends on — a documented approximation in the
            // staleness *accounting*; the lease (and the conservative
            // cross-stream recovery flush) still bound true staleness.
            let owner = resp.shards[0];
            let fill_epoch = home.epoch_of(owner);
            self.cache
                .set_stored_provenance(q, owner as u64, fill_epoch);
            if let Some((prov, replica)) = &self.prov {
                prov.lock()
                    .unwrap()
                    .note_store(*replica, tid, fill_epoch, self.now_micros);
            }
        }
        if outcome.replaced {
            self.metrics.cache_replacements.inc();
        }
        if level == ExposureLevel::View {
            self.audit_view_read(audit_req, tid, "fill", &resp.result);
        }
        for victim in &outcome.evicted {
            self.metrics.evictions.inc();
            self.metrics.query_evicted[victim.template_id].inc();
            self.tracer.emit(
                self.now_micros,
                self.tenant,
                TraceEventKind::EntryEvicted {
                    query_template: victim.template_id as u32,
                },
            );
        }
        self.metrics.cache_entries.set(self.cache.len() as i64);
        self.spans.close(root, root_timer);
        Ok(QueryResponse {
            result: resp.result,
            hit: false,
        })
    }

    /// Handles an update against a **sharded** home tier: route to the
    /// owning shard (after its cross-shard FK handshake), then deliver
    /// the invalidation back on that shard's stream — the
    /// perfect-delivery mirror of [`Dssp::execute_update`] for N home
    /// shards. Returns the owning shard alongside the usual response.
    pub fn execute_update_sharded(
        &mut self,
        u: &Update,
        home: &mut ShardedHome,
    ) -> Result<(UpdateResponse, usize), StorageError> {
        let uid = u.template_id;
        let level = self.exposures.updates[uid];
        let _ = self.audit_arrival(true, uid, level, "update", &u.params);
        let root = self.spans.open(
            self.now_micros,
            SpanPhase::UpdateRequest,
            SpanId::NONE,
            self.tenant,
            Some(uid as u32),
        );
        let root_timer = self.spans.timer();
        self.metrics.updates.inc();
        let trip_timer = self.spans.timer();
        let sharded = match home.execute_update(u) {
            Ok(s) => s,
            Err(e) => {
                // Refused before routing (e.g. the cross-shard FK
                // handshake): no epoch moved on any stream, nothing to
                // invalidate.
                self.spans.close(root, root_timer);
                return Err(e);
            }
        };
        self.metrics.update_applied[uid].inc();
        self.attribution.record_update(uid);
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::UpdateApplied {
                update_template: uid as u32,
                exposure: level.rank() as u8,
            },
        );
        self.spans.record_closed(
            self.now_micros,
            SpanPhase::HomeTrip,
            root,
            self.tenant,
            Some(uid as u32),
            trip_timer,
        );
        self.spans.close(root, root_timer);
        let (scanned, invalidated) =
            match self.apply_invalidation_from(sharded.shard as u64, &sharded.msg) {
                DeliveryOutcome::Applied {
                    scanned,
                    invalidated,
                } => (scanned, invalidated),
                DeliveryOutcome::Recovered { flushed } => (flushed, flushed),
                DeliveryOutcome::Duplicate => (0, 0),
            };
        Ok((
            UpdateResponse {
                effect: sharded.effect,
                scanned,
                invalidated,
            },
            sharded.shard,
        ))
    }

    /// Extracts the cached entries selected by `select` for handoff to
    /// another replica, removing them locally. Used by the elastic fleet
    /// when ring arcs change owner on a join or leave.
    pub fn export_entries_where(
        &mut self,
        select: impl FnMut(&crate::cache::CacheEntry) -> bool,
    ) -> Vec<crate::cache::CacheEntry> {
        let out = self.cache.extract_where(select);
        self.metrics.handoff_exported.add(out.len() as u64);
        self.metrics.cache_entries.set(self.cache.len() as i64);
        out
    }

    /// Imports entries handed off by a donor replica, preserving their
    /// original lease windows and stored epochs so the staleness bound
    /// survives the transfer. Returns how many were actually admitted
    /// (already-expired entries are dropped on arrival).
    pub fn import_entries(&mut self, entries: Vec<crate::cache::CacheEntry>) -> usize {
        let mut admitted = 0usize;
        for e in entries {
            if self.cache.import(e) {
                admitted += 1;
            }
        }
        self.metrics.handoff_imported.add(admitted as u64);
        self.metrics.cache_entries.set(self.cache.len() as i64);
        admitted
    }

    /// Emits the membership trace event for this replica joining the
    /// ring, with the epoch cursor it joined at and how many entries it
    /// was handed during warming.
    pub fn note_join(&mut self, epoch: u64, handed: u64) {
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::ReplicaJoin { epoch, handed },
        );
    }

    /// Emits the membership trace event for this replica leaving the
    /// ring, with its final applied epoch and how many entries it handed
    /// to its successors.
    pub fn note_leave(&mut self, epoch: u64, handed: u64) {
        self.tracer.emit(
            self.now_micros,
            self.tenant,
            TraceEventKind::ReplicaLeave { epoch, handed },
        );
    }

    /// Snapshot of the headline counters, derived from the registry (the
    /// registry is the single source of truth; the old direct-field
    /// accounting is gone).
    pub fn stats(&self) -> DsspStats {
        DsspStats {
            queries: self.metrics.queries.get(),
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            updates: self.metrics.updates.get(),
            invalidations: self.metrics.invalidations.get(),
            entries_scanned: self.metrics.entries_scanned.get(),
            evictions: self.metrics.evictions.get(),
        }
    }

    /// The proxy's metrics registry (per-template counters, scan-size
    /// histogram); merge into a node-level registry for roll-ups.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Empirical (update-template × query-template) invalidation counts.
    pub fn attribution(&self) -> &AttributionMatrix {
        &self.attribution
    }

    /// The static IPM characterization the proxy decides with.
    pub fn ipm(&self) -> &IpmMatrix {
        &self.matrix
    }

    /// Attaches a trace sink; events flow to every attached sink.
    pub fn add_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.add_sink(sink);
    }

    /// The proxy's tracer — exposes sink health (swallowed write errors,
    /// ring-buffer drops) for the telemetry export.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Turns on causal span recording, storing up to `capacity` spans
    /// (later ones are counted as dropped). Each query/update/delivery
    /// then records a root span with phase-tagged children
    /// (cache_lookup, crypto, home_trip, recovery). A home-server error
    /// surfaced through `?` leaves that request's root span open
    /// (`elapsed_ns` 0) — the tree is still exported, just without a
    /// root duration.
    pub fn enable_span_recording(&mut self, capacity: usize) {
        self.spans = SpanRecorder::enabled(capacity);
    }

    /// The recorded span trees (empty unless
    /// [`Dssp::enable_span_recording`] was called).
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Flushes buffered trace sinks (e.g. JSONL writers).
    pub fn flush_telemetry(&mut self) {
        self.tracer.flush();
    }

    /// Labels this proxy's trace events with a tenant id.
    pub fn set_tenant_label(&mut self, tenant: u32) {
        self.tenant = tenant;
    }

    /// Stamps this proxy's fleet replica index on every trace event it
    /// emits (set by `ProxyFleet::new`; stays 0 for single-proxy use).
    pub fn set_proxy_label(&mut self, proxy: u64) {
        self.tracer.set_proxy(proxy);
    }

    /// This proxy's fleet replica index (0 outside a fleet).
    pub fn proxy_label(&self) -> u64 {
        self.tracer.proxy()
    }

    /// Advances the clock trace events are stamped with and leases are
    /// judged against (µs). Driven by the simulator; wall-clock-free tests
    /// may leave it at 0.
    pub fn set_sim_time_micros(&mut self, micros: u64) {
        self.now_micros = micros;
        self.cache.set_now_micros(micros);
    }

    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Iterates over cached entries — used by correctness tests to verify
    /// freshness against re-execution, never by the serving path.
    pub fn cache_entries(&self) -> impl Iterator<Item = &crate::cache::CacheEntry> {
        self.cache.iter()
    }

    pub fn exposures(&self) -> &Exposures {
        &self.exposures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use scs_core::{characterize_app, AnalysisOptions, Catalog};
    use scs_sqlkit::{parse_query, parse_update, QueryTemplate, UpdateTemplate, Value};
    use scs_storage::{ColumnType, Database, TableSchema};
    use std::sync::Arc;

    struct Fixture {
        dssp: Dssp,
        home: HomeServer,
        queries: Vec<Arc<QueryTemplate>>,
        updates: Vec<Arc<UpdateTemplate>>,
    }

    fn fixture(kind: StrategyKind) -> Fixture {
        let schema = TableSchema::builder("toys")
            .column("toy_id", ColumnType::Int)
            .column("toy_name", ColumnType::Str)
            .column("qty", ColumnType::Int)
            .primary_key(&["toy_id"])
            .index("toy_name")
            .build()
            .unwrap();
        let mut db = Database::new();
        db.create_table(schema.clone()).unwrap();
        for (id, name, qty) in [(1, "bear", 10), (2, "car", 5), (3, "kite", 7)] {
            db.insert_row(
                "toys",
                vec![Value::Int(id), Value::str(name), Value::Int(qty)],
            )
            .unwrap();
        }
        let queries = vec![
            Arc::new(parse_query("SELECT toy_id FROM toys WHERE toy_name = ?").unwrap()),
            Arc::new(parse_query("SELECT qty FROM toys WHERE toy_id = ?").unwrap()),
        ];
        let updates = vec![Arc::new(
            parse_update("DELETE FROM toys WHERE toy_id = ?").unwrap(),
        )];
        let catalog = Catalog::new([schema]);
        let matrix = characterize_app(&updates, &queries, &catalog, AnalysisOptions::default());
        let dssp = Dssp::new(DsspConfig {
            app_id: "toystore".into(),
            exposures: kind.exposures(updates.len(), queries.len()),
            matrix,
            cache_capacity: None,
            lease_micros: None,
            recovery: RecoveryMode::FlushAffected,
            overload: None,
        });
        Fixture {
            dssp,
            home: HomeServer::new(db),
            queries,
            updates,
        }
    }

    impl Fixture {
        fn query(&mut self, tid: usize, params: Vec<Value>) -> QueryResponse {
            let q = Query::bind(tid, self.queries[tid].clone(), params).unwrap();
            self.dssp.execute_query(&q, &mut self.home).unwrap()
        }

        fn update(&mut self, tid: usize, params: Vec<Value>) -> UpdateResponse {
            let u = Update::bind(tid, self.updates[tid].clone(), params).unwrap();
            self.dssp.execute_update(&u, &mut self.home).unwrap()
        }
    }

    #[test]
    fn cache_hit_after_miss() {
        let mut f = fixture(StrategyKind::ViewInspection);
        let r1 = f.query(0, vec![Value::str("bear")]);
        assert!(!r1.hit);
        let r2 = f.query(0, vec![Value::str("bear")]);
        assert!(r2.hit);
        assert_eq!(r1.result, r2.result);
        assert_eq!(f.home.queries_served(), 1);
    }

    #[test]
    fn blind_strategy_clears_everything() {
        let mut f = fixture(StrategyKind::Blind);
        f.query(0, vec![Value::str("bear")]);
        f.query(1, vec![Value::Int(2)]);
        assert_eq!(f.dssp.cache_len(), 2);
        let resp = f.update(0, vec![Value::Int(3)]);
        assert_eq!(resp.invalidated, 2, "blind: every entry invalidated");
        assert_eq!(f.dssp.cache_len(), 0);
    }

    #[test]
    fn statement_strategy_spares_unrelated_instances() {
        let mut f = fixture(StrategyKind::StatementInspection);
        f.query(1, vec![Value::Int(1)]);
        f.query(1, vec![Value::Int(2)]);
        let resp = f.update(0, vec![Value::Int(2)]); // delete toy 2
        assert_eq!(resp.invalidated, 1, "only the toy_id = 2 instance dies");
        // toy 1 entry still served from cache.
        assert!(f.query(1, vec![Value::Int(1)]).hit);
        assert!(!f.query(1, vec![Value::Int(2)]).hit);
    }

    #[test]
    fn template_strategy_invalidates_all_instances_of_affected_templates() {
        let mut f = fixture(StrategyKind::TemplateInspection);
        f.query(1, vec![Value::Int(1)]);
        f.query(1, vec![Value::Int(2)]);
        let resp = f.update(0, vec![Value::Int(3)]);
        assert_eq!(
            resp.invalidated, 2,
            "template level cannot compare parameters"
        );
    }

    #[test]
    fn updated_data_is_re_fetched_fresh() {
        let mut f = fixture(StrategyKind::ViewInspection);
        let before = f.query(1, vec![Value::Int(2)]);
        assert_eq!(before.result.rows, vec![vec![Value::Int(5)]]);
        f.update(0, vec![Value::Int(2)]);
        let after = f.query(1, vec![Value::Int(2)]);
        assert!(!after.hit);
        assert!(after.result.is_empty(), "toy 2 deleted at the master");
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fixture(StrategyKind::ViewInspection);
        f.query(0, vec![Value::str("bear")]);
        f.query(0, vec![Value::str("bear")]);
        f.update(0, vec![Value::Int(9)]);
        let s = f.dssp.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.updates, 1);
    }

    #[test]
    fn registry_tracks_per_template_counts() {
        let mut f = fixture(StrategyKind::StatementInspection);
        f.query(0, vec![Value::str("bear")]);
        f.query(0, vec![Value::str("bear")]);
        f.query(1, vec![Value::Int(2)]);
        // Deleting toy 2 kills the q1(toy_id=2) entry; statement
        // inspection must also kill the q0(toy_name) entry, since a
        // DELETE by toy_id could remove a matching bear row.
        let resp = f.update(0, vec![Value::Int(2)]);
        let reg = f.dssp.registry();
        assert_eq!(reg.counter_value("query_template.0.hits"), 1);
        assert_eq!(reg.counter_value("query_template.0.misses"), 1);
        assert_eq!(reg.counter_value("query_template.1.misses"), 1);
        assert_eq!(reg.counter_value("update_template.0.applied"), 1);
        assert_eq!(reg.counter_value("query_template.1.invalidated"), 1);
        assert_eq!(
            reg.counter_value("update_template.0.invalidations"),
            resp.invalidated as u64
        );
        // Headline counters agree with the derived stats snapshot.
        assert_eq!(reg.counter_value("dssp.queries"), f.dssp.stats().queries);
        // The scan-size histogram saw exactly one invalidation pass.
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["dssp.invalidation_scan_size"].count, 1);
        assert_eq!(snap.gauges["dssp.cache_entries"], f.dssp.cache_len() as i64);
    }

    #[test]
    fn attribution_matrix_records_runtime_invalidations() {
        let mut f = fixture(StrategyKind::TemplateInspection);
        f.query(0, vec![Value::str("bear")]);
        f.query(1, vec![Value::Int(1)]);
        f.update(0, vec![Value::Int(3)]);
        let attr = f.dssp.attribution();
        assert_eq!(attr.updates_applied(0), 1);
        // MTIS invalidates every instance of both affected templates.
        assert_eq!(attr.count(0, 0) + attr.count(0, 1), 2);
        // Runtime behaviour stays inside the analysis envelope: nothing
        // invalidated on a pair the IPM proved A = 0 for.
        let ipm = f.dssp.ipm();
        assert!(attr
            .divergence(|u, q| ipm.entry(u, q).all_zero())
            .is_empty());
    }

    #[test]
    fn trace_events_flow_to_sinks() {
        use scs_telemetry::{TraceEvent, TraceEventKind, TraceSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Shared(Rc<RefCell<Vec<TraceEvent>>>);
        impl TraceSink for Shared {
            fn record(&mut self, event: &TraceEvent) {
                self.0.borrow_mut().push(*event);
            }
        }

        let events = Rc::new(RefCell::new(Vec::new()));
        let mut f = fixture(StrategyKind::ViewInspection);
        f.dssp.add_trace_sink(Box::new(Shared(Rc::clone(&events))));
        f.dssp.set_tenant_label(7);
        f.dssp.set_sim_time_micros(42);
        f.query(1, vec![Value::Int(2)]);
        f.query(1, vec![Value::Int(2)]);
        f.update(0, vec![Value::Int(2)]);
        f.dssp.flush_telemetry();

        let events = events.borrow();
        let kinds: Vec<&'static str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "query_miss",
                "query_hit",
                "update_applied",
                "entry_invalidated"
            ]
        );
        assert!(events.iter().all(|e| e.tenant == 7 && e.at_micros == 42));
        // Sequence numbers are strictly increasing.
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        match events[3].kind {
            TraceEventKind::EntryInvalidated {
                update_template,
                query_template,
                decision,
                ..
            } => {
                assert_eq!(update_template, 0);
                assert_eq!(query_template, 1);
                assert_eq!(decision, crate::strategy::DecisionPath::View.code());
            }
            other => panic!("expected invalidation event, got {other:?}"),
        }
    }

    #[test]
    fn span_trees_cover_the_request_pipeline() {
        let mut f = fixture(StrategyKind::ViewInspection);
        f.dssp.enable_span_recording(64);
        f.dssp.set_tenant_label(3);
        f.dssp.set_sim_time_micros(500);
        assert!(!f.query(0, vec![Value::str("bear")]).hit); // miss
        assert!(f.query(0, vec![Value::str("bear")]).hit); // hit
        f.update(0, vec![Value::Int(2)]);
        let rec = f.dssp.spans();
        assert!(rec.is_enabled());
        assert_eq!(rec.dropped(), 0);
        let spans = rec.spans();
        let count = |p: SpanPhase| spans.iter().filter(|s| s.phase == p).count();
        assert_eq!(count(SpanPhase::QueryRequest), 2);
        assert_eq!(count(SpanPhase::CacheLookup), 2);
        // One home trip for the query miss, one for the update.
        assert_eq!(count(SpanPhase::HomeTrip), 2);
        assert_eq!(count(SpanPhase::Crypto), 1);
        assert_eq!(count(SpanPhase::UpdateRequest), 1);
        assert_eq!(count(SpanPhase::InvalidationFanout), 1);
        // Every child hangs off a stored root; trees are one level deep.
        for s in spans.iter().filter(|s| !s.parent.is_none()) {
            let parent = spans.iter().find(|p| p.id == s.parent).unwrap();
            assert!(parent.parent.is_none(), "children attach to roots");
            assert!(parent.phase.is_root() || parent.phase == SpanPhase::Recovery);
        }
        assert!(spans.iter().all(|s| s.tenant == 3 && s.at_micros == 500));
        // Roots were closed with a measured wall-clock duration.
        assert!(spans
            .iter()
            .filter(|s| s.parent.is_none())
            .all(|s| s.elapsed_nanos > 0));
        // The summary attributes query time to child phases.
        let rows = rec.critical_path();
        let query_row = rows
            .iter()
            .find(|r| r.root == SpanPhase::QueryRequest && r.template == Some(0))
            .unwrap();
        assert_eq!(query_row.count, 2);
        assert_eq!(query_row.phases["cache_lookup"].0, 2);
        assert_eq!(query_row.phases["home_trip"].0, 1);
        assert!(query_row.critical_phase().is_some());
    }

    #[test]
    fn spans_disabled_by_default_and_bounded_when_on() {
        let mut f = fixture(StrategyKind::ViewInspection);
        f.query(0, vec![Value::str("bear")]);
        assert_eq!(f.dssp.spans().recorded(), 0);
        // Tiny capacity: overflow is counted, not stored, and the proxy
        // keeps serving.
        f.dssp.enable_span_recording(2);
        for _ in 0..5 {
            f.query(0, vec![Value::str("bear")]);
        }
        assert_eq!(f.dssp.spans().recorded(), 2);
        assert!(f.dssp.spans().dropped() > 0);
    }
}
