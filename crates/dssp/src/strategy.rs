//! Invalidation strategy dispatch (§2.2–2.3).
//!
//! The DSSP's information about an update and about each cached entry is
//! bounded by the respective templates' exposure levels; the effective
//! decision procedure for a pair is the Figure-6 cell:
//!
//! * either side `blind` → invalidate (Property 1);
//! * either side `template` → minimal template inspection: invalidate all
//!   instances unless the static analysis proved `A = 0`;
//! * both `stmt` → minimal statement inspection;
//! * update `stmt` + query `view` → minimal view inspection.
//!
//! The four *pure* strategies of §2.2 (MBS, MTIS, MSIS, MVIS) are the
//! special cases where every template sits at the same level.

use crate::cache::CacheEntry;
use crate::statement::statement_may_affect;
use crate::view::view_may_affect;
use scs_core::{ExposureLevel, IpmMatrix};
use scs_sqlkit::{TemplateId, Update};

/// What the DSSP can see of an in-flight update, gated by `E(U^T)`.
#[derive(Debug, Clone, Copy)]
pub struct UpdateView<'a> {
    level: ExposureLevel,
    template_id: TemplateId,
    update: &'a Update,
}

impl<'a> UpdateView<'a> {
    /// Wraps an update at exposure `level` (must be valid for updates).
    pub fn new(update: &'a Update, level: ExposureLevel) -> UpdateView<'a> {
        assert!(level.valid_for_update(), "update exposure cannot be `view`");
        UpdateView {
            level,
            template_id: update.template_id,
            update,
        }
    }

    pub fn level(&self) -> ExposureLevel {
        self.level
    }

    /// The template id — visible at `template` exposure and above.
    pub fn visible_template_id(&self) -> Option<TemplateId> {
        (self.level >= ExposureLevel::Template).then_some(self.template_id)
    }

    /// The full statement — visible at `stmt` exposure.
    pub fn visible_statement(&self) -> Option<&'a Update> {
        (self.level >= ExposureLevel::Stmt).then_some(self.update)
    }
}

/// Which information tier settled an invalidation decision — recorded in
/// trace events so observed invalidations are attributable to the level
/// of inspection that caused them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionPath {
    /// A blind side forced invalidation (Property 1) — no inspection ran.
    BlindSide,
    /// The statically derived template-level `A` value decided.
    Template,
    /// Statement inspection compared the two statements.
    Statement,
    /// View inspection consulted the materialized result.
    View,
}

impl DecisionPath {
    /// Stable numeric code used by `scs-telemetry` trace events.
    pub fn code(self) -> u8 {
        match self {
            DecisionPath::BlindSide => 0,
            DecisionPath::Template => 1,
            DecisionPath::Statement => 2,
            DecisionPath::View => 3,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DecisionPath::BlindSide => "blind_side",
            DecisionPath::Template => "template",
            DecisionPath::Statement => "statement",
            DecisionPath::View => "view",
        }
    }
}

/// The minimal correct decision available at the information level of the
/// pair `(update view, cache entry)`, plus which tier produced it:
/// `true` = invalidate.
pub fn decide(matrix: &IpmMatrix, uv: &UpdateView<'_>, entry: &CacheEntry) -> (bool, DecisionPath) {
    // Property 1: a blind side leaves no information — invalidate.
    let (Some(uid), Some(qid)) = (uv.visible_template_id(), entry.visible_template_id()) else {
        return (true, DecisionPath::BlindSide);
    };
    // Template-level: the statically derived A decides; A = 0 is sound at
    // every higher level too (Property 3 collapses the gradient).
    if matrix.entry(uid, qid).all_zero() {
        return (false, DecisionPath::Template);
    }
    let (Some(u), Some(q)) = (uv.visible_statement(), entry.visible_statement()) else {
        // One side stops at template exposure: invalidate all instances
        // (A = 1 for this pair).
        return (true, DecisionPath::Template);
    };
    match entry.visible_result() {
        Some(result) => (view_may_affect(u, q, result), DecisionPath::View),
        None => (statement_may_affect(u, q), DecisionPath::Statement),
    }
}

/// [`decide`] without the attribution — kept for callers that only need
/// the verdict.
pub fn must_invalidate(matrix: &IpmMatrix, uv: &UpdateView<'_>, entry: &CacheEntry) -> bool {
    decide(matrix, uv, entry).0
}

/// The four pure strategy classes of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// MBS — minimal blind strategy: everything encrypted.
    Blind,
    /// MTIS — minimal template-inspection strategy.
    TemplateInspection,
    /// MSIS — minimal statement-inspection strategy.
    StatementInspection,
    /// MVIS — minimal view-inspection strategy: nothing encrypted.
    ViewInspection,
}

impl StrategyKind {
    /// The uniform exposure level implementing this strategy class for
    /// update templates.
    pub fn update_level(self) -> ExposureLevel {
        match self {
            StrategyKind::Blind => ExposureLevel::Blind,
            StrategyKind::TemplateInspection => ExposureLevel::Template,
            StrategyKind::StatementInspection | StrategyKind::ViewInspection => ExposureLevel::Stmt,
        }
    }

    /// The uniform exposure level implementing this strategy class for
    /// query templates.
    pub fn query_level(self) -> ExposureLevel {
        match self {
            StrategyKind::Blind => ExposureLevel::Blind,
            StrategyKind::TemplateInspection => ExposureLevel::Template,
            StrategyKind::StatementInspection => ExposureLevel::Stmt,
            StrategyKind::ViewInspection => ExposureLevel::View,
        }
    }

    /// Uniform exposures for an application with the given template counts.
    pub fn exposures(self, update_count: usize, query_count: usize) -> scs_core::Exposures {
        scs_core::Exposures {
            updates: vec![self.update_level(); update_count],
            queries: vec![self.query_level(); query_count],
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Blind => "MBS",
            StrategyKind::TemplateInspection => "MTIS",
            StrategyKind::StatementInspection => "MSIS",
            StrategyKind::ViewInspection => "MVIS",
        }
    }

    /// All four, most-exposed first (the x-axis of the paper's Figure 8 is
    /// MVIS, MSIS, MTIS, MBS).
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::ViewInspection,
        StrategyKind::StatementInspection,
        StrategyKind::TemplateInspection,
        StrategyKind::Blind,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use ExposureLevel::*;

    #[test]
    fn strategy_levels() {
        assert_eq!(StrategyKind::Blind.query_level(), Blind);
        assert_eq!(StrategyKind::TemplateInspection.update_level(), Template);
        assert_eq!(StrategyKind::StatementInspection.query_level(), Stmt);
        assert_eq!(StrategyKind::ViewInspection.query_level(), View);
        assert_eq!(StrategyKind::ViewInspection.update_level(), Stmt);
    }

    #[test]
    #[should_panic(expected = "update exposure")]
    fn update_view_rejects_view_level() {
        let t = std::sync::Arc::new(scs_sqlkit::parse_update("DELETE FROM t WHERE a = ?").unwrap());
        let u = Update::bind(0, t, vec![scs_sqlkit::Value::Int(1)]).unwrap();
        let _ = UpdateView::new(&u, View);
    }
}
