//! # scs-dssp — the Database Scalability Service Provider prototype
//!
//! Implements the shaded cloud of the paper's Figure 1: a third-party node
//! that caches (possibly encrypted) query results on behalf of Web
//! applications, answers queries from the cache, forwards misses and all
//! updates to the application home server, and invalidates cached results
//! to maintain consistency (Figure 2's pathways).
//!
//! * [`cache`] — the result cache with exposure-gated visibility and
//!   deterministic-encryption key mechanics (footnote 3);
//! * [`statement`] — the minimal statement-inspection decision (MSIS);
//! * [`view`] — the minimal view-inspection decision (MVIS) with the §4.4
//!   refinement rules;
//! * [`strategy`] — the Figure-6 dispatch across exposure levels, and the
//!   four pure strategy classes (MBS/MTIS/MSIS/MVIS);
//! * [`proxy`] — the DSSP node itself; [`home`] — the home server.
//!
//! Invalidation correctness (the §2.2 definition — a changed view is
//! always invalidated) is verified end-to-end by property tests in
//! `tests/correctness.rs` against ground-truth re-execution.
//!
//! The paper assumes every invalidation notification arrives, instantly
//! and in order. [`delivery`] drops that assumption: the home server
//! epoch-stamps the notification stream, proxies detect gaps and flush
//! conservatively, per-entry leases bound the staleness any *undetected*
//! failure can cause, and home-server trips retry with exponential
//! backoff. `tests/delivery.rs` covers the delivery semantics directly;
//! `scs-apps`' `tests/chaos.rs` drives random fault schedules against a
//! ground-truth oracle to verify the staleness bound.

//!
//! Past the scalability knee the right behaviour is to *bend, not
//! break*: [`admission`] adds deadline-aware admission control, a
//! per-home-link circuit breaker, and brownout serving (within-lease
//! hits degrade, misses fast-reject with [`Overloaded`]) so goodput
//! stays flat while overload is shed at arrival.

pub mod admission;
pub mod cache;
pub mod delivery;
pub mod elastic;
pub mod fleet;
pub mod home;
pub mod proxy;
pub mod replication;
pub mod sharded;
pub mod statement;
pub mod stats;
pub mod strategy;
pub mod tenant;
pub mod view;

pub use admission::{
    AdmissionConfig, AdmissionController, BreakerConfig, BreakerState, BreakerTransition,
    BrownoutConfig, BrownoutController, CircuitBreaker, OverloadConfig, Overloaded, QueueState,
    Rejected, ShedReason,
};
pub use cache::{CacheEntry, CacheKey, Lookup, ResultCache, StoreOutcome};
pub use delivery::{
    BatchOutcome, DeliveryOutcome, FtOutcome, FtQueryResponse, FtUpdateOutcome, FtUpdateResponse,
    HomeLink, InvalidationBatch, InvalidationMsg, PipeRegistration, RecoveryMode, RetryPolicy,
};
pub use elastic::{
    Autoscaler, AutoscalerConfig, HandoffFault, JoinOutcome, LeaveOutcome, ScaleAction,
    ScaleDecision,
};
pub use fleet::{
    DeliveryTotals, FanoutConfig, FanoutStats, FleetConfig, FleetFtQueryResponse,
    FleetFtUpdateResponse, FleetQueryResponse, FleetUpdateResponse, ProxyFleet, RoutingMode,
};
pub use home::HomeServer;
pub use proxy::{
    Dssp, DsspConfig, OverloadOutcome, OverloadQueryResponse, OverloadUpdateOutcome,
    OverloadUpdateResponse, QueryResponse, UpdateResponse,
};
pub use replication::{
    CommitAck, FailoverRecord, HomeGroup, ReplicationConfig, ReplicationMode, ShipMsg, Standby,
};
pub use sharded::{ShardedHome, ShardedQueryResponse, ShardedUpdateResponse};
pub use statement::statement_may_affect;
pub use stats::DsspStats;
pub use strategy::{decide, must_invalidate, DecisionPath, StrategyKind, UpdateView};
pub use tenant::{DsspNode, NodeError, TenantId};
pub use view::view_may_affect;
