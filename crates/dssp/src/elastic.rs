//! Elastic fleet membership: the types behind live join/leave with
//! state handoff, plus the [`Autoscaler`] policy that drives them.
//!
//! The membership *mechanics* live in [`crate::fleet`] (they need the
//! fleet's private fields); this module holds the vocabulary — what a
//! join or leave reports, which faults the chaos tests inject into a
//! handoff — and the pure autoscaling policy, which is deliberately
//! independent of the fleet so the simulation driver can feed it
//! whatever utilization signal it measures.
//!
//! ## Join protocol (see `DESIGN.md` §14)
//!
//! 1. **Register before ring entry.** The joiner registers a fanout
//!    pipe at the home server and takes the home's current epoch as its
//!    cursor. From this instant every committed update reaches the
//!    joiner on its own pipe; everything at or before the cursor is
//!    already reflected in the state it warms from.
//! 2. **Warm from predecessors.** For each ring arc the joiner will
//!    own, the current owner (donor) is pumped to its delivery horizon,
//!    then hands over the cached entries for that arc along with its
//!    epoch position. Entries are imported only when the donor's epoch
//!    matches the joiner's cursor (a *cursor match*) — otherwise they
//!    are dropped and refetched on miss, trading warmth for an airtight
//!    staleness argument. Imported entries keep their original lease
//!    window and stored epoch, so the lease bound survives the transfer
//!    unconditionally.
//! 3. **Atomic cutover.** Only after warming does the routing ring
//!    swap; the swap is a single assignment, so no operation ever
//!    routes to a replica that isn't fully registered.
//!
//! A leave runs the protocol in reverse: drain in-flight batches, swap
//! the ring first, hand the departing replica's entries to their new
//! owners (same cursor-match rule), then unregister the pipe after a
//! final pump so the provenance ledger's conservation law stays
//! balanced across the membership change.

/// Fault injected into a membership change by the chaos tests. Each
/// models a crash at a different point in the join/handoff protocol;
/// all of them must leave `stale_beyond_lease == 0` and the
/// conservation ledger balanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffFault {
    /// Clean join: every donor hands off and the joiner imports on
    /// cursor match.
    None,
    /// The handoff stream is lost in transit: donors extract their
    /// entries but nothing arrives at the joiner. The joiner enters the
    /// ring cold — pure miss cost, no staleness.
    DropStream,
    /// The joiner crashes after registering its pipe but before
    /// warming completes. The join rolls back: the replica is dropped,
    /// its pipe unregistered, and the routing ring is left untouched
    /// (byte-identical — the no-op-resize property).
    CrashJoiner,
    /// The first donor crashes mid-handoff: only half of its exported
    /// entries survive in transit, the donor itself restarts from the
    /// home epoch with a cold cache, and the join completes with the
    /// remaining donors.
    CrashDonor,
}

impl HandoffFault {
    pub fn name(self) -> &'static str {
        match self {
            HandoffFault::None => "none",
            HandoffFault::DropStream => "drop_stream",
            HandoffFault::CrashJoiner => "crash_joiner",
            HandoffFault::CrashDonor => "crash_donor",
        }
    }
}

/// What [`crate::fleet::ProxyFleet::add_replica`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Stable id of the (possibly aborted) joiner. Ids are never
    /// reused within a fleet's lifetime.
    pub replica: usize,
    /// Home epoch at pipe registration — the joiner's initial cursor.
    pub joined_epoch: u64,
    /// Entries imported from donors (cursor-matched and unexpired).
    pub handed: u64,
    /// Entries extracted from donors but not imported: dropped in
    /// transit, expired on arrival, or skipped on cursor mismatch.
    /// These cost cold misses, never staleness.
    pub skipped: u64,
    /// True when the join rolled back ([`HandoffFault::CrashJoiner`]):
    /// the ring is unchanged and the replica does not exist.
    pub aborted: bool,
}

/// What [`crate::fleet::ProxyFleet::remove_replica`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaveOutcome {
    /// Stable id of the departed replica.
    pub replica: usize,
    /// The leaver's applied epoch after its final drain.
    pub final_epoch: u64,
    /// Entries successfully handed to successor replicas.
    pub handed: u64,
    /// Entries extracted but not imported (cursor mismatch or expiry).
    pub skipped: u64,
}

/// Scale direction an [`Autoscaler`] decided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Add one replica.
    Out,
    /// Remove one replica.
    In,
}

impl ScaleAction {
    pub fn name(self) -> &'static str {
        match self {
            ScaleAction::Out => "out",
            ScaleAction::In => "in",
        }
    }
}

/// One autoscaling decision, journaled for the experiment export so
/// the membership timeline is visible next to the load curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleDecision {
    pub at_micros: u64,
    pub action: ScaleAction,
    /// Busiest live replica's utilization in the window that tripped
    /// the decision.
    pub busiest_util: f64,
    /// Fleet shed ratio in the same window.
    pub shed_ratio: f64,
    /// Live replica count *before* the action.
    pub live: usize,
}

/// Autoscaler thresholds. Scale-out and scale-in bands are separated
/// (hysteresis) and every action starts a cooldown, so the policy
/// cannot flap on a noisy signal.
#[derive(Debug, Clone, Copy)]
pub struct AutoscalerConfig {
    /// Scale out when the busiest replica's windowed utilization stays
    /// at or above this for `sustain` consecutive samples.
    pub scale_out_util: f64,
    /// Shed ratio at or above this also counts as a hot sample —
    /// admission control shedding is the clearest overload signal.
    pub scale_out_shed: f64,
    /// Scale in when the busiest replica stays at or below this (and
    /// nothing is shed) for `sustain` consecutive samples.
    pub scale_in_util: f64,
    /// Consecutive hot (or idle) samples required before acting.
    pub sustain: u32,
    /// Minimum simulated time between actions.
    pub cooldown_micros: u64,
    pub min_replicas: usize,
    pub max_replicas: usize,
}

impl AutoscalerConfig {
    /// Defaults matched to the flash-crowd experiment: act after 3
    /// sustained samples, 5 s cooldown, busiest-node bands at 85%/25%.
    pub fn paper(min_replicas: usize, max_replicas: usize) -> AutoscalerConfig {
        assert!(min_replicas >= 1, "a fleet keeps at least one replica");
        assert!(max_replicas >= min_replicas, "max below min");
        AutoscalerConfig {
            scale_out_util: 0.85,
            scale_out_shed: 0.05,
            scale_in_util: 0.25,
            sustain: 3,
            cooldown_micros: 5_000_000,
            min_replicas,
            max_replicas,
        }
    }
}

/// Reactive scaling policy over the fleet's utilization and shed-ratio
/// time series. Pure state machine: the driver samples the signal at a
/// fixed cadence, calls [`Autoscaler::observe`], and applies whatever
/// action comes back via `add_replica` / `remove_replica`.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    hot_streak: u32,
    idle_streak: u32,
    last_action_at: Option<u64>,
    decisions: Vec<ScaleDecision>,
}

impl Autoscaler {
    pub fn new(cfg: AutoscalerConfig) -> Autoscaler {
        Autoscaler {
            cfg,
            hot_streak: 0,
            idle_streak: 0,
            last_action_at: None,
            decisions: Vec::new(),
        }
    }

    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Feeds one sample of the control signal; returns the action to
    /// apply, if any. `busiest_util` is the busiest *live* replica's
    /// utilization over the sample window, `shed_ratio` the fleet's
    /// shed fraction in the same window, `live` the current replica
    /// count.
    pub fn observe(
        &mut self,
        at_micros: u64,
        busiest_util: f64,
        shed_ratio: f64,
        live: usize,
    ) -> Option<ScaleAction> {
        let hot = busiest_util >= self.cfg.scale_out_util || shed_ratio >= self.cfg.scale_out_shed;
        let idle = busiest_util <= self.cfg.scale_in_util && shed_ratio == 0.0;
        if hot {
            self.hot_streak += 1;
            self.idle_streak = 0;
        } else if idle {
            self.idle_streak += 1;
            self.hot_streak = 0;
        } else {
            // Inside the hysteresis band: stable, reset both streaks.
            self.hot_streak = 0;
            self.idle_streak = 0;
        }
        if let Some(t) = self.last_action_at {
            if at_micros.saturating_sub(t) < self.cfg.cooldown_micros {
                return None;
            }
        }
        let action = if self.hot_streak >= self.cfg.sustain && live < self.cfg.max_replicas {
            ScaleAction::Out
        } else if self.idle_streak >= self.cfg.sustain && live > self.cfg.min_replicas {
            ScaleAction::In
        } else {
            return None;
        };
        self.hot_streak = 0;
        self.idle_streak = 0;
        self.last_action_at = Some(at_micros);
        self.decisions.push(ScaleDecision {
            at_micros,
            action,
            busiest_util,
            shed_ratio,
            live,
        });
        Some(action)
    }

    /// Every decision taken so far, in order.
    pub fn decisions(&self) -> &[ScaleDecision] {
        &self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscalerConfig {
        AutoscalerConfig::paper(1, 4)
    }

    #[test]
    fn sustained_heat_scales_out_once_then_cools_down() {
        let mut a = Autoscaler::new(cfg());
        // Two hot samples: below sustain, nothing yet.
        assert_eq!(a.observe(1_000_000, 0.95, 0.0, 2), None);
        assert_eq!(a.observe(2_000_000, 0.95, 0.0, 2), None);
        // Third trips the action.
        assert_eq!(a.observe(3_000_000, 0.95, 0.0, 2), Some(ScaleAction::Out));
        // Still hot, but inside the 5 s cooldown.
        assert_eq!(a.observe(4_000_000, 0.99, 0.2, 3), None);
        assert_eq!(a.observe(5_000_000, 0.99, 0.2, 3), None);
        assert_eq!(a.observe(6_000_000, 0.99, 0.2, 3), None);
        // Cooldown over and the streak re-sustained: scale out again.
        assert_eq!(a.observe(8_100_000, 0.99, 0.2, 3), Some(ScaleAction::Out));
        assert_eq!(a.decisions().len(), 2);
    }

    #[test]
    fn shedding_counts_as_heat_even_at_low_utilization() {
        let mut a = Autoscaler::new(cfg());
        for t in 1..=2u64 {
            assert_eq!(a.observe(t * 1_000_000, 0.3, 0.5, 1), None);
        }
        assert_eq!(a.observe(3_000_000, 0.3, 0.5, 1), Some(ScaleAction::Out));
    }

    #[test]
    fn sustained_idle_scales_in_but_respects_the_floor() {
        let mut a = Autoscaler::new(cfg());
        for t in 1..=2u64 {
            assert_eq!(a.observe(t * 1_000_000, 0.1, 0.0, 3), None);
        }
        assert_eq!(a.observe(3_000_000, 0.1, 0.0, 3), Some(ScaleAction::In));
        // At the floor the idle streak never fires.
        let mut floor = Autoscaler::new(cfg());
        for t in 1..=10u64 {
            assert_eq!(floor.observe(t * 10_000_000, 0.0, 0.0, 1), None);
        }
    }

    #[test]
    fn hysteresis_band_resets_both_streaks() {
        let mut a = Autoscaler::new(cfg());
        assert_eq!(a.observe(1_000_000, 0.95, 0.0, 2), None);
        assert_eq!(a.observe(2_000_000, 0.95, 0.0, 2), None);
        // A mid-band sample breaks the streak…
        assert_eq!(a.observe(3_000_000, 0.5, 0.0, 2), None);
        // …so two more hot samples still aren't enough.
        assert_eq!(a.observe(4_000_000, 0.95, 0.0, 2), None);
        assert_eq!(a.observe(5_000_000, 0.95, 0.0, 2), None);
        assert_eq!(a.observe(6_000_000, 0.95, 0.0, 2), Some(ScaleAction::Out));
    }

    #[test]
    fn max_replicas_caps_scale_out() {
        let mut a = Autoscaler::new(cfg());
        for t in 1..=6u64 {
            assert_eq!(a.observe(t * 1_000_000, 0.99, 0.3, 4), None, "at cap");
        }
    }
}
