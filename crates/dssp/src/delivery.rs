//! Fault-tolerant invalidation delivery: epoched update notifications,
//! recovery policies, and retry/backoff for home-server trips.
//!
//! The paper's consistency argument assumes every update notification
//! reaches every cache instantly. This module drops that assumption and
//! replaces it with three mechanisms:
//!
//! 1. **Epochs** — the home server stamps each applied update with a
//!    monotone sequence number ([`InvalidationMsg::epoch`]); the proxy
//!    applies message `e` only when `e == last + 1`. A skipped epoch is a
//!    detected delivery failure (or an out-of-band master write) and
//!    triggers a [`RecoveryMode`] flush. Duplicates and stale reorders
//!    (`e <= last`) are dropped — a flush for the gap they belonged to
//!    has already covered them.
//! 2. **Leases** — every cache entry carries a TTL, so even an
//!    *undetected* failure (a dropped message with no successor to
//!    expose the gap) serves stale data for at most the lease window.
//! 3. **Retries** — home-server trips back off exponentially under a
//!    total timeout ([`RetryPolicy`]); while the link is down
//!    ([`HomeLink`]), within-lease cache hits keep serving (graceful
//!    degradation) and misses surface as explicit unavailability rather
//!    than stale answers.

use scs_sqlkit::Update;
use scs_storage::{QueryResult, UpdateEffect};

/// One epoch-stamped invalidation notification on the home → proxy
/// stream. Carries the full update statement; what the proxy may *see*
/// of it is still gated by the update template's exposure level when the
/// message is applied.
#[derive(Debug, Clone)]
pub struct InvalidationMsg {
    /// The home server's update epoch after applying this update.
    pub epoch: u64,
    pub update: Update,
}

impl InvalidationMsg {
    /// Nominal wire size of the notification (µ-benchmark bytes): the
    /// epoch stamp plus the canonical statement text. The freshness
    /// plane's fanout-amplification accounting charges this per pipe.
    pub fn payload_bytes(&self) -> u64 {
        8 + self.update.statement_text().len() as u64
    }
}

/// A batch of invalidation notifications covering the **contiguous**
/// epoch range `[first_epoch, last_epoch]`, as shipped by the home
/// server's fanout to each proxy (see `crate::fleet`).
///
/// Coalescing keeps, for each distinct update content (template id +
/// bound parameters), only the **latest-epoch** representative. Dropping
/// the earlier duplicates is sound because applying the same statement's
/// invalidation pass twice removes no additional entries; keeping the
/// latest epoch (rather than the earliest) is what makes the proxy's
/// skip-if-covered check safe — a retained message's epoch is ≥ every
/// epoch it stands for, so a message skipped as a duplicate only ever
/// represents content that was itself already covered.
#[derive(Debug, Clone)]
pub struct InvalidationBatch {
    /// First epoch the batch covers (inclusive).
    pub first_epoch: u64,
    /// Last epoch the batch covers (inclusive).
    pub last_epoch: u64,
    /// Retained representatives, ascending by epoch.
    pub msgs: Vec<InvalidationMsg>,
    /// Messages coalesced away (earlier duplicates of a retained
    /// representative's content).
    pub coalesced: u64,
}

impl InvalidationBatch {
    /// Coalesces a contiguous run of messages (ascending epochs) into a
    /// batch. Returns `None` on an empty run — there is nothing to ship.
    pub fn coalesce(msgs: Vec<InvalidationMsg>) -> Option<InvalidationBatch> {
        let first_epoch = msgs.first()?.epoch;
        let last_epoch = msgs.last()?.epoch;
        debug_assert!(
            msgs.windows(2).all(|w| w[1].epoch == w[0].epoch + 1),
            "a fanout batch must cover a contiguous epoch range"
        );
        let total = msgs.len();
        // Latest-epoch representative per distinct update content.
        let mut latest: std::collections::HashMap<(usize, Vec<scs_sqlkit::Value>), usize> =
            std::collections::HashMap::new();
        for (i, m) in msgs.iter().enumerate() {
            latest.insert((m.update.template_id, m.update.params.clone()), i);
        }
        let mut keep: Vec<usize> = latest.into_values().collect();
        keep.sort_unstable();
        let retained: Vec<InvalidationMsg> = {
            let mut by_index: Vec<Option<InvalidationMsg>> = msgs.into_iter().map(Some).collect();
            keep.iter()
                .map(|&i| by_index[i].take().expect("indices unique"))
                .collect()
        };
        Some(InvalidationBatch {
            first_epoch,
            last_epoch,
            coalesced: (total - retained.len()) as u64,
            msgs: retained,
        })
    }

    /// A single-message batch (the unbatched / immediate-flush case).
    pub fn single(msg: InvalidationMsg) -> InvalidationBatch {
        InvalidationBatch {
            first_epoch: msg.epoch,
            last_epoch: msg.epoch,
            msgs: vec![msg],
            coalesced: 0,
        }
    }

    /// Messages retained in the batch.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Nominal wire size: the range header plus every retained message.
    pub fn payload_bytes(&self) -> u64 {
        16 + self
            .msgs
            .iter()
            .map(InvalidationMsg::payload_bytes)
            .sum::<u64>()
    }

    /// `(update_template, payload_bytes)` per retained message — the
    /// shape [`scs_telemetry::ProvenanceLog::note_flush`] records.
    pub fn retained_payloads(&self) -> Vec<(usize, u64)> {
        self.msgs
            .iter()
            .map(|m| (m.update.template_id, m.payload_bytes()))
            .collect()
    }
}

/// What a proxy flushes when the invalidation stream skips an epoch.
/// The missed updates are unknown, so the flush must cover anything
/// *any* update template could have invalidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Flush only entries that some update template could affect per the
    /// static IPM (`∃u: A(u,q) ≠ 0`), plus every entry whose template is
    /// invisible at its exposure level. Strictly cheaper than a full
    /// flush whenever the analysis proved some pairs conflict-free.
    FlushAffected,
    /// Drop the whole cache — the only safe answer when nothing is known
    /// (and the conservative default for low-exposure deployments).
    FlushAll,
}

impl RecoveryMode {
    /// Stable numeric code used by trace events.
    pub fn code(self) -> u8 {
        match self {
            RecoveryMode::FlushAffected => 0,
            RecoveryMode::FlushAll => 1,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            RecoveryMode::FlushAffected => "flush_affected",
            RecoveryMode::FlushAll => "flush_all",
        }
    }
}

/// How a delivered [`InvalidationMsg`] was handled by the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// In-order delivery: the update's invalidation pass ran.
    Applied { scanned: usize, invalidated: usize },
    /// The message's epoch was already covered (duplicate, or a reorder
    /// whose gap already forced a flush); dropped.
    Duplicate,
    /// A gap was detected; the recovery flush removed `flushed` entries
    /// (which covers this message's own invalidations too).
    Recovered { flushed: usize },
}

/// How a delivered [`InvalidationBatch`] was handled by the proxy
/// ([`crate::Dssp::apply_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The batch's range attached to the proxy's stream in order (or
    /// overlapped it); every not-yet-covered message was applied.
    Applied {
        /// Messages whose invalidation pass ran.
        applied: usize,
        /// Messages skipped as already covered (whole-epoch duplicates
        /// within an overlapping redelivery).
        skipped: usize,
        /// Cache entries scanned across the applied passes.
        scanned: usize,
        /// Cache entries invalidated across the applied passes.
        invalidated: usize,
    },
    /// Every epoch in the batch was already covered; dropped whole.
    Duplicate,
    /// The batch starts past the next expected epoch — at least one
    /// earlier batch was lost. The recovery flush removed `flushed`
    /// entries (covering this batch's own invalidations too).
    Recovered { flushed: usize },
}

/// The outcome of a fault-tolerant query
/// ([`crate::Dssp::execute_query_ft`]).
#[derive(Debug, Clone)]
pub enum FtOutcome {
    Served {
        result: QueryResult,
        /// Whether the cache answered (no home-server round trip).
        hit: bool,
        /// The hit was served while the home link was down — graceful
        /// degradation inside the lease window.
        degraded: bool,
    },
    /// Cache miss and the home server stayed unreachable through every
    /// retry; no stale answer is substituted.
    Unavailable,
}

/// A fault-tolerant query response: the outcome plus what the trip cost.
#[derive(Debug, Clone)]
pub struct FtQueryResponse {
    pub outcome: FtOutcome,
    /// Home-trip attempts made (0 for cache hits).
    pub attempts: u32,
    /// Total simulated backoff waited before success or surrender (µs).
    pub backoff_micros: u64,
}

/// The outcome of a fault-tolerant update
/// ([`crate::Dssp::execute_update_ft`]).
#[derive(Debug, Clone)]
pub enum FtUpdateOutcome {
    /// Applied at the master; the epoch-stamped invalidation notification
    /// is returned for the delivery channel (the proxy does **not**
    /// invalidate its own cache until the message is delivered back via
    /// [`crate::Dssp::apply_invalidation`]).
    Applied {
        effect: UpdateEffect,
        msg: InvalidationMsg,
    },
    /// The home server stayed unreachable; the master is unchanged.
    Unavailable,
}

/// A fault-tolerant update response: the outcome plus what the trip cost.
#[derive(Debug, Clone)]
pub struct FtUpdateResponse {
    pub outcome: FtUpdateOutcome,
    pub attempts: u32,
    pub backoff_micros: u64,
}

/// Exponential-backoff retry schedule for home-server trips.
///
/// Attempt `k` (1-based) is preceded by a wait of
/// `base_backoff_micros * 2^(k-2)` for `k >= 2`, capped at
/// `max_backoff_micros`; the whole trip gives up once the accumulated
/// wait would exceed `timeout_micros` or `max_attempts` is reached.
///
/// With `jitter` off the schedule is the fixed doubling above — every
/// retrier waits the identical amount, so proxies that failed together
/// retry together (a retry storm into the still-down link). With
/// `jitter` on, [`RetryPolicy::backoff_before_seeded`] draws the wait
/// *full-jitter* style — uniform in `[0, backoff_before(k)]` — from a
/// deterministic hash of `(seed, attempt)`, so replays with the same
/// seed reproduce exactly while differently-seeded retriers decorrelate.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    pub max_attempts: u32,
    pub base_backoff_micros: u64,
    pub max_backoff_micros: u64,
    /// Total backoff budget across all attempts.
    pub timeout_micros: u64,
    /// Enables seeded full-jitter backoff (deterministic per seed).
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_micros: 10_000,
            max_backoff_micros: 500_000,
            timeout_micros: 2_000_000,
            jitter: false,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no waiting — the classic fail-fast behaviour.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_micros: 0,
            max_backoff_micros: 0,
            timeout_micros: 0,
            jitter: false,
        }
    }

    /// The default schedule with full-jitter enabled.
    pub fn jittered() -> RetryPolicy {
        RetryPolicy {
            jitter: true,
            ..RetryPolicy::default()
        }
    }

    /// The wait before attempt `attempt` (1-based; attempt 1 is
    /// immediate). Without jitter this is the exact wait; with jitter it
    /// is the upper bound of the draw.
    pub fn backoff_before(&self, attempt: u32) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let exp = (attempt - 2).min(63);
        self.base_backoff_micros
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_micros)
    }

    /// The wait before attempt `attempt` for the retrier identified by
    /// `seed` (e.g. a hash of proxy id and request sequence). Equals
    /// [`RetryPolicy::backoff_before`] when `jitter` is off; otherwise a
    /// deterministic uniform draw in `[0, backoff_before(attempt)]`.
    pub fn backoff_before_seeded(&self, attempt: u32, seed: u64) -> u64 {
        let cap = self.backoff_before(attempt);
        if !self.jitter || cap == 0 {
            return cap;
        }
        let h = splitmix64(seed ^ splitmix64(attempt as u64));
        h % (cap + 1)
    }
}

/// SplitMix64 finalizer — a tiny, dependency-free bijective mixer; good
/// enough to decorrelate backoff draws and fully deterministic.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One fanout pipe registered at the home server: a replica's stable id
/// and the update epoch current when the pipe was opened. A joining
/// replica registers *before* it enters the routing ring and sets its
/// epoch cursor to `joined_epoch` — every later epoch reaches it through
/// its own pipe, and every earlier epoch is provably already reflected
/// in the master state it will warm from, so the handshake leaves no
/// window in which an invalidation for soon-to-be-owned entries can be
/// missed. The registry is the home-side membership view; the fleet
/// keeps it in lock-step with its replica set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeRegistration {
    /// Stable replica id (never reused within a fleet's lifetime).
    pub replica: usize,
    /// Home update epoch at registration — the pipe's initial cursor.
    pub joined_epoch: u64,
}

/// The (simulated) state of the proxy ↔ home network path: a set of
/// outage windows `[start, end)` in microseconds. Produced by the
/// fault-injection harness; [`HomeLink::reliable`] is the always-up
/// default.
#[derive(Debug, Clone, Default)]
pub struct HomeLink {
    outages: Vec<(u64, u64)>,
}

impl HomeLink {
    /// A link that never fails (the paper's assumption).
    pub fn reliable() -> HomeLink {
        HomeLink::default()
    }

    /// A link down during each `[start, end)` window.
    pub fn with_outages(outages: Vec<(u64, u64)>) -> HomeLink {
        HomeLink { outages }
    }

    pub fn is_up(&self, now_micros: u64) -> bool {
        !self
            .outages
            .iter()
            .any(|&(s, e)| s <= now_micros && now_micros < e)
    }

    /// The configured down windows as half-open `(start, end)` pairs —
    /// exported next to time-series curves so an observed throughput dip
    /// can be lined up against the outage that caused it.
    pub fn outages(&self) -> &[(u64, u64)] {
        &self.outages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff_micros: 100,
            max_backoff_micros: 350,
            timeout_micros: 10_000,
            jitter: false,
        };
        assert_eq!(p.backoff_before(1), 0);
        assert_eq!(p.backoff_before(2), 100);
        assert_eq!(p.backoff_before(3), 200);
        assert_eq!(p.backoff_before(4), 350, "capped");
        assert_eq!(p.backoff_before(5), 350);
    }

    #[test]
    fn backoff_survives_huge_attempt_counts() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before(200), p.max_backoff_micros);
    }

    #[test]
    fn link_outage_windows_are_half_open() {
        let link = HomeLink::with_outages(vec![(100, 200), (500, 600)]);
        assert!(link.is_up(99));
        assert!(!link.is_up(100));
        assert!(!link.is_up(199));
        assert!(link.is_up(200));
        assert!(!link.is_up(550));
        assert!(link.is_up(1_000));
        assert!(HomeLink::reliable().is_up(0));
    }

    #[test]
    fn seeded_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::jittered();
        for attempt in 2..=6u32 {
            let cap = p.backoff_before(attempt);
            for seed in [0u64, 1, 42, u64::MAX] {
                let w = p.backoff_before_seeded(attempt, seed);
                assert!(w <= cap, "draw {w} exceeds cap {cap}");
                assert_eq!(
                    w,
                    p.backoff_before_seeded(attempt, seed),
                    "same (seed, attempt) must replay identically"
                );
            }
        }
        // Attempt 1 is always immediate, jitter or not.
        assert_eq!(p.backoff_before_seeded(1, 7), 0);
    }

    #[test]
    fn jitter_off_matches_deterministic_schedule() {
        let p = RetryPolicy::default();
        for attempt in 1..=8u32 {
            assert_eq!(
                p.backoff_before_seeded(attempt, 1234),
                p.backoff_before(attempt)
            );
        }
    }

    #[test]
    fn jittered_retriers_decorrelate() {
        // The retry-storm regression: two retriers seeded differently
        // must not share an identical full backoff schedule.
        let p = RetryPolicy::jittered();
        let schedule =
            |seed: u64| -> Vec<u64> { (2..=6).map(|a| p.backoff_before_seeded(a, seed)).collect() };
        let collisions = (0..64u64)
            .filter(|s| schedule(2 * s) == schedule(2 * s + 1))
            .count();
        assert_eq!(collisions, 0, "seeded schedules collided");
    }

    #[test]
    fn recovery_mode_codes_are_stable() {
        assert_eq!(RecoveryMode::FlushAffected.code(), 0);
        assert_eq!(RecoveryMode::FlushAll.code(), 1);
        assert_eq!(RecoveryMode::FlushAll.name(), "flush_all");
    }
}
