//! Replicated home tier: one primary plus N standbys shipping WAL
//! records, with lease-based failure detection, deterministic standby
//! promotion, and epoch fencing.
//!
//! The home server is the single point the whole DSSP architecture
//! leans on: proxies cache *because* the master copy is authoritative,
//! and the invalidation stream is meaningful *because* epochs are
//! issued by exactly one writer. This module makes that single point
//! crash-survivable without weakening either property:
//!
//! * **Log shipping.** The primary streams its WAL
//!   ([`scs_storage::Wal`]) to each standby over a seeded
//!   [`FaultyChannel`] — drops and delays re-ship from the log, so the
//!   channel needs no reliability of its own. A standby that has fallen
//!   behind a compacted log is resynced with a full-state
//!   [`WalPayload::Checkpoint`] record instead.
//! * **Two commit modes.** [`ReplicationMode::Async`] acks the client
//!   as soon as the primary applies — a failover may lose a *bounded,
//!   accounted* tail of acked writes. [`ReplicationMode::SyncQuorum`]
//!   acks only once a majority of the cluster holds the record — no
//!   acknowledged commit is ever lost, which promotion enforces by
//!   requiring a majority of standbys alive (quorum overlap guarantees
//!   the most-caught-up survivor has every acked epoch).
//! * **Lease failover.** Standbys promote only after the primary has
//!   been silent for a full lease, and promotion picks the
//!   most-caught-up alive standby (ties to the lowest id) — fully
//!   deterministic under a seed.
//! * **Epoch fencing.** Every shipped record carries the primary's
//!   **term**; promotion bumps the term *authoritatively* — every
//!   reachable standby adopts it as part of the election, and a
//!   standby revived after sleeping through an election rejoins the
//!   current term (shedding any suffix the dead stream issued beyond
//!   the promoted tip) before accepting another record — so a deposed
//!   primary that wakes up and keeps writing ("zombie") finds its
//!   records strictly stale at every standby, no matter how the pipes
//!   reorder delivery. The promoted primary opens with a **barrier**
//!   ([`HomeServer::advance_epoch_to`]): epochs the dead primary issued
//!   but never replicated become a permanent gap in the invalidation
//!   stream — proxies detect it like any lost batch and recovery-flush
//!   (PR 2), so a failover needs no proxy-side special case.

use crate::delivery::PipeRegistration;
use crate::home::HomeServer;
use scs_netsim::{FaultSpec, FaultyChannel};
use scs_sqlkit::Update;
use scs_storage::{Database, StorageError, UpdateEffect, Wal, WalPayload, WalRecord};
use scs_telemetry::{FailoverStamp, SharedProvenance};
use std::collections::BTreeMap;

/// When a write is acknowledged to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Ack on primary apply; replication trails behind. Failover may
    /// lose the unreplicated tail — bounded and accounted, never
    /// silent.
    Async,
    /// Ack only once a majority of the cluster (primary + standbys)
    /// holds the record. No acked write is ever lost across failover.
    SyncQuorum,
}

impl ReplicationMode {
    pub fn name(&self) -> &'static str {
        match self {
            ReplicationMode::Async => "async",
            ReplicationMode::SyncQuorum => "sync_quorum",
        }
    }
}

/// Shape of a replicated home group.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    pub mode: ReplicationMode,
    /// Standby count (cluster size is `standbys + 1`).
    pub standbys: usize,
    /// Primary heartbeat / re-ship cadence (µs).
    pub heartbeat_micros: u64,
    /// Failure-detection lease: a standby promotes only after the
    /// primary has been silent this long (µs).
    pub lease_micros: u64,
    /// Fault model for every ship pipe (drops/dups/delays re-ship from
    /// the WAL, so none of them threaten durability).
    pub ship_faults: FaultSpec,
    /// Seed for the ship pipes (domain-separated per standby).
    pub seed: u64,
    /// How long a sync-quorum commit waits for its majority before
    /// giving up (the write stays applied but **unacked**) (µs).
    pub sync_timeout_micros: u64,
    /// Max records shipped to one standby per ship tick.
    pub ship_batch: usize,
}

impl ReplicationConfig {
    /// A single-node "group": no standbys, async acks, nothing to ship.
    /// [`HomeGroup::single`] built on this is an exact behavioural
    /// passthrough to a bare [`HomeServer`].
    pub fn single() -> ReplicationConfig {
        ReplicationConfig {
            mode: ReplicationMode::Async,
            standbys: 0,
            heartbeat_micros: 5_000,
            lease_micros: 50_000,
            ship_faults: FaultSpec::none(),
            seed: 1,
            sync_timeout_micros: 20_000,
            ship_batch: 64,
        }
    }

    /// A replicated group with `standbys` standbys in `mode`, reliable
    /// ship pipes. Tests and harnesses override the fault spec.
    pub fn group(mode: ReplicationMode, standbys: usize) -> ReplicationConfig {
        ReplicationConfig {
            mode,
            standbys,
            ..ReplicationConfig::single()
        }
    }

    /// Majority of the whole cluster (primary + standbys).
    pub fn majority(&self) -> usize {
        self.standbys.div_ceil(2) + 1
    }
}

/// One log record on the wire, fenced by the term of the primary that
/// shipped it.
#[derive(Debug, Clone)]
pub struct ShipMsg {
    pub term: u64,
    pub record: WalRecord,
}

/// A warm standby: a WAL replica fed by its ship pipe.
///
/// Ingest is idempotent and order-tolerant: records at or below the
/// applied tip are duplicates (dropped), out-of-order records wait in a
/// stash until the run is contiguous, and a full-state checkpoint
/// ahead of the tip *fast-forwards* the replica (snapshot resync — how
/// a standby crosses a compacted-away stretch of the log, and how a
/// rejoining node catches up from nothing).
#[derive(Debug)]
pub struct Standby {
    id: usize,
    /// Highest primary term this standby has accepted a record from.
    term: u64,
    alive: bool,
    wal: Wal,
    pipe: FaultyChannel<ShipMsg>,
    /// Out-of-order arrivals waiting for their predecessors.
    stash: BTreeMap<u64, WalRecord>,
    /// Records rejected for carrying a stale term (zombie-primary
    /// writes hitting the fence).
    fenced_records: u64,
    /// Set on a rejoiner whose local state is untrusted (divergent or
    /// empty): only a full-state checkpoint may seed it — statement
    /// records stash until the snapshot lands.
    needs_snapshot: bool,
    /// Full-state fast-forwards accepted (snapshot resyncs).
    snapshot_installs: u64,
    /// Ship-pipe send cursor bookkeeping (primary side): the tip epoch
    /// last shipped and when, to avoid re-shipping a stable window
    /// more often than the heartbeat.
    last_ship_tip: u64,
    last_ship_at: u64,
}

impl Standby {
    fn new(
        id: usize,
        snapshot: Database,
        epoch: u64,
        term: u64,
        pipe: FaultyChannel<ShipMsg>,
    ) -> Standby {
        Standby {
            id,
            term,
            alive: true,
            wal: Wal::new(snapshot, epoch),
            pipe,
            stash: BTreeMap::new(),
            fenced_records: 0,
            needs_snapshot: false,
            snapshot_installs: 0,
            last_ship_tip: epoch,
            last_ship_at: 0,
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// The contiguous replication tip: every epoch at or below this is
    /// durably held here.
    pub fn applied(&self) -> u64 {
        self.wal.last_epoch()
    }

    pub fn term(&self) -> u64 {
        self.term
    }

    pub fn fenced_records(&self) -> u64 {
        self.fenced_records
    }

    pub fn snapshot_installs(&self) -> u64 {
        self.snapshot_installs
    }

    /// Applies one delivered ship message. Returns `true` if the
    /// record advanced (or stashed toward) the replica, `false` if it
    /// was fenced or a duplicate.
    fn ingest(&mut self, msg: ShipMsg) -> bool {
        if msg.term < self.term {
            // A deposed primary's write: the fence holds. Promotion
            // bumps every reachable standby's term as part of the
            // election itself (see `HomeGroup::try_promote`), so a
            // zombie's records are *strictly* stale here from the
            // instant a new primary exists — delivery order cannot
            // race the fence into an equal-term window.
            self.fenced_records += 1;
            return false;
        }
        if msg.term > self.term {
            // Defense in depth: first contact from a newer primary
            // than this replica has witnessed (promotion, revive, and
            // rejoin normally bump terms before any such record
            // flows). Stale speculative arrivals die with the old
            // term, and a local suffix the new stream re-issues is
            // divergent — a checkpoint re-bases over it; a statement
            // forces a snapshot resync.
            self.term = msg.term;
            self.stash.clear();
            if msg.record.epoch <= self.applied() {
                if let WalPayload::Checkpoint(state) = &msg.record.payload {
                    self.wal = Wal::new(state.clone(), msg.record.epoch);
                    self.needs_snapshot = false;
                    self.snapshot_installs += 1;
                } else {
                    self.needs_snapshot = true;
                }
                return true;
            }
        }
        let epoch = msg.record.epoch;
        if self.needs_snapshot {
            // Untrusted local state: only a full-state image may seed
            // the replica; everything else waits in the stash.
            if let WalPayload::Checkpoint(state) = &msg.record.payload {
                self.wal = Wal::new(state.clone(), epoch);
                self.stash = self.stash.split_off(&(epoch + 1));
                self.needs_snapshot = false;
                self.snapshot_installs += 1;
                self.drain_stash();
            } else {
                self.stash.insert(epoch, msg.record);
            }
            return true;
        }
        if epoch <= self.applied() {
            return false; // duplicate (drop/dup channel or re-ship)
        }
        if epoch > self.applied() + 1 {
            if let WalPayload::Checkpoint(state) = &msg.record.payload {
                // Fast-forward: install the full state as a new base.
                self.wal = Wal::new(state.clone(), epoch);
                self.stash = self.stash.split_off(&(epoch + 1));
                self.snapshot_installs += 1;
                self.drain_stash();
                return true;
            }
            self.stash.insert(epoch, msg.record);
            return true;
        }
        self.wal.append(msg.record);
        self.drain_stash();
        true
    }

    fn drain_stash(&mut self) {
        while let Some(r) = self.stash.remove(&(self.applied() + 1)) {
            self.wal.append(r);
        }
        // Anything the tip has passed is a duplicate; drop it.
        self.stash = self.stash.split_off(&(self.applied() + 1));
    }
}

/// A deposed primary still running on a stale term (network partition,
/// not crash): its writes must bounce off the fence.
#[derive(Debug)]
pub struct Zombie {
    pub id: usize,
    pub term: u64,
    pub server: HomeServer,
}

/// The client-visible outcome of one write's replication step.
#[derive(Debug, Clone, Copy)]
pub struct CommitAck {
    /// Whether the write is acknowledged under the group's mode.
    /// Async: always. Sync-quorum: only once a majority held it;
    /// `false` means the write is applied but the client saw a
    /// timeout, so losing it later violates nothing.
    pub acked: bool,
    /// The epoch the write landed at.
    pub epoch: u64,
    /// Simulated wait for the quorum (0 in async mode).
    pub wait_micros: u64,
}

/// The full account of one failover, kept for the durability oracle
/// and the bench report.
#[derive(Debug, Clone, Copy)]
pub struct FailoverRecord {
    pub at_micros: u64,
    pub from_primary: usize,
    pub to_primary: usize,
    pub old_term: u64,
    pub new_term: u64,
    /// The old stream's tip: the highest epoch any primary had issued.
    pub old_tip: u64,
    /// The promoted standby's replication tip at promotion.
    pub promoted_applied: u64,
    /// The epoch the new primary opened with (`old_tip + 1`) — the
    /// permanent gap proxies detect.
    pub barrier_epoch: u64,
    /// Writes lost: epochs `(promoted_applied, old_tip]`.
    pub lost_records: u64,
    /// Of those, how many had been **acked** to a client. Must be 0 in
    /// sync-quorum mode — the per-mode durability oracle.
    pub lost_acked: u64,
    /// How long the tier was down before this promotion (µs).
    pub unavailable_micros: u64,
}

/// A replicated home tier behind the same surface a bare
/// [`HomeServer`] offers the fleet: `epoch`, pipe registry, sim time,
/// provenance — plus crash/partition/promotion machinery.
///
/// [`HomeGroup::single`] (0 standbys) is an exact passthrough; every
/// existing single-home call site keeps its behaviour byte-identical.
#[derive(Debug)]
pub struct HomeGroup {
    cfg: ReplicationConfig,
    /// The current primary; `None` while the tier is down (crashed or
    /// partitioned away, promotion pending).
    primary: Option<HomeServer>,
    primary_id: usize,
    /// Fencing term: bumped by every promotion.
    term: u64,
    /// Highest epoch any primary has issued (survives the primary's
    /// death; promotion barriers build on it).
    high_water: u64,
    /// Highest client-acked epoch. Prefix-closed: log shipping is
    /// prefix-ordered, so one number suffices.
    acked_epoch: u64,
    standbys: Vec<Standby>,
    now: u64,
    last_heartbeat: u64,
    /// Set while the tier is down; cleared (and accounted) on
    /// promotion.
    unavailable_since: Option<u64>,
    /// A partitioned-away old primary, still live on a stale term.
    zombie: Option<Zombie>,
    /// Durable logs of crashed primaries awaiting rejoin, oldest
    /// first, keyed by node id — a double failover can strand two
    /// un-rejoined logs at once.
    crashed: Vec<(usize, Wal)>,
    /// Authoritative fanout-pipe registry, mirrored onto whichever
    /// server is primary — what makes invalidation fanout resume
    /// toward the same fleet after a promotion.
    pipe_registry: Vec<PipeRegistration>,
    failovers: Vec<FailoverRecord>,
    /// Writes rejected at the group surface because the tier was down.
    rejected_writes: u64,
    /// Sync-quorum commits that timed out (applied but unacked).
    unacked_commits: u64,
    prov: Option<SharedProvenance>,
}

impl HomeGroup {
    /// Wraps `primary` with `cfg.standbys` warm standbys, each seeded
    /// from the primary's current state (epoch-aligned snapshot).
    pub fn new(primary: HomeServer, cfg: ReplicationConfig) -> HomeGroup {
        let epoch = primary.epoch();
        let standbys = (1..=cfg.standbys)
            .map(|id| {
                let pipe = FaultyChannel::new(
                    cfg.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    cfg.ship_faults.clone(),
                );
                Standby::new(id, primary.database().clone(), epoch, 0, pipe)
            })
            .collect();
        let pipe_registry = primary.registered_pipes().to_vec();
        HomeGroup {
            cfg,
            primary: Some(primary),
            primary_id: 0,
            term: 0,
            high_water: epoch,
            acked_epoch: epoch,
            standbys,
            now: 0,
            last_heartbeat: 0,
            unavailable_since: None,
            zombie: None,
            crashed: Vec::new(),
            pipe_registry,
            failovers: Vec::new(),
            rejected_writes: 0,
            unacked_commits: 0,
            prov: None,
        }
    }

    /// A single-node group: an exact passthrough to the wrapped
    /// server. Never fails over (there is nothing to promote).
    pub fn single(primary: HomeServer) -> HomeGroup {
        HomeGroup::new(primary, ReplicationConfig::single())
    }

    pub fn config(&self) -> &ReplicationConfig {
        &self.cfg
    }

    pub fn mode(&self) -> ReplicationMode {
        self.cfg.mode
    }

    pub fn term(&self) -> u64 {
        self.term
    }

    /// Whether the tier currently has a live primary.
    pub fn is_up(&self) -> bool {
        self.primary.is_some()
    }

    /// The current primary's stable node id.
    pub fn primary_id(&self) -> usize {
        self.primary_id
    }

    /// The live primary. Panics while the tier is down — callers on
    /// the fault-tolerant path check [`HomeGroup::is_up`] first.
    pub fn primary(&self) -> &HomeServer {
        self.primary.as_ref().expect("home tier is down")
    }

    pub fn primary_mut(&mut self) -> &mut HomeServer {
        self.primary.as_mut().expect("home tier is down")
    }

    /// The group's update epoch: the primary's when up, else the
    /// stream's high-water mark.
    pub fn epoch(&self) -> u64 {
        self.primary
            .as_ref()
            .map(|p| p.epoch())
            .unwrap_or(self.high_water)
    }

    /// Highest client-acked epoch (prefix-closed).
    pub fn acked_epoch(&self) -> u64 {
        self.acked_epoch
    }

    pub fn standbys(&self) -> &[Standby] {
        &self.standbys
    }

    pub fn failovers(&self) -> &[FailoverRecord] {
        &self.failovers
    }

    pub fn rejected_writes(&self) -> u64 {
        self.rejected_writes
    }

    pub fn unacked_commits(&self) -> u64 {
        self.unacked_commits
    }

    /// Total zombie-primary records bounced off the term fence.
    pub fn fenced_total(&self) -> u64 {
        self.standbys.iter().map(|s| s.fenced_records).sum()
    }

    // ---- HomeServer surface the fleet delegates to -----------------

    /// Registers a fanout pipe on the group registry *and* the live
    /// primary; promotion re-installs the registry wholesale so fanout
    /// resumes toward the same fleet.
    pub fn register_pipe(&mut self, replica: usize) -> u64 {
        assert!(
            !self.pipe_registry.iter().any(|p| p.replica == replica),
            "replica {replica} already has a registered pipe"
        );
        let epoch = self.epoch();
        self.pipe_registry.push(PipeRegistration {
            replica,
            joined_epoch: epoch,
        });
        if let Some(p) = self.primary.as_mut() {
            p.register_pipe(replica);
        }
        epoch
    }

    pub fn unregister_pipe(&mut self, replica: usize) -> Option<PipeRegistration> {
        if let Some(p) = self.primary.as_mut() {
            p.unregister_pipe(replica);
        }
        let i = self
            .pipe_registry
            .iter()
            .position(|p| p.replica == replica)?;
        Some(self.pipe_registry.remove(i))
    }

    pub fn registered_pipes(&self) -> &[PipeRegistration] {
        &self.pipe_registry
    }

    pub fn attach_provenance(&mut self, prov: SharedProvenance) {
        if let Some(p) = self.primary.as_mut() {
            p.attach_provenance(prov.clone());
        }
        self.prov = Some(prov);
    }

    /// Advances the group clock: heartbeats, ships outstanding log
    /// records, pumps the pipes, and — when the primary has been
    /// silent past the lease — promotes. Returns the failover record
    /// if a promotion happened on this tick.
    pub fn tick(&mut self, now: u64) -> Option<FailoverRecord> {
        self.now = now;
        if let Some(p) = self.primary.as_mut() {
            p.set_sim_time_micros(now);
            self.high_water = self.high_water.max(p.epoch());
            self.last_heartbeat = now;
        }
        self.ship_outstanding(now);
        self.pump(now);
        if self.primary.is_none()
            && now.saturating_sub(self.last_heartbeat) >= self.cfg.lease_micros
        {
            return self.try_promote(now);
        }
        None
    }

    // ---- replication machinery -------------------------------------

    /// Ships each alive standby what it is missing: WAL records when
    /// the log still covers its tip, a full-state checkpoint when
    /// compaction (or a long death) left it behind the base. Re-ships
    /// a stable window only at heartbeat cadence so drops don't flood
    /// the pipe with duplicates.
    fn ship_outstanding(&mut self, now: u64) {
        let Some(primary) = self.primary.as_ref() else {
            return;
        };
        let tip = primary.epoch();
        let term = self.term;
        let heartbeat = self.cfg.heartbeat_micros;
        let batch = self.cfg.ship_batch;
        for s in self.standbys.iter_mut().filter(|s| s.alive) {
            let applied = s.applied();
            if applied >= tip && !s.needs_snapshot {
                continue;
            }
            let fresh = tip != s.last_ship_tip || now.saturating_sub(s.last_ship_at) >= heartbeat;
            if !fresh {
                continue;
            }
            s.last_ship_tip = tip;
            s.last_ship_at = now;
            if s.needs_snapshot {
                // A rejoiner's local state is untrusted wholesale:
                // seed it with a full-state image before any records.
                s.pipe.send(
                    now,
                    ShipMsg {
                        term,
                        record: WalRecord {
                            epoch: tip,
                            payload: WalPayload::Checkpoint(primary.database().clone()),
                        },
                    },
                );
                continue;
            }
            if primary.wal().covers(applied) {
                for record in primary.wal().records_since(applied).iter().take(batch) {
                    s.pipe.send(
                        now,
                        ShipMsg {
                            term,
                            record: record.clone(),
                        },
                    );
                }
            } else {
                // The log was compacted past this standby: snapshot
                // resync with a full-state fast-forward record.
                s.pipe.send(
                    now,
                    ShipMsg {
                        term,
                        record: WalRecord {
                            epoch: tip,
                            payload: WalPayload::Checkpoint(primary.database().clone()),
                        },
                    },
                );
            }
        }
    }

    /// Delivers everything due on every alive standby's pipe.
    fn pump(&mut self, now: u64) {
        for s in self.standbys.iter_mut().filter(|s| s.alive) {
            for msg in s.pipe.poll(now) {
                s.ingest(msg);
            }
        }
    }

    /// The post-write replication step. Call after every primary write
    /// (the write itself goes through [`HomeGroup::primary_mut`], so
    /// any pathway — DSSP updates, out-of-band mutations — is
    /// covered). Async: the write is acked as-is. Sync-quorum: blocks
    /// (in simulated time) until a majority holds the log prefix, or
    /// times out leaving the write applied but unacked.
    pub fn commit(&mut self, now: u64) -> CommitAck {
        let target = self.primary().epoch();
        self.high_water = self.high_water.max(target);
        match self.cfg.mode {
            ReplicationMode::Async => {
                self.acked_epoch = self.acked_epoch.max(target);
                self.ship_outstanding(now);
                self.pump(now);
                CommitAck {
                    acked: true,
                    epoch: target,
                    wait_micros: 0,
                }
            }
            ReplicationMode::SyncQuorum => self.sync_commit(now, target),
        }
    }

    fn sync_commit(&mut self, now: u64, target: u64) -> CommitAck {
        let majority = self.cfg.majority();
        let term = self.term;
        let step = self.cfg.ship_faults.base_latency_micros.max(1);
        let mut t = now;
        let deadline = now + self.cfg.sync_timeout_micros;
        let ack = loop {
            self.ship_outstanding(t);
            self.pump(t);
            // Only replicas confirmed on the current stream count as
            // holders: one mid-resync (untrusted suffix) may report an
            // `applied` the promoted stream never issued.
            let holders = 1 + self
                .standbys
                .iter()
                .filter(|s| s.alive && s.term == term && !s.needs_snapshot && s.applied() >= target)
                .count();
            if holders >= majority {
                self.acked_epoch = self.acked_epoch.max(target);
                break CommitAck {
                    acked: true,
                    epoch: target,
                    wait_micros: t - now,
                };
            }
            if t >= deadline {
                self.unacked_commits += 1;
                break CommitAck {
                    acked: false,
                    epoch: target,
                    wait_micros: t - now,
                };
            }
            t = (t + step).min(deadline);
        };
        // The loop ran a private clock up to `t`, but the caller's
        // clock is still `now`: ship stamps left at future instants
        // would suppress heartbeat re-ships until the outer clock
        // catches up, delaying catch-up after a timed-out commit.
        for s in &mut self.standbys {
            s.last_ship_at = s.last_ship_at.min(now);
        }
        ack
    }

    /// Folds the primary's log into its snapshot up to `epoch` —
    /// standbys behind the new base will snapshot-resync.
    pub fn compact_wal(&mut self, epoch: u64) {
        self.primary_mut().compact_wal_to(epoch);
    }

    // ---- failure injection ------------------------------------------

    /// Hard-crashes the primary: in-memory state is gone; the durable
    /// log survives (a later [`HomeGroup::rejoin_crashed`] replays
    /// it). The tier is down until a standby promotes.
    pub fn crash_primary(&mut self, now: u64) {
        let p = self.primary.take().expect("no primary to crash");
        self.high_water = self.high_water.max(p.epoch());
        debug_assert!(
            !self.crashed.iter().any(|(id, _)| *id == self.primary_id),
            "node {} already has an un-rejoined crashed log",
            self.primary_id
        );
        self.crashed.push((self.primary_id, p.crash()));
        self.unavailable_since = Some(now);
        self.now = now;
    }

    /// Partitions the primary away: it keeps running (and believes it
    /// is primary) but the group stops hearing from it. Its subsequent
    /// writes are the zombie scenario.
    pub fn partition_primary(&mut self, now: u64) {
        let p = self.primary.take().expect("no primary to partition");
        assert!(
            self.zombie.is_none(),
            "a partitioned primary is already outstanding; heal it first"
        );
        self.high_water = self.high_water.max(p.epoch());
        self.zombie = Some(Zombie {
            id: self.primary_id,
            term: self.term,
            server: p,
        });
        self.unavailable_since = Some(now);
        self.now = now;
    }

    /// A write at the partitioned old primary. It applies locally and
    /// ships on the old term; once a new primary has been promoted the
    /// fence rejects every such record at every standby — pump the
    /// group and watch [`HomeGroup::fenced_total`] rise. Returns the
    /// local effect (the zombie believes it succeeded).
    pub fn zombie_write(&mut self, now: u64, u: &Update) -> Result<UpdateEffect, StorageError> {
        let zombie = self.zombie.as_mut().expect("no partitioned primary");
        let (effect, _msg) = zombie.server.apply_update(u)?;
        let record = zombie
            .server
            .wal()
            .records_since(zombie.server.epoch() - 1)
            .last()
            .expect("apply_update appended a record")
            .clone();
        let term = zombie.term;
        for s in self.standbys.iter_mut().filter(|s| s.alive) {
            s.pipe.send(
                now,
                ShipMsg {
                    term,
                    record: record.clone(),
                },
            );
        }
        Ok(effect)
    }

    /// Marks a standby dead (stops pumping and shipping to it).
    pub fn crash_standby(&mut self, id: usize) {
        let s = self.standby_mut(id);
        s.alive = false;
    }

    /// Revives a dead standby. If no promotion happened while it was
    /// dead its log is intact — it is now lagging and catches up from
    /// the ship stream (or a snapshot if the log moved past it). If it
    /// slept across a promotion, its log suffix beyond the oldest
    /// missed promotion's preserved tip may hold records the dead
    /// stream issued but the promoted stream re-issued with different
    /// content (a zombie's equal-term writes) — that suffix is rewound
    /// to the prefix every stream shares, or the whole replica is
    /// marked for snapshot resync when the shared prefix was compacted
    /// out of its log. Either way it rejoins the current term before
    /// accepting another record, so a stale-term write can never land
    /// after revival.
    pub fn revive_standby(&mut self, id: usize) {
        let group_term = self.term;
        let standby_term = self.standby_mut(id).term;
        if standby_term >= group_term {
            self.standby_mut(id).alive = true;
            return;
        }
        let safe = self
            .failovers
            .iter()
            .filter(|f| f.new_term > standby_term)
            .map(|f| f.promoted_applied)
            .min();
        let s = self.standby_mut(id);
        s.alive = true;
        s.term = group_term;
        s.stash.clear();
        match safe {
            Some(safe) if s.wal.base_epoch() <= safe => {
                s.wal.truncate_after(safe);
            }
            _ => {
                s.needs_snapshot = true;
            }
        }
    }

    fn standby_mut(&mut self, id: usize) -> &mut Standby {
        self.standbys
            .iter_mut()
            .find(|s| s.id == id)
            .expect("unknown standby id")
    }

    /// Rejoins the partitioned old primary as a standby. Its divergent
    /// unreplicated tail is discarded wholesale (it rejoins from
    /// nothing and snapshot-resyncs) — returns how many of its records
    /// diverged from the promoted stream.
    pub fn rejoin_zombie(&mut self, now: u64) -> u64 {
        let zombie = self.zombie.take().expect("no partitioned primary");
        let wal = zombie.server.crash();
        let promoted_base = self
            .failovers
            .last()
            .map(|f| f.promoted_applied)
            .unwrap_or(self.high_water);
        let divergent = wal.last_epoch().saturating_sub(promoted_base);
        self.admit_rejoiner(zombie.id, now);
        divergent
    }

    /// Rejoins the oldest un-rejoined crashed primary as a standby:
    /// its durable log is replayable but may diverge past the promoted
    /// stream's base, so it rejoins from nothing and snapshot-resyncs.
    /// Returns how many of its records lay beyond the tip the
    /// promotion that deposed it preserved.
    pub fn rejoin_crashed(&mut self, now: u64) -> u64 {
        assert!(!self.crashed.is_empty(), "no crashed primary");
        let (id, wal) = self.crashed.remove(0);
        let promoted_base = self
            .failovers
            .iter()
            .rev()
            .find(|f| f.from_primary == id)
            .or(self.failovers.last())
            .map(|f| f.promoted_applied)
            .unwrap_or(self.high_water);
        let divergent = wal.last_epoch().saturating_sub(promoted_base);
        self.admit_rejoiner(id, now);
        divergent
    }

    fn admit_rejoiner(&mut self, id: usize, now: u64) {
        assert!(
            (self.primary.is_none() || id != self.primary_id)
                && !self.standbys.iter().any(|s| s.id == id),
            "rejoiner {id} is already a group member"
        );
        let pipe = FaultyChannel::new(
            self.cfg.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5265_4A6F_494E,
            self.cfg.ship_faults.clone(),
        );
        let mut s = Standby::new(id, Database::default(), 0, self.term, pipe);
        s.needs_snapshot = true;
        s.last_ship_at = now;
        self.standbys.push(s);
    }

    // ---- promotion ---------------------------------------------------

    /// Promotes the most-caught-up eligible standby, if the mode's
    /// safety condition allows it. Eligible means alive *and* fully on
    /// the current stream — a replica mid-snapshot-resync reports an
    /// `applied` the promoted stream never confirmed, so it neither
    /// counts toward the coalition nor can win. Sync-quorum requires a
    /// majority of the cluster among the eligible standbys — quorum
    /// overlap then guarantees the winner holds every acked epoch.
    /// Async promotes any eligible standby and accounts the lost tail.
    fn try_promote(&mut self, now: u64) -> Option<FailoverRecord> {
        let eligible = |s: &&Standby| s.alive && !s.needs_snapshot;
        let alive = self.standbys.iter().filter(eligible).count();
        match self.cfg.mode {
            ReplicationMode::SyncQuorum => {
                if alive < self.cfg.majority() {
                    return None;
                }
            }
            ReplicationMode::Async => {
                if alive == 0 {
                    return None;
                }
            }
        }
        // Most caught up, ties to the lowest id — deterministic.
        let winner = self
            .standbys
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && !s.needs_snapshot)
            .max_by(|(_, a), (_, b)| {
                a.applied().cmp(&b.applied()).then(b.id.cmp(&a.id)) // reversed: lowest id wins ties
            })
            .map(|(i, _)| i)
            .expect("eligible standby exists");
        let standby = self.standbys.remove(winner);
        let promoted_applied = standby.applied();
        let old_tip = self.high_water.max(promoted_applied);
        let old_term = self.term;
        self.term += 1;
        // Promotion is authoritative: every reachable standby learns
        // the new term as part of the election itself, never lazily
        // from the next shipped record. A deposed zombie's writes
        // carry a *strictly* smaller term everywhere from this instant
        // — there is no equal-term window for a late record to slip
        // through, regardless of pipe drops and reordering. Stale
        // speculative stashes (out-of-order records from the dead
        // stream, possibly at epochs the new stream will re-issue) die
        // with the old term; re-shipping covers anything real they
        // held. Standbys dead right now learn the term — and shed any
        // divergent suffix — in `revive_standby`.
        for s in self.standbys.iter_mut().filter(|s| s.alive) {
            s.term = self.term;
            s.stash.clear();
        }
        let mut server = HomeServer::recover(standby.wal);
        let barrier = old_tip + 1;
        server.advance_epoch_to(barrier);
        server.restore_pipes(self.pipe_registry.clone());
        server.set_sim_time_micros(now);
        if let Some(prov) = &self.prov {
            server.attach_provenance(prov.clone());
        }
        let lost_records = old_tip - promoted_applied;
        let lost_acked = self.acked_epoch.saturating_sub(promoted_applied);
        debug_assert!(
            self.cfg.mode != ReplicationMode::SyncQuorum || lost_acked == 0,
            "sync-quorum promotion lost an acked write"
        );
        let record = FailoverRecord {
            at_micros: now,
            from_primary: self.primary_id,
            to_primary: standby.id,
            old_term,
            new_term: self.term,
            old_tip,
            promoted_applied,
            barrier_epoch: barrier,
            lost_records,
            lost_acked,
            unavailable_micros: now.saturating_sub(self.unavailable_since.unwrap_or(now)),
        };
        self.primary_id = standby.id;
        self.high_water = barrier;
        // Rewind the ack floor onto the survivor's stream: acked
        // epochs are all ≤ promoted_applied in sync mode; in async
        // mode the overhang is exactly the accounted `lost_acked`.
        self.acked_epoch = self.acked_epoch.min(promoted_applied);
        self.primary = Some(server);
        self.unavailable_since = None;
        self.last_heartbeat = now;
        // Remaining standbys learn the new term with the next shipped
        // record; reset their ship cursors so catch-up starts now.
        for s in &mut self.standbys {
            s.last_ship_tip = 0;
            s.last_ship_at = now;
        }
        self.ship_outstanding(now);
        if let Some(prov) = &self.prov {
            prov.lock().unwrap().note_failover(FailoverStamp {
                at_micros: now,
                from_primary: record.from_primary,
                to_primary: record.to_primary,
                new_term: record.new_term,
                barrier_epoch: record.barrier_epoch,
                lost_records: record.lost_records,
                lost_acked: record.lost_acked,
                unavailable_micros: record.unavailable_micros,
            });
        }
        self.failovers.push(record);
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scs_sqlkit::{parse_update, Value};
    use scs_storage::{ColumnType, TableSchema};
    use std::sync::Arc;

    fn seed_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("toys")
                .column("toy_id", ColumnType::Int)
                .column("qty", ColumnType::Int)
                .primary_key(&["toy_id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert_row("toys", vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        db
    }

    fn insert(id: i64, qty: i64) -> Update {
        Update::bind(
            0,
            Arc::new(parse_update("INSERT INTO toys (toy_id, qty) VALUES (?, ?)").unwrap()),
            vec![Value::Int(id), Value::Int(qty)],
        )
        .unwrap()
    }

    fn group(mode: ReplicationMode, standbys: usize, faults: FaultSpec) -> HomeGroup {
        let mut cfg = ReplicationConfig::group(mode, standbys);
        cfg.ship_faults = faults;
        cfg.seed = 7;
        HomeGroup::new(HomeServer::new(seed_db()), cfg)
    }

    fn write(g: &mut HomeGroup, now: u64, id: i64) -> CommitAck {
        g.primary_mut().apply_update(&insert(id, 1)).unwrap();
        g.commit(now)
    }

    #[test]
    fn single_group_is_a_passthrough() {
        let mut g = HomeGroup::single(HomeServer::new(seed_db()));
        let ack = write(&mut g, 0, 100);
        assert!(ack.acked);
        assert_eq!(ack.epoch, 1);
        assert_eq!(g.epoch(), 1);
        assert!(g.tick(1_000_000).is_none(), "nothing to promote");
        assert!(g.is_up());
    }

    #[test]
    fn standbys_converge_over_a_faulty_pipe() {
        let faults = FaultSpec {
            drop_probability: 0.3,
            duplicate_probability: 0.2,
            delay_probability: 0.3,
            max_delay_micros: 4_000,
            base_latency_micros: 100,
        };
        let mut g = group(ReplicationMode::Async, 2, faults);
        let mut now = 0;
        for i in 0..50 {
            now += 1_000;
            let ack = write(&mut g, now, 100 + i);
            assert!(ack.acked, "async acks immediately");
            g.tick(now);
        }
        // Heartbeat re-shipping drains the drops given enough time.
        for _ in 0..200 {
            now += 5_000;
            g.tick(now);
        }
        for s in g.standbys() {
            assert_eq!(s.applied(), g.epoch(), "standby {} caught up", s.id());
        }
        // Replicated state is byte-identical to the primary's.
        let want = g.primary().database().clone();
        for s in &g.standbys {
            assert_eq!(s.wal.replay().unwrap(), want);
        }
    }

    #[test]
    fn sync_quorum_acks_wait_for_a_majority() {
        let faults = FaultSpec {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            delay_probability: 0.0,
            max_delay_micros: 0,
            base_latency_micros: 200,
        };
        let mut g = group(ReplicationMode::SyncQuorum, 2, faults);
        let ack = write(&mut g, 0, 100);
        assert!(ack.acked);
        assert!(ack.wait_micros >= 200, "one pipe latency minimum");
        assert_eq!(g.acked_epoch(), 1);
        // Kill both standbys: the quorum (2 of 3) is unreachable, so
        // the next commit times out unacked.
        g.crash_standby(1);
        g.crash_standby(2);
        let ack = write(&mut g, 10_000, 101);
        assert!(!ack.acked, "no quorum, no ack");
        assert_eq!(g.acked_epoch(), 1, "ack floor unchanged");
        assert_eq!(g.unacked_commits(), 1);
    }

    #[test]
    fn failover_promotes_most_caught_up_and_fences_the_stream() {
        let mut g = group(ReplicationMode::Async, 2, FaultSpec::none());
        let mut now = 0;
        for i in 0..10 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1); // deliver the last ship
                         // Starve standby 2 and write more: only standby 1 keeps up.
        g.crash_standby(2);
        for i in 10..15 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        g.revive_standby(2); // alive again but lagging
        let tip = g.epoch();
        g.crash_primary(now + 2);
        let fo = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        assert_eq!(fo.to_primary, 1, "most-caught-up standby wins");
        assert_eq!(fo.promoted_applied, tip, "nothing was lost");
        assert_eq!(fo.lost_records, 0);
        assert_eq!(fo.barrier_epoch, tip + 1, "barrier opens a permanent gap");
        assert_eq!(g.epoch(), tip + 1);
        assert!(fo.unavailable_micros >= g.config().lease_micros);
        // The lagging standby catches back up from the new primary.
        for _ in 0..50 {
            now += 5_000;
            g.tick(now);
        }
        for s in g.standbys() {
            assert_eq!(s.applied(), g.epoch());
        }
    }

    #[test]
    fn async_failover_accounts_the_lost_tail_exactly() {
        let mut g = group(ReplicationMode::Async, 1, FaultSpec::none());
        let mut now = 0;
        for i in 0..5 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        assert_eq!(g.standbys()[0].applied(), 5);
        // Three more acked writes that never ship (no tick between
        // write and crash — crash mid-update).
        let mut acked = Vec::new();
        for i in 5..8 {
            now += 10; // under the ship heartbeat
            let ack = write(&mut g, now, 100 + i);
            assert!(ack.acked);
            acked.push(ack.epoch);
        }
        // commit() ships eagerly; drain what was already in flight,
        // then rebuild the loss by crashing before *delivery*.
        let delivered = g.standbys()[0].applied();
        g.crash_primary(now);
        let fo = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        assert_eq!(fo.old_tip, 8);
        assert_eq!(fo.promoted_applied, delivered);
        assert_eq!(fo.lost_records, 8 - delivered);
        assert_eq!(
            fo.lost_acked,
            acked.iter().filter(|&&e| e > delivered).count() as u64,
            "every lost acked write is accounted"
        );
        // The promoted database equals a replay without the lost tail.
        let mut want = seed_db();
        for i in 0..delivered {
            want.apply(&insert(100 + i as i64, 1)).unwrap();
        }
        assert_eq!(g.primary().database(), &want);
    }

    #[test]
    fn sync_quorum_failover_never_loses_an_acked_write() {
        let faults = FaultSpec {
            drop_probability: 0.4,
            duplicate_probability: 0.1,
            delay_probability: 0.3,
            max_delay_micros: 2_000,
            base_latency_micros: 100,
        };
        let mut g = group(ReplicationMode::SyncQuorum, 2, faults);
        let mut now = 0;
        let mut acked = 0u64;
        for i in 0..30 {
            now += 1_000;
            let ack = write(&mut g, now, 100 + i);
            if ack.acked {
                acked = ack.epoch;
            }
            g.tick(now);
        }
        g.crash_primary(now);
        let fo = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        assert_eq!(fo.lost_acked, 0, "sync-quorum durability oracle");
        assert!(
            fo.promoted_applied >= acked,
            "winner holds every acked epoch (quorum overlap)"
        );
    }

    #[test]
    fn sync_quorum_without_a_majority_stays_down() {
        let mut g = group(ReplicationMode::SyncQuorum, 2, FaultSpec::none());
        let mut now = 1_000;
        write(&mut g, now, 100);
        g.tick(now);
        g.crash_standby(1);
        g.crash_standby(2);
        g.crash_primary(now);
        for _ in 0..100 {
            now += 10_000;
            assert!(g.tick(now).is_none(), "no quorum, no promotion");
        }
        assert!(!g.is_up());
        // One standby back is still not a majority of the 3-node
        // cluster — the promoting coalition must intersect every
        // commit quorum, so it stays down.
        g.revive_standby(1);
        now += 10_000;
        assert!(g.tick(now).is_none(), "one survivor cannot prove safety");
        // The second standby restores the quorum and the tier.
        g.revive_standby(2);
        now += 10_000;
        let fo = g.tick(now).expect("quorum restored, promotes");
        assert_eq!(fo.to_primary, 1, "ties go to the lowest id");
        assert_eq!(fo.lost_acked, 0);
        assert!(g.is_up());
    }

    #[test]
    fn zombie_writes_are_fenced_and_rejoin_discards_the_divergence() {
        let mut g = group(ReplicationMode::Async, 2, FaultSpec::none());
        let mut now = 0;
        for i in 0..5 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        g.partition_primary(now + 2);
        let fo = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        assert_eq!(fo.lost_records, 0, "standbys were fully caught up");
        let promoted_epoch = g.epoch();
        // The old primary keeps writing on its stale term…
        for i in 0..3 {
            now += 100;
            g.zombie_write(now, &insert(900 + i, 1)).unwrap();
        }
        now += 1_000;
        g.tick(now);
        // One standby was promoted away; the remaining one fences all 3.
        assert_eq!(g.fenced_total(), 3, "every standby fenced every record");
        // …and none of it moved the promoted stream.
        assert!(g.epoch() >= promoted_epoch);
        let probe = scs_sqlkit::Query::bind(
            0,
            Arc::new(scs_sqlkit::parse_query("SELECT qty FROM toys WHERE toy_id = ?").unwrap()),
            vec![Value::Int(900)],
        )
        .unwrap();
        assert!(
            g.primary()
                .database()
                .execute(&probe)
                .unwrap()
                .rows
                .is_empty(),
            "zombie write never reached the promoted primary"
        );
        // Rejoining discards the divergent tail and snapshot-resyncs.
        let divergent = g.rejoin_zombie(now);
        assert_eq!(divergent, 3);
        for _ in 0..40 {
            now += 5_000;
            write(&mut g, now, 700 + now as i64 % 97);
            g.tick(now);
        }
        for _ in 0..10 {
            now += 5_000;
            g.tick(now);
        }
        for s in g.standbys() {
            assert_eq!(s.applied(), g.epoch(), "rejoiner {} converged", s.id());
        }
        let want = g.primary().database().clone();
        for s in &g.standbys {
            assert_eq!(s.wal.replay().unwrap(), want);
        }
    }

    #[test]
    fn double_failover_keeps_promoting_deterministically() {
        let mut g = group(ReplicationMode::Async, 2, FaultSpec::none());
        let mut now = 0;
        for i in 0..5 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        g.crash_primary(now + 2);
        let fo1 = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        assert_eq!(fo1.to_primary, 1);
        for i in 5..8 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        g.crash_primary(now + 2);
        let fo2 = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        assert_eq!(fo2.to_primary, 2, "the remaining standby takes over");
        assert_eq!(g.term(), 2);
        assert_eq!(fo2.lost_records, 0);
        assert!(fo2.barrier_epoch > fo1.barrier_epoch);
        // Writes keep flowing on the twice-promoted stream.
        let ack = write(&mut g, now + 1_000, 999);
        assert!(ack.acked);
    }

    #[test]
    fn snapshot_resync_crosses_a_compacted_log() {
        let mut g = group(ReplicationMode::Async, 1, FaultSpec::none());
        let mut now = 0;
        for i in 0..5 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        g.crash_standby(1);
        for i in 5..15 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        // Compact past the dead standby's tip.
        g.compact_wal(12);
        g.revive_standby(1);
        for _ in 0..20 {
            now += 5_000;
            g.tick(now);
        }
        let s = &g.standbys()[0];
        assert_eq!(s.applied(), g.epoch());
        assert!(s.snapshot_installs() >= 1, "caught up via checkpoint");
        assert_eq!(s.wal.replay().unwrap(), *g.primary().database());
    }

    /// The reviewer race, pinned at the ingest layer: a standby that
    /// witnessed the promotion (term bumped by the election) but has
    /// not yet received any new-term record gets the deposed primary's
    /// write for the *same* epoch the new stream is about to issue —
    /// delivered first. It must bounce off the fence, and the true
    /// primary's barrier for that epoch must then land normally, never
    /// be dropped as a duplicate of the zombie record.
    #[test]
    fn zombie_record_arriving_before_the_new_streams_first_ship_is_fenced() {
        let db = seed_db();
        let pipe = FaultyChannel::new(1, FaultSpec::none());
        let mut s = Standby::new(1, db.clone(), 5, 0, pipe);
        s.term = 1; // the election reached it; no term-1 record yet
        let zrec = WalRecord {
            epoch: 6,
            payload: WalPayload::Statement(insert(900, 1)),
        };
        assert!(
            !s.ingest(ShipMsg {
                term: 0,
                record: zrec
            }),
            "old-term record fenced even though no new-term record has arrived"
        );
        assert_eq!(s.fenced_records(), 1);
        assert_eq!(s.applied(), 5, "nothing appended");
        // The true primary's barrier for the same epoch then lands.
        let barrier = WalRecord {
            epoch: 6,
            payload: WalPayload::Checkpoint(db.clone()),
        };
        assert!(s.ingest(ShipMsg {
            term: 1,
            record: barrier
        }));
        assert_eq!(s.applied(), 6);
        assert_eq!(s.wal.replay().unwrap(), db);
    }

    /// Promotion bumps every reachable standby's term as part of the
    /// election itself — before any new-term record flows — so a
    /// zombie's late writes are strictly stale everywhere from the
    /// instant the new primary exists.
    #[test]
    fn promotion_bumps_standby_terms_authoritatively() {
        let mut g = group(ReplicationMode::Async, 2, FaultSpec::none());
        let mut now = 0;
        for i in 0..5 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        g.partition_primary(now + 2);
        loop {
            now += 5_000;
            if g.tick(now).is_some() {
                break;
            }
        }
        for s in g.standbys() {
            assert_eq!(s.term(), g.term(), "standby {} knows the term", s.id());
        }
        // The zombie writes immediately after promotion; deliver ONLY
        // the pipes (no tick). The zombie record is fenced on term
        // alone; any movement comes from the new primary's barrier,
        // never from the zombie's write.
        g.zombie_write(now + 10, &insert(900, 1)).unwrap();
        g.pump(now + 10_000);
        assert_eq!(g.fenced_total(), 1, "fenced on the bumped term");
        let probe = scs_sqlkit::Query::bind(
            0,
            Arc::new(scs_sqlkit::parse_query("SELECT qty FROM toys WHERE toy_id = ?").unwrap()),
            vec![Value::Int(900)],
        )
        .unwrap();
        for s in &g.standbys {
            assert!(
                s.wal
                    .replay()
                    .unwrap()
                    .execute(&probe)
                    .unwrap()
                    .rows
                    .is_empty(),
                "zombie write reached standby {}",
                s.id()
            );
        }
    }

    /// A standby that ingested the partitioned primary's equal-term
    /// writes, then died, then was revived *after* a promotion must not
    /// keep the divergent suffix: the epochs the dead stream issued
    /// beyond the promoted tip are exactly the epochs the new stream
    /// re-issues with different content. Revival rewinds it to the
    /// shared prefix and it converges on the promoted stream.
    #[test]
    fn contaminated_standby_revived_across_promotion_is_rewound() {
        let mut g = group(ReplicationMode::Async, 2, FaultSpec::none());
        let mut now = 0;
        for i in 0..5 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        let tip = g.epoch();
        // Standby 1 misses the zombie's writes; standby 2 ingests them
        // (equal term — the partitioned primary is still the only
        // writer), then dies holding the contaminated suffix.
        g.crash_standby(1);
        g.partition_primary(now + 2);
        for i in 0..3 {
            now += 100;
            g.zombie_write(now, &insert(900 + i, 1)).unwrap();
        }
        g.pump(now + 1);
        assert_eq!(g.standbys()[1].applied(), tip + 3, "standby 2 contaminated");
        g.crash_standby(2);
        g.revive_standby(1);
        let fo = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        assert_eq!(fo.to_primary, 1, "clean standby wins");
        assert_eq!(fo.promoted_applied, tip);
        // Standby 2 revives across the promotion: its zombie suffix at
        // epochs (tip, tip+3] — which the new stream re-issued as the
        // barrier and fresh writes — must be shed, not kept as
        // "already applied".
        g.revive_standby(2);
        assert_eq!(g.standbys()[0].term(), g.term());
        assert!(g.standbys()[0].applied() <= tip, "divergent suffix shed");
        for i in 0..10 {
            now += 1_000;
            write(&mut g, now, 200 + i);
            g.tick(now);
        }
        for _ in 0..20 {
            now += 5_000;
            g.tick(now);
        }
        let want = g.primary().database().clone();
        for s in &g.standbys {
            assert_eq!(s.applied(), g.epoch(), "standby {} converged", s.id());
            assert_eq!(s.wal.replay().unwrap(), want, "byte-identical replay");
        }
        // The zombie rows the revived standby once held are gone.
        let probe = scs_sqlkit::Query::bind(
            0,
            Arc::new(scs_sqlkit::parse_query("SELECT qty FROM toys WHERE toy_id = ?").unwrap()),
            vec![Value::Int(900)],
        )
        .unwrap();
        assert!(want.execute(&probe).unwrap().rows.is_empty());
    }

    /// The zombie scenario under a dropping, duplicating, delaying
    /// ship pipe, across seeds: promotion races zombie deliveries in
    /// every order the fault model can produce, and no standby may
    /// ever silently diverge — every replica must converge to the
    /// promoted primary's stream byte-for-byte, with the zombie's
    /// post-promotion writes fenced or dropped, never applied.
    #[test]
    fn zombie_race_over_lossy_pipes_never_diverges() {
        for seed in 0..24u64 {
            let faults = FaultSpec {
                drop_probability: 0.3,
                duplicate_probability: 0.15,
                delay_probability: 0.4,
                max_delay_micros: 20_000,
                base_latency_micros: 200,
            };
            let mut cfg = ReplicationConfig::group(ReplicationMode::Async, 2);
            cfg.ship_faults = faults;
            cfg.seed = seed;
            let mut g = HomeGroup::new(HomeServer::new(seed_db()), cfg);
            let mut now = 0;
            for i in 0..20 {
                now += 1_000;
                write(&mut g, now, 100 + i);
                g.tick(now);
            }
            g.partition_primary(now + 1);
            // Zombie writes race the election and the new primary's
            // first ships through the same faulty pipes.
            for i in 0..2 {
                now += 500;
                g.zombie_write(now, &insert(900 + i, 1)).unwrap();
            }
            let fo = loop {
                now += 2_500;
                if let Some(fo) = g.tick(now) {
                    break fo;
                }
            };
            for i in 2..5 {
                now += 500;
                g.zombie_write(now, &insert(900 + i, 1)).unwrap();
                now += 500;
                write(&mut g, now, 300 + i);
                g.tick(now);
            }
            let divergent = g.rejoin_zombie(now + 1);
            assert!(divergent >= 3, "post-promotion zombie writes discarded");
            for i in 0..10 {
                now += 1_000;
                write(&mut g, now, 400 + i);
                g.tick(now);
            }
            // Settle: heartbeat re-shipping drains drops and delays.
            for _ in 0..100 {
                now += 5_000;
                g.tick(now);
            }
            let want = g.primary().database().clone();
            for s in &g.standbys {
                assert_eq!(
                    s.applied(),
                    g.epoch(),
                    "standby {} caught up (seed {seed})",
                    s.id()
                );
                assert_eq!(
                    s.wal.replay().unwrap(),
                    want,
                    "standby {} replay byte-identical (seed {seed}, fo {fo:?})",
                    s.id()
                );
            }
            // None of the zombie's post-promotion writes survived
            // anywhere on the promoted stream.
            for toy in 902..905 {
                let probe = scs_sqlkit::Query::bind(
                    0,
                    Arc::new(
                        scs_sqlkit::parse_query("SELECT qty FROM toys WHERE toy_id = ?").unwrap(),
                    ),
                    vec![Value::Int(toy)],
                )
                .unwrap();
                assert!(
                    want.execute(&probe).unwrap().rows.is_empty(),
                    "zombie write {toy} leaked into the promoted stream (seed {seed})"
                );
            }
        }
    }

    /// A double failover with no rejoin in between leaves *two*
    /// un-rejoined durable logs; both must survive and both nodes must
    /// be re-admittable without clashing ids.
    #[test]
    fn double_failover_retains_both_crashed_logs_for_rejoin() {
        let mut g = group(ReplicationMode::Async, 3, FaultSpec::none());
        let mut now = 0;
        for i in 0..5 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        g.crash_primary(now + 2);
        let fo1 = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        for i in 5..8 {
            now += 1_000;
            write(&mut g, now, 100 + i);
            g.tick(now);
        }
        g.tick(now + 1);
        g.crash_primary(now + 2);
        let fo2 = loop {
            now += 5_000;
            if let Some(fo) = g.tick(now) {
                break fo;
            }
        };
        // Both dead primaries' logs are retained, oldest first, and
        // both rejoin with their original ids intact.
        assert_eq!(g.rejoin_crashed(now), 0, "node 0 had fully replicated");
        assert_eq!(g.rejoin_crashed(now), 0, "node 1 had fully replicated");
        let mut ids: Vec<usize> = g.standbys().iter().map(|s| s.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 3], "all ids distinct");
        assert_eq!(g.primary_id(), fo2.to_primary);
        assert_ne!(fo1.to_primary, fo2.to_primary);
        for _ in 0..40 {
            now += 5_000;
            g.tick(now);
        }
        let want = g.primary().database().clone();
        for s in &g.standbys {
            assert_eq!(s.applied(), g.epoch(), "rejoiner {} converged", s.id());
            assert_eq!(s.wal.replay().unwrap(), want);
        }
    }

    /// A timed-out sync-quorum commit runs a private clock up to the
    /// deadline; the ship stamps it leaves must not sit in the future,
    /// or heartbeat re-shipping stalls until the outer clock catches
    /// up.
    #[test]
    fn timed_out_sync_commit_leaves_no_future_ship_stamps() {
        let faults = FaultSpec {
            drop_probability: 1.0, // nothing delivers: the commit must time out
            duplicate_probability: 0.0,
            delay_probability: 0.0,
            max_delay_micros: 0,
            base_latency_micros: 200,
        };
        let mut g = group(ReplicationMode::SyncQuorum, 2, faults);
        let now = 1_000;
        let ack = write(&mut g, now, 100);
        assert!(!ack.acked, "total drop: no quorum");
        assert!(ack.wait_micros >= g.config().sync_timeout_micros);
        for s in g.standbys() {
            assert!(
                s.last_ship_at <= now,
                "standby {} stamped at future time {}",
                s.id(),
                s.last_ship_at
            );
        }
    }

    #[test]
    fn pipe_registry_survives_promotion() {
        let mut g = group(ReplicationMode::Async, 1, FaultSpec::none());
        assert_eq!(g.register_pipe(0), 0);
        write(&mut g, 1_000, 100);
        g.tick(1_000);
        assert_eq!(g.register_pipe(7), 1);
        g.tick(2_000);
        g.crash_primary(2_000);
        let mut now = 2_000;
        while g.tick(now).is_none() {
            now += 5_000;
        }
        let pipes = g.registered_pipes().to_vec();
        assert_eq!(pipes.len(), 2);
        assert_eq!(g.primary().registered_pipes(), &pipes[..]);
        assert_eq!(
            g.primary().registered_pipes()[1],
            PipeRegistration {
                replica: 7,
                joined_epoch: 1
            }
        );
    }
}
