//! Convenience builders: one call from (application, exposure assignment)
//! to a populated end-to-end workload, plus the scalability measurement
//! used by the Figure-3/Figure-8 experiments.

use crate::defs::AppDef;
use crate::driver::{home_shard_map, CostModel, DsspWorkload, FleetWorkload, ShardedWorkload};
use crate::gen::{IdSpaces, BOOK_POPULARITY_EXPONENT};
use crate::{auction, bboard, bookstore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs_core::{Exposures, IpmMatrix};
use scs_dssp::{FleetConfig, RoutingMode};
use scs_netsim::{
    find_max_users, sweep_proxy_counts, FleetPoint, RunMetrics, ScalabilityResult, SearchOptions,
    SimConfig, Sla, SystemSpec,
};
use scs_storage::Database;

/// The three benchmark applications of the paper's evaluation (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchApp {
    Auction,
    Bboard,
    Bookstore,
}

impl BenchApp {
    pub const ALL: [BenchApp; 3] = [BenchApp::Auction, BenchApp::Bboard, BenchApp::Bookstore];

    pub fn name(self) -> &'static str {
        match self {
            BenchApp::Auction => "auction",
            BenchApp::Bboard => "bboard",
            BenchApp::Bookstore => "bookstore",
        }
    }

    /// The application definition.
    pub fn def(self) -> AppDef {
        match self {
            BenchApp::Auction => auction::auction(),
            BenchApp::Bboard => bboard::bboard(),
            BenchApp::Bookstore => bookstore::bookstore(),
        }
    }

    /// Populates a fresh master database at the default scale.
    pub fn build_database(self, seed: u64) -> (Database, IdSpaces) {
        self.build_database_scaled(seed, 1)
    }

    /// Populates a fresh master database with every scale knob divided by
    /// `div` (min 8 rows per dimension). The fleet trials use this to get
    /// a *hot* working set — the multi-proxy experiments measure how far
    /// replicated caches stretch a popular site, so the interesting
    /// regime is one where informed strategies serve mostly from cache.
    pub fn build_database_scaled(self, seed: u64, div: i64) -> (Database, IdSpaces) {
        let shrink = |n: i64| (n / div).max(8);
        let app = self.def();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).expect("static schemas");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            BenchApp::Auction => {
                let d = auction::AuctionScale::default();
                let scale = auction::AuctionScale {
                    users: shrink(d.users),
                    items: shrink(d.items),
                };
                auction::populate(&mut db, scale, &mut rng);
                (db, auction::id_spaces(scale))
            }
            BenchApp::Bboard => {
                let d = bboard::BboardScale::default();
                let scale = bboard::BboardScale {
                    users: shrink(d.users),
                    stories: shrink(d.stories),
                };
                bboard::populate(&mut db, scale, &mut rng);
                (db, bboard::id_spaces(scale))
            }
            BenchApp::Bookstore => {
                let d = bookstore::BookstoreScale::default();
                let scale = bookstore::BookstoreScale {
                    items: shrink(d.items),
                    customers: shrink(d.customers),
                    authors: shrink(d.authors),
                };
                bookstore::populate(&mut db, scale, &mut rng);
                (db, bookstore::id_spaces(scale))
            }
        }
    }

    /// Popularity skew for item-like parameters: the bookstore uses the
    /// Brynjolfsson et al. exponent (§5.1); the others use a milder skew.
    pub fn zipf_exponent(self) -> f64 {
        match self {
            BenchApp::Bookstore => BOOK_POPULARITY_EXPONENT,
            BenchApp::Auction | BenchApp::Bboard => 1.3,
        }
    }

    /// A fresh end-to-end workload under `exposures`.
    pub fn workload(self, exposures: Exposures, seed: u64) -> DsspWorkload {
        let app = self.def();
        let (db, ids) = self.build_database(seed);
        DsspWorkload::new(&app, db, ids, exposures, self.zipf_exponent(), seed)
    }

    /// As [`BenchApp::workload`] with an explicit IPM matrix (ablations).
    pub fn workload_with_matrix(
        self,
        exposures: Exposures,
        matrix: IpmMatrix,
        seed: u64,
    ) -> DsspWorkload {
        let app = self.def();
        let (db, ids) = self.build_database(seed);
        DsspWorkload::with_matrix(&app, db, ids, exposures, matrix, self.zipf_exponent(), seed)
    }

    /// A fresh multi-proxy fleet workload under `exposures`, in the
    /// DSSP-bound cost regime of the paper's multi-proxy figures: a hot
    /// working set ([`FLEET_SCALE_DIV`]) plus [`CostModel::dssp_bound`],
    /// so informed strategies' binding resource is the proxy tier.
    pub fn fleet_workload(
        self,
        exposures: Exposures,
        fleet: FleetConfig,
        seed: u64,
    ) -> FleetWorkload {
        let app = self.def();
        let (db, ids) = self.build_database_scaled(seed, FLEET_SCALE_DIV);
        FleetWorkload::new(&app, db, ids, exposures, fleet, self.zipf_exponent(), seed)
            .with_costs(CostModel::dssp_bound())
    }
}

/// Scale divisor for fleet-trial databases (see
/// [`BenchApp::build_database_scaled`]): small enough that the view
/// strategy's working set fits hot in every replica's cache, keeping
/// its miss traffic — and hence its share of the *shared* home server —
/// low enough that added replicas keep paying off.
pub const FLEET_SCALE_DIV: i64 = 8;

/// Experiment fidelity knobs: trial length and search resolution.
#[derive(Debug, Clone, Copy)]
pub struct Fidelity {
    pub duration_secs: u64,
    pub warmup_secs: u64,
    pub max_users: usize,
    pub resolution: usize,
}

impl Fidelity {
    /// The paper's methodology: 10-minute runs.
    pub fn full() -> Fidelity {
        Fidelity {
            duration_secs: 600,
            warmup_secs: 60,
            max_users: 8_192,
            resolution: 16,
        }
    }

    /// Faster runs for CI / quick reproduction; same qualitative shape.
    pub fn quick() -> Fidelity {
        Fidelity {
            duration_secs: 180,
            warmup_secs: 30,
            max_users: 4_096,
            resolution: 64,
        }
    }
}

/// Runs one trial of `app` under `exposures` with `users` concurrent
/// users; returns the run metrics.
pub fn run_trial(
    app: BenchApp,
    exposures: &Exposures,
    users: usize,
    fidelity: Fidelity,
    seed: u64,
) -> RunMetrics {
    let mut cfg = SimConfig::paper(users, seed);
    cfg.duration = fidelity.duration_secs * scs_netsim::SEC;
    cfg.warmup = fidelity.warmup_secs * scs_netsim::SEC;
    let mut workload = app.workload(exposures.clone(), seed);
    scs_netsim::run(&cfg, &mut workload)
}

/// Like [`run_trial`] but with the leakage audit plane attached to the
/// proxy: returns the run metrics together with the shared audit handle
/// so callers can read the leakage ledger after the run. The op stream
/// is identical to the unaudited trial's (same seed, same sampler).
pub fn run_audited_trial(
    app: BenchApp,
    exposures: &Exposures,
    users: usize,
    fidelity: Fidelity,
    seed: u64,
) -> (RunMetrics, scs_telemetry::SharedAudit) {
    let mut cfg = SimConfig::paper(users, seed);
    cfg.duration = fidelity.duration_secs * scs_netsim::SEC;
    cfg.warmup = fidelity.warmup_secs * scs_netsim::SEC;
    let mut workload = app.workload(exposures.clone(), seed);
    let audit = scs_telemetry::shared_audit(1);
    workload.dssp_mut().attach_audit(audit.clone(), 0);
    let metrics = scs_netsim::run(&cfg, &mut workload);
    (metrics, audit)
}

/// Measures scalability (the paper's metric: max users with the 90th
/// percentile response time under 2 s) for `app` under `exposures`.
pub fn measure_scalability(
    app: BenchApp,
    exposures: &Exposures,
    fidelity: Fidelity,
    seed: u64,
) -> ScalabilityResult {
    let sla = Sla::paper();
    let opts = SearchOptions {
        start: 8,
        max: fidelity.max_users,
        resolution: fidelity.resolution,
    };
    find_max_users(
        |users| run_trial(app, exposures, users, fidelity, seed),
        &sla,
        opts,
    )
}

/// Runs one trial of a `proxies`-replica fleet of `app` under
/// `exposures` with `users` concurrent users. The simulator's DSSP tier
/// is sized to match the fleet, so each replica queues on its own CPU
/// while the home server and its link stay shared — the mechanism that
/// caps blind strategies no matter how many proxies are added.
pub fn run_fleet_trial(
    app: BenchApp,
    exposures: &Exposures,
    proxies: usize,
    routing: RoutingMode,
    users: usize,
    fidelity: Fidelity,
    seed: u64,
) -> RunMetrics {
    let mut cfg = SimConfig::paper(users, seed);
    cfg.duration = fidelity.duration_secs * scs_netsim::SEC;
    cfg.warmup = fidelity.warmup_secs * scs_netsim::SEC;
    cfg.spec = SystemSpec::with_dssp_nodes(proxies);
    let fleet = FleetConfig::reliable(proxies, routing);
    let mut workload = app.fleet_workload(exposures.clone(), fleet, seed);
    scs_netsim::run(&cfg, &mut workload)
}

/// Measures the paper-style "max users vs. proxies" curve (Fig. 8–10):
/// an independent scalability search per proxy count, fresh fleet and
/// cold caches at every trial.
pub fn measure_fleet_scalability(
    app: BenchApp,
    exposures: &Exposures,
    proxy_counts: &[usize],
    routing: RoutingMode,
    fidelity: Fidelity,
    seed: u64,
) -> Vec<FleetPoint> {
    let sla = Sla::paper();
    let opts = SearchOptions {
        start: 8,
        max: fidelity.max_users,
        resolution: fidelity.resolution,
    };
    sweep_proxy_counts(
        proxy_counts,
        |proxies, users| run_fleet_trial(app, exposures, proxies, routing, users, fidelity, seed),
        &sla,
        opts,
    )
}

/// A fresh sharded-home workload under `exposures`: the master database
/// is partitioned over `shards` by [`home_shard_map`] (hash splits on
/// pinnable primary keys, whole-table placement for the rest), on the same hot
/// working set as the fleet trials. The cost model stays the default
/// **home-bound** shape — the sharded-home experiment asks how far
/// partitioning the master stretches the strategy that lives there (the
/// blind strategy most of all).
pub fn sharded_workload(
    app: BenchApp,
    exposures: Exposures,
    shards: usize,
    seed: u64,
) -> ShardedWorkload {
    let def = app.def();
    let (db, ids) = app.build_database_scaled(seed, FLEET_SCALE_DIV);
    let map = home_shard_map(&def, shards);
    ShardedWorkload::new(&def, db, ids, exposures, map, app.zipf_exponent(), seed)
}

/// Runs one trial of `app` against a `shards`-way sharded home tier with
/// `users` concurrent users. The simulator's home tier is sized to match
/// — each shard queues on its own service center while the DSSP node and
/// the DSSP↔home link stay shared.
pub fn run_home_shard_trial(
    app: BenchApp,
    exposures: &Exposures,
    shards: usize,
    users: usize,
    fidelity: Fidelity,
    seed: u64,
) -> RunMetrics {
    let mut cfg = SimConfig::paper(users, seed);
    cfg.duration = fidelity.duration_secs * scs_netsim::SEC;
    cfg.warmup = fidelity.warmup_secs * scs_netsim::SEC;
    cfg.spec = SystemSpec::with_home_shards(shards);
    let mut workload = sharded_workload(app, exposures.clone(), shards, seed);
    scs_netsim::run(&cfg, &mut workload)
}

/// Measures the "max users vs. home shards" curve: an independent
/// scalability search per shard count, fresh partitions and cold caches
/// at every trial ([`FleetPoint::proxies`] carries the shard count).
pub fn sweep_home_shards(
    app: BenchApp,
    exposures: &Exposures,
    shard_counts: &[usize],
    fidelity: Fidelity,
    seed: u64,
) -> Vec<FleetPoint> {
    let sla = Sla::paper();
    let opts = SearchOptions {
        start: 8,
        max: fidelity.max_users,
        resolution: fidelity.resolution,
    };
    sweep_proxy_counts(
        shard_counts,
        |shards, users| run_home_shard_trial(app, exposures, shards, users, fidelity, seed),
        &sla,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn databases_build_for_all_apps() {
        for app in BenchApp::ALL {
            let (db, ids) = app.build_database(3);
            let def = app.def();
            def.validate().unwrap();
            for schema in &def.schemas {
                let n = db.table(&schema.name).unwrap().len();
                assert!(n > 0, "{}: table {} empty", app.name(), schema.name);
                assert_eq!(
                    ids.initial(&schema.name),
                    n as i64,
                    "{}: id space for {} disagrees with populate",
                    app.name(),
                    schema.name
                );
            }
        }
    }
}
