//! Convenience builders: one call from (application, exposure assignment)
//! to a populated end-to-end workload, plus the scalability measurement
//! used by the Figure-3/Figure-8 experiments.

use crate::defs::AppDef;
use crate::driver::DsspWorkload;
use crate::gen::{IdSpaces, BOOK_POPULARITY_EXPONENT};
use crate::{auction, bboard, bookstore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs_core::{Exposures, IpmMatrix};
use scs_netsim::{find_max_users, RunMetrics, ScalabilityResult, SearchOptions, SimConfig, Sla};
use scs_storage::Database;

/// The three benchmark applications of the paper's evaluation (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchApp {
    Auction,
    Bboard,
    Bookstore,
}

impl BenchApp {
    pub const ALL: [BenchApp; 3] = [BenchApp::Auction, BenchApp::Bboard, BenchApp::Bookstore];

    pub fn name(self) -> &'static str {
        match self {
            BenchApp::Auction => "auction",
            BenchApp::Bboard => "bboard",
            BenchApp::Bookstore => "bookstore",
        }
    }

    /// The application definition.
    pub fn def(self) -> AppDef {
        match self {
            BenchApp::Auction => auction::auction(),
            BenchApp::Bboard => bboard::bboard(),
            BenchApp::Bookstore => bookstore::bookstore(),
        }
    }

    /// Populates a fresh master database at the default scale.
    pub fn build_database(self, seed: u64) -> (Database, IdSpaces) {
        let app = self.def();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).expect("static schemas");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            BenchApp::Auction => {
                let scale = auction::AuctionScale::default();
                auction::populate(&mut db, scale, &mut rng);
                (db, auction::id_spaces(scale))
            }
            BenchApp::Bboard => {
                let scale = bboard::BboardScale::default();
                bboard::populate(&mut db, scale, &mut rng);
                (db, bboard::id_spaces(scale))
            }
            BenchApp::Bookstore => {
                let scale = bookstore::BookstoreScale::default();
                bookstore::populate(&mut db, scale, &mut rng);
                (db, bookstore::id_spaces(scale))
            }
        }
    }

    /// Popularity skew for item-like parameters: the bookstore uses the
    /// Brynjolfsson et al. exponent (§5.1); the others use a milder skew.
    pub fn zipf_exponent(self) -> f64 {
        match self {
            BenchApp::Bookstore => BOOK_POPULARITY_EXPONENT,
            BenchApp::Auction | BenchApp::Bboard => 1.3,
        }
    }

    /// A fresh end-to-end workload under `exposures`.
    pub fn workload(self, exposures: Exposures, seed: u64) -> DsspWorkload {
        let app = self.def();
        let (db, ids) = self.build_database(seed);
        DsspWorkload::new(&app, db, ids, exposures, self.zipf_exponent(), seed)
    }

    /// As [`BenchApp::workload`] with an explicit IPM matrix (ablations).
    pub fn workload_with_matrix(
        self,
        exposures: Exposures,
        matrix: IpmMatrix,
        seed: u64,
    ) -> DsspWorkload {
        let app = self.def();
        let (db, ids) = self.build_database(seed);
        DsspWorkload::with_matrix(&app, db, ids, exposures, matrix, self.zipf_exponent(), seed)
    }
}

/// Experiment fidelity knobs: trial length and search resolution.
#[derive(Debug, Clone, Copy)]
pub struct Fidelity {
    pub duration_secs: u64,
    pub warmup_secs: u64,
    pub max_users: usize,
    pub resolution: usize,
}

impl Fidelity {
    /// The paper's methodology: 10-minute runs.
    pub fn full() -> Fidelity {
        Fidelity {
            duration_secs: 600,
            warmup_secs: 60,
            max_users: 8_192,
            resolution: 16,
        }
    }

    /// Faster runs for CI / quick reproduction; same qualitative shape.
    pub fn quick() -> Fidelity {
        Fidelity {
            duration_secs: 180,
            warmup_secs: 30,
            max_users: 4_096,
            resolution: 64,
        }
    }
}

/// Runs one trial of `app` under `exposures` with `users` concurrent
/// users; returns the run metrics.
pub fn run_trial(
    app: BenchApp,
    exposures: &Exposures,
    users: usize,
    fidelity: Fidelity,
    seed: u64,
) -> RunMetrics {
    let mut cfg = SimConfig::paper(users, seed);
    cfg.duration = fidelity.duration_secs * scs_netsim::SEC;
    cfg.warmup = fidelity.warmup_secs * scs_netsim::SEC;
    let mut workload = app.workload(exposures.clone(), seed);
    scs_netsim::run(&cfg, &mut workload)
}

/// Measures scalability (the paper's metric: max users with the 90th
/// percentile response time under 2 s) for `app` under `exposures`.
pub fn measure_scalability(
    app: BenchApp,
    exposures: &Exposures,
    fidelity: Fidelity,
    seed: u64,
) -> ScalabilityResult {
    let sla = Sla::paper();
    let opts = SearchOptions {
        start: 8,
        max: fidelity.max_users,
        resolution: fidelity.resolution,
    };
    find_max_users(
        |users| run_trial(app, exposures, users, fidelity, seed),
        &sla,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn databases_build_for_all_apps() {
        for app in BenchApp::ALL {
            let (db, ids) = app.build_database(3);
            let def = app.def();
            def.validate().unwrap();
            for schema in &def.schemas {
                let n = db.table(&schema.name).unwrap().len();
                assert!(n > 0, "{}: table {} empty", app.name(), schema.name);
                assert_eq!(
                    ids.initial(&schema.name),
                    n as i64,
                    "{}: id space for {} disagrees with populate",
                    app.name(),
                    schema.name
                );
            }
        }
    }
}
