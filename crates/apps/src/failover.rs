//! Home-tier failover scenarios: the durable replicated home group
//! ([`scs_dssp::HomeGroup`]) driven through scripted crash schedules
//! under live toystore traffic, with every guarantee checked by an
//! *external* oracle rather than the group's own accounting.
//!
//! Each scenario replays the deterministic toystore op script from the
//! chaos harness through a [`scs_dssp::ProxyFleet`] whose home tier is
//! a primary plus N WAL-shipping standbys, and injects failures at
//! scripted sim times: hard crashes (mid-update and mid-fanout-flush),
//! double failovers, lagging standbys promoted over a lossy ship
//! stream, and a partitioned zombie primary writing on a stale term.
//!
//! Three independent oracles audit the run:
//!
//! * **Durability** — the harness snapshots the master after every
//!   committed update (keyed by stream epoch) and prunes the snapshots
//!   a failover's promotion barrier rolled away. At the end of the run
//!   the surviving primary's database must equal the newest surviving
//!   snapshot byte-for-byte. Zombie divergence and lost async tails
//!   therefore *cannot* hide: any write that survived when it should
//!   not have (or vice versa) breaks physical equality.
//! * **Ack ledger** — every acked commit epoch is journaled; at each
//!   failover the externally-counted acked epochs above
//!   `promoted_applied` must match the group's own `lost_acked`.
//!   Under sync-quorum both must be zero (no acked write is ever
//!   lost); under async the lost tail is bounded and accounted.
//! * **Freshness** — every served result is checked against the
//!   master-state history exactly as in the chaos harness: a result
//!   matching no state current within the lease window is stale beyond
//!   the lease, and the count must be zero across every failover.

use crate::chaos::{build_scenario, staleness_within_lease, tick, ChaosConfig, ScriptOp};
use crate::driver::analysis_matrix;
use crate::toystore;
use scs_dssp::{
    DsspConfig, FanoutConfig, FleetConfig, FtOutcome, FtUpdateOutcome, ProxyFleet, RecoveryMode,
    ReplicationConfig, ReplicationMode, RoutingMode, StrategyKind,
};
use scs_netsim::{FaultSpec, Time, MS};
use scs_sqlkit::{Query, Update, Value};
use scs_storage::Database;
use scs_telemetry::TimeSeries;

pub use scs_dssp::FailoverRecord;

/// One scripted failure-injection event on the home tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Hard-crash the primary (memory gone, durable log survives).
    CrashPrimary,
    /// Partition the primary away; it keeps running its divergent
    /// branch, unheard by the group.
    PartitionPrimary,
    /// The partitioned zombie's stale-term writes reach the standbys
    /// (the partition healed *toward* them while the zombie still
    /// believes it is primary). Fired after promotion, every record
    /// is fenced.
    ZombieWrites(u32),
    /// Rejoin the crashed old primary as a snapshot-resyncing standby.
    RejoinCrashed,
    /// Heal the partition: the zombie discards its divergent tail and
    /// rejoins as a standby.
    RejoinZombie,
    /// Kill standby `id` (stops receiving the ship stream).
    CrashStandby(usize),
    /// Revive standby `id` with its log intact (now lagging).
    ReviveStandby(usize),
}

/// A failure injection pinned to a sim time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    pub at_micros: Time,
    pub kind: CrashKind,
}

/// One failover scenario: an op budget, the replication shape, and the
/// crash schedule.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Seeds the op script (shared with the chaos harness) and the
    /// replication ship pipes.
    pub seed: u64,
    pub ops: usize,
    pub op_spacing_micros: Time,
    /// Staleness lease on every replica's cache.
    pub lease_micros: Option<u64>,
    pub strategy: StrategyKind,
    /// Proxy replicas in front of the home group.
    pub proxies: usize,
    /// Home-tier shape: mode, standby count, ship faults, lease.
    pub replication: ReplicationConfig,
    /// Invalidation fanout trigger (batched shapes leave pending
    /// notifications to die with a crashing primary).
    pub fanout: FanoutConfig,
    /// Faults on the home → proxy invalidation pipes.
    pub pipe_faults: FaultSpec,
    /// The failure schedule, any order (sorted internally).
    pub crashes: Vec<CrashEvent>,
    /// When set, per-op outcome counters land in a sim-time series
    /// with this bucket width (the failover bench's dip/recovery
    /// curves).
    pub timeseries_bucket_micros: Option<Time>,
}

impl FailoverConfig {
    fn base(seed: u64, ops: usize, mode: ReplicationMode, standbys: usize) -> FailoverConfig {
        let mut replication = ReplicationConfig::group(mode, standbys);
        replication.seed = seed ^ 0x7265_706C; // "repl"
        FailoverConfig {
            seed,
            ops,
            op_spacing_micros: MS,
            lease_micros: Some(250 * MS),
            strategy: StrategyKind::ViewInspection,
            proxies: 2,
            replication,
            fanout: FanoutConfig::immediate(),
            pipe_faults: FaultSpec::none(),
            crashes: Vec::new(),
            timeseries_bucket_micros: None,
        }
    }

    fn horizon(&self) -> Time {
        self.ops as Time * self.op_spacing_micros
    }

    /// Baseline: the same run shape with a single un-replicated home
    /// and no failures — what the failover bench compares against.
    pub fn steady(seed: u64, ops: usize) -> FailoverConfig {
        FailoverConfig::base(seed, ops, ReplicationMode::Async, 0)
    }

    /// Crash the primary mid-update-stream at 40% of the horizon; the
    /// old primary rejoins as a standby at 70%.
    pub fn crash_mid_update(seed: u64, ops: usize) -> FailoverConfig {
        let mut cfg = FailoverConfig::base(seed, ops, ReplicationMode::Async, 2);
        let h = cfg.horizon();
        cfg.crashes = vec![
            CrashEvent {
                at_micros: h * 2 / 5,
                kind: CrashKind::CrashPrimary,
            },
            CrashEvent {
                at_micros: h * 7 / 10,
                kind: CrashKind::RejoinCrashed,
            },
        ];
        cfg
    }

    /// Crash the primary while the fanout buffer holds undelivered
    /// notifications: batched fanout with a horizon-sized interval, so
    /// the pending batch dies with the primary and its epochs surface
    /// as a stream gap the recovery flush absorbs.
    pub fn crash_mid_fanout(seed: u64, ops: usize) -> FailoverConfig {
        let mut cfg = FailoverConfig::crash_mid_update(seed, ops);
        cfg.fanout = FanoutConfig::batched(64, 30 * MS);
        cfg
    }

    /// Two failovers back to back: the promoted primary crashes too.
    pub fn double_failover(seed: u64, ops: usize) -> FailoverConfig {
        let mut cfg = FailoverConfig::base(seed, ops, ReplicationMode::Async, 3);
        let h = cfg.horizon();
        cfg.crashes = vec![
            CrashEvent {
                at_micros: h * 3 / 10,
                kind: CrashKind::CrashPrimary,
            },
            CrashEvent {
                at_micros: h * 3 / 5,
                kind: CrashKind::CrashPrimary,
            },
        ];
        cfg
    }

    /// A lossy, laggy ship stream (drops, delays) so the promoted
    /// standby is genuinely behind the dead primary's tip: the async
    /// lost tail must be exactly accounted.
    pub fn lagging_standby(seed: u64, ops: usize) -> FailoverConfig {
        let mut cfg = FailoverConfig::crash_mid_update(seed, ops);
        cfg.replication.ship_faults = FaultSpec {
            drop_probability: 0.25,
            duplicate_probability: 0.05,
            delay_probability: 0.5,
            max_delay_micros: 25 * MS,
            base_latency_micros: MS,
        };
        cfg
    }

    /// Partition the primary instead of crashing it: once a standby
    /// has been promoted, the zombie writes on its stale term (every
    /// record fenced at every standby), then heals and discards its
    /// divergent branch.
    pub fn zombie(seed: u64, ops: usize) -> FailoverConfig {
        let mut cfg = FailoverConfig::base(seed, ops, ReplicationMode::Async, 2);
        let h = cfg.horizon();
        cfg.crashes = vec![
            CrashEvent {
                at_micros: h * 2 / 5,
                kind: CrashKind::PartitionPrimary,
            },
            CrashEvent {
                at_micros: h * 3 / 5,
                kind: CrashKind::ZombieWrites(5),
            },
            CrashEvent {
                at_micros: h * 3 / 4,
                kind: CrashKind::RejoinZombie,
            },
        ];
        cfg
    }

    /// The same schedule under sync-quorum replication: acks wait for
    /// a majority, and no failover may lose an acked write. Each
    /// scheduled primary crash adds a standby, so a promotable
    /// majority (quorum overlap) outlives the whole schedule.
    pub fn sync(mut self) -> FailoverConfig {
        self.replication.mode = ReplicationMode::SyncQuorum;
        self.replication.standbys += self
            .crashes
            .iter()
            .filter(|e| e.kind == CrashKind::CrashPrimary)
            .count();
        self
    }

    /// The same schedule over a dropping/duplicating/delaying ship
    /// stream. Composed with `zombie`, this races stale-term records
    /// against the new primary's first post-promotion ship — the
    /// ordering a loss-free pipe can never produce.
    pub fn lossy(mut self) -> FailoverConfig {
        self.replication.ship_faults = FaultSpec {
            drop_probability: 0.25,
            duplicate_probability: 0.05,
            delay_probability: 0.5,
            max_delay_micros: 25 * MS,
            base_latency_micros: MS,
        };
        self
    }
}

/// A committed update's surviving snapshot: the master state right
/// after epoch `epoch` applied. Pruned when a failover rolls the
/// stream back past it.
struct EpochSnapshot {
    epoch: u64,
    state: Database,
}

/// What a failover run observed, with every oracle verdict.
#[derive(Debug)]
pub struct FailoverReport {
    pub queries_served: u64,
    pub hits: u64,
    pub degraded_serves: u64,
    pub queries_unavailable: u64,
    /// Updates applied and acked to the client.
    pub updates_acked: u64,
    /// Sync-quorum timeouts: applied to the master but never acked.
    pub updates_applied_unacked: u64,
    pub updates_unavailable: u64,
    pub updates_rejected: u64,
    /// Every promotion the run performed, in order.
    pub failovers: Vec<FailoverRecord>,
    /// Freshness oracle: served results matching no master state
    /// current within the lease window. Must be zero.
    pub stale_beyond_lease: u64,
    pub max_observed_staleness_micros: u64,
    /// Sum of `lost_records` over all failovers (the group's account).
    pub lost_records_total: u64,
    /// Sum of `lost_acked` over all failovers (the group's account).
    pub lost_acked_total: u64,
    /// The external ack ledger's own count of acked epochs above each
    /// promotion barrier. Must equal `lost_acked_total`.
    pub external_lost_acked_total: u64,
    /// True when the group's durability account matched the external
    /// ledger at **every** failover.
    pub ledger_consistent: bool,
    /// True when the final primary state equals the newest surviving
    /// committed snapshot byte-for-byte.
    pub durability_ok: bool,
    /// PR 6 conservation: sent == applied + duplicate + recovered_over
    /// + in_flight for every proxy replica, failovers included.
    pub conservation_balanced: bool,
    /// Stale-term records rejected by standby fencing.
    pub fenced_records: u64,
    /// Writes the partitioned zombie believed it applied.
    pub zombie_writes_applied: u64,
    /// Divergent records discarded when the zombie/crashed primary
    /// rejoined.
    pub divergence_discarded: u64,
    /// Pending fanout notifications that died with a crashing primary.
    pub fanout_lost_on_crash: u64,
    /// Time the tier spent down, summed over failovers (µs).
    pub unavailable_micros_total: u64,
    /// Proxy-side gap recoveries (the `dssp.recovery_flushes` counter).
    pub recovery_flushes: u64,
    /// Failover stamps journaled on the freshness plane.
    pub failover_stamps: usize,
    pub final_epoch: u64,
    pub timeseries: Option<TimeSeries>,
}

/// Drives one failover scenario end to end and audits it.
pub fn run_failover(cfg: &FailoverConfig) -> FailoverReport {
    // The op script, populated master, and bound templates come from
    // the chaos harness so failover runs replay the same deterministic
    // workload the rest of the test plane uses.
    let chaos = ChaosConfig {
        op_spacing_micros: cfg.op_spacing_micros,
        lease_micros: cfg.lease_micros,
        strategy: cfg.strategy,
        ..ChaosConfig::faultless(cfg.seed, cfg.ops)
    };
    let sc = build_scenario(&chaos);
    let seed_state = sc.home.database().clone();

    let app = toystore::toystore();
    let matrix = analysis_matrix(&app);
    let exposures = cfg.strategy.exposures(app.updates.len(), app.queries.len());
    let dssp_cfg = DsspConfig {
        lease_micros: cfg.lease_micros,
        recovery: RecoveryMode::FlushAffected,
        ..DsspConfig::new("failover", exposures, matrix)
    };
    let fleet_cfg = FleetConfig {
        proxies: cfg.proxies,
        routing: RoutingMode::HashByTemplate,
        fanout: cfg.fanout,
        pipe_spec: cfg.pipe_faults.clone(),
        pipe_seed: cfg.seed ^ 0x666F, // "fo"
    };
    let mut fleet = ProxyFleet::replicated(dssp_cfg, sc.home, fleet_cfg, cfg.replication.clone());
    fleet.set_lease_micros(cfg.lease_micros);
    let prov = fleet.enable_provenance();

    let mut events = cfg.crashes.clone();
    events.sort_by_key(|e| e.at_micros);
    let mut next_event = 0usize;

    // Freshness oracle: linear master-state history. A failover's
    // rollback re-appends the surviving state, so validity intervals
    // stay linear even when the stream loses a branch.
    let mut oracle: Vec<(Time, Database)> = vec![(0, seed_state.clone())];
    // Durability oracle: per-epoch snapshots plus the acked ledger.
    let mut snapshots: Vec<EpochSnapshot> = Vec::new();
    let mut acked_epochs: Vec<u64> = Vec::new();

    let mut series = cfg.timeseries_bucket_micros.map(TimeSeries::new);
    let mut report = FailoverReport {
        queries_served: 0,
        hits: 0,
        degraded_serves: 0,
        queries_unavailable: 0,
        updates_acked: 0,
        updates_applied_unacked: 0,
        updates_unavailable: 0,
        updates_rejected: 0,
        failovers: Vec::new(),
        stale_beyond_lease: 0,
        max_observed_staleness_micros: 0,
        lost_records_total: 0,
        lost_acked_total: 0,
        external_lost_acked_total: 0,
        ledger_consistent: true,
        durability_ok: false,
        conservation_balanced: false,
        fenced_records: 0,
        zombie_writes_applied: 0,
        divergence_discarded: 0,
        fanout_lost_on_crash: 0,
        unavailable_micros_total: 0,
        recovery_flushes: 0,
        failover_stamps: 0,
        final_epoch: 0,
        timeseries: None,
    };
    let mut seen_failovers = 0usize;

    // Folds any promotions the group performed since the last check
    // into the report, verifies the ack ledger externally, and rolls
    // the oracles back past the barrier.
    let absorb = |fleet: &mut ProxyFleet,
                  report: &mut FailoverReport,
                  oracle: &mut Vec<(Time, Database)>,
                  snapshots: &mut Vec<EpochSnapshot>,
                  acked_epochs: &mut Vec<u64>,
                  seen: &mut usize,
                  now: Time,
                  series: &mut Option<TimeSeries>| {
        while *seen < fleet.home_failovers().len() {
            let fo = fleet.home_failovers()[*seen];
            *seen += 1;
            let external_lost_acked = acked_epochs
                .iter()
                .filter(|&&e| e > fo.promoted_applied)
                .count() as u64;
            let external_lost = snapshots
                .iter()
                .filter(|s| s.epoch > fo.promoted_applied)
                .count() as u64;
            report.ledger_consistent &= fo.lost_acked == external_lost_acked;
            // `lost_records` counts every WAL epoch in the gap; client
            // updates are a subset (barrier checkpoints carry none).
            report.ledger_consistent &= fo.lost_records >= external_lost;
            report.lost_records_total += fo.lost_records;
            report.lost_acked_total += fo.lost_acked;
            report.external_lost_acked_total += external_lost_acked;
            report.unavailable_micros_total += fo.unavailable_micros;
            snapshots.retain(|s| s.epoch <= fo.promoted_applied);
            acked_epochs.retain(|&e| e <= fo.promoted_applied);
            // The rollback: the surviving state is current again from
            // the promotion instant onward.
            oracle.push((now, fleet.home().database().clone()));
            report.failovers.push(fo);
            tick(series, now, "failover");
        }
    };

    let apply_event = |fleet: &mut ProxyFleet, report: &mut FailoverReport, ev: &CrashEvent| {
        match ev.kind {
            CrashKind::CrashPrimary => fleet.crash_home(),
            CrashKind::PartitionPrimary => fleet.partition_home(),
            CrashKind::ZombieWrites(zombie_writes) => {
                // The zombie serves its divergent branch: each write
                // applies locally and ships on the stale term.
                for k in 0..zombie_writes {
                    let toy = (k as i64 % 50) + 1;
                    let u = Update::bind(0, sc.updates[0].clone(), vec![Value::Int(toy)])
                        .expect("validated template");
                    if fleet
                        .home_group_mut()
                        .zombie_write(ev.at_micros, &u)
                        .is_ok()
                    {
                        report.zombie_writes_applied += 1;
                    }
                }
            }
            CrashKind::RejoinCrashed => {
                report.divergence_discarded += fleet.home_group_mut().rejoin_crashed(ev.at_micros);
            }
            CrashKind::RejoinZombie => {
                report.divergence_discarded += fleet.home_group_mut().rejoin_zombie(ev.at_micros);
            }
            CrashKind::CrashStandby(id) => fleet.home_group_mut().crash_standby(id),
            CrashKind::ReviveStandby(id) => fleet.home_group_mut().revive_standby(id),
        }
    };

    let mut clock: Time = 0;
    for op in sc.script.iter() {
        clock += cfg.op_spacing_micros;
        while next_event < events.len() && events[next_event].at_micros <= clock {
            let ev = events[next_event];
            next_event += 1;
            fleet.set_sim_time_micros(ev.at_micros);
            absorb(
                &mut fleet,
                &mut report,
                &mut oracle,
                &mut snapshots,
                &mut acked_epochs,
                &mut seen_failovers,
                ev.at_micros,
                &mut series,
            );
            apply_event(&mut fleet, &mut report, &ev);
        }
        let now = clock;
        fleet.set_sim_time_micros(now);
        absorb(
            &mut fleet,
            &mut report,
            &mut oracle,
            &mut snapshots,
            &mut acked_epochs,
            &mut seen_failovers,
            now,
            &mut series,
        );
        match op {
            ScriptOp::Query { tid, params } => {
                let q = Query::bind(*tid, sc.queries[*tid].clone(), params.clone())
                    .expect("validated definitions");
                let resp = fleet
                    .execute_query_ha(&q)
                    .expect("toystore queries never error");
                match resp.resp.outcome {
                    FtOutcome::Served {
                        result,
                        hit,
                        degraded,
                    } => {
                        report.queries_served += 1;
                        report.hits += hit as u64;
                        report.degraded_serves += degraded as u64;
                        tick(&mut series, now, "query_served");
                        if degraded {
                            tick(&mut series, now, "degraded_serve");
                        }
                        match staleness_within_lease(&oracle, &q, &result, now, cfg.lease_micros) {
                            Some(staleness) => {
                                report.max_observed_staleness_micros =
                                    report.max_observed_staleness_micros.max(staleness);
                            }
                            None => {
                                report.stale_beyond_lease += 1;
                                tick(&mut series, now, "stale_beyond_lease");
                            }
                        }
                    }
                    FtOutcome::Unavailable => {
                        report.queries_unavailable += 1;
                        tick(&mut series, now, "query_unavailable");
                    }
                }
            }
            ScriptOp::Update { tid, params } => {
                let u = Update::bind(*tid, sc.updates[*tid].clone(), params.clone())
                    .expect("validated definitions");
                match fleet.execute_update_ha(&u) {
                    Ok(resp) => match (&resp.resp.outcome, resp.ack) {
                        (FtUpdateOutcome::Applied { msg, .. }, Some(ack)) => {
                            let epoch = msg.epoch;
                            snapshots.push(EpochSnapshot {
                                epoch,
                                state: fleet.home().database().clone(),
                            });
                            oracle.push((now, fleet.home().database().clone()));
                            if ack.acked {
                                report.updates_acked += 1;
                                acked_epochs.push(epoch);
                                tick(&mut series, now, "update_acked");
                            } else {
                                report.updates_applied_unacked += 1;
                                tick(&mut series, now, "update_applied_unacked");
                            }
                        }
                        _ => {
                            report.updates_unavailable += 1;
                            tick(&mut series, now, "update_unavailable");
                        }
                    },
                    Err(_) => {
                        report.updates_rejected += 1;
                        tick(&mut series, now, "update_rejected");
                    }
                }
            }
        }
    }

    // Tail: if the tier is still down (late crash), keep the clock
    // moving until the lease expires and a standby promotes, so the
    // durability oracle has a surviving primary to audit.
    let mut deadline = clock + 100 * cfg.replication.lease_micros;
    while !fleet.home_group().is_up() && clock < deadline {
        clock += cfg.replication.heartbeat_micros.max(1);
        fleet.set_sim_time_micros(clock);
        absorb(
            &mut fleet,
            &mut report,
            &mut oracle,
            &mut snapshots,
            &mut acked_epochs,
            &mut seen_failovers,
            clock,
            &mut series,
        );
    }
    assert!(
        fleet.home_group().is_up(),
        "tier never recovered within the drain window"
    );
    // Let delayed ship traffic and invalidation pipes settle.
    deadline = clock + 60 * MS;
    while clock < deadline {
        clock += 5 * MS;
        fleet.set_sim_time_micros(clock);
        absorb(
            &mut fleet,
            &mut report,
            &mut oracle,
            &mut snapshots,
            &mut acked_epochs,
            &mut seen_failovers,
            clock,
            &mut series,
        );
    }
    fleet.flush_fanout();
    fleet.drain();

    // ---- final audits ------------------------------------------------
    let expected = snapshots.last().map_or(&seed_state, |s| &s.state);
    report.durability_ok = fleet.home().database() == expected;
    report.final_epoch = fleet.home().epoch();
    report.fenced_records = fleet.home_group().fenced_total();
    report.fanout_lost_on_crash = fleet.fanout_lost_on_crash();
    report.recovery_flushes = fleet
        .rollup_metrics()
        .counters
        .get("dssp.recovery_flushes")
        .copied()
        .unwrap_or(0);
    {
        let log = prov.lock().expect("no concurrent holders after the run");
        report.failover_stamps = log.failovers().len();
        report.conservation_balanced =
            (0..log.replica_count()).all(|r| log.conservation(r, report.final_epoch).balanced());
    }
    report.timeseries = series;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_run_never_fails_over() {
        let r = run_failover(&FailoverConfig::steady(3, 300));
        assert!(r.failovers.is_empty());
        assert_eq!(r.queries_unavailable + r.updates_unavailable, 0);
        assert_eq!(r.stale_beyond_lease, 0);
        assert!(r.durability_ok, "steady state must replay exactly");
        assert!(r.conservation_balanced);
        assert!(r.updates_acked > 0);
    }

    #[test]
    fn crash_mid_update_promotes_and_stays_durable() {
        let r = run_failover(&FailoverConfig::crash_mid_update(7, 600));
        assert_eq!(r.failovers.len(), 1);
        assert!(r.queries_unavailable + r.updates_unavailable > 0);
        assert_eq!(r.stale_beyond_lease, 0);
        assert!(r.ledger_consistent);
        assert!(r.durability_ok);
        assert!(r.conservation_balanced);
        assert!(r.failover_stamps >= 1, "failover journaled on the plane");
    }

    #[test]
    fn sync_quorum_loses_no_acked_write_here_either() {
        let r = run_failover(&FailoverConfig::crash_mid_update(11, 600).sync());
        assert_eq!(r.failovers.len(), 1);
        assert_eq!(r.lost_acked_total, 0, "sync-quorum acked write lost");
        assert_eq!(r.external_lost_acked_total, 0);
        assert!(r.ledger_consistent);
        assert!(r.durability_ok);
        assert_eq!(r.stale_beyond_lease, 0);
    }
}
