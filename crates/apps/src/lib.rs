//! # scs-apps — benchmark Web applications and the end-to-end driver
//!
//! The paper evaluates on three publicly available benchmark applications
//! (§5.1): **auction** (RUBiS, modeled after ebay.com), **bboard**
//! (RUBBoS, inspired by slashdot.org), and **bookstore** (TPC-W, an online
//! book store with Zipf-distributed book popularity after Brynjolfsson et
//! al.). This crate defines Rust equivalents — schemas, the full template
//! sets, request mixes, data population, and parameter generators — plus
//! the paper's running `toystore` examples (Tables 1 and 3) and the
//! simulation driver that connects everything to `scs-netsim`.

pub mod auction;
pub mod bboard;
pub mod bookstore;
pub mod chaos;
pub mod defs;
pub mod driver;
pub mod elastic;
pub mod failover;
pub mod gen;
pub mod overload;
pub mod report;
pub mod runner;
pub mod toystore;
pub mod trace;

pub use chaos::{
    run_chaos, run_classic, ChaosConfig, ChaosReport, FaultCounters, OpOutcome, OutageSpec,
};
pub use defs::{AppDef, Op, ParamSpec, RequestType, Sensitivity, TemplateDef};
pub use driver::{
    analysis_matrix, home_shard_map, CostModel, DsspWorkload, FleetWorkload, ShardedWorkload,
};
pub use elastic::{
    run_elastic, ElasticFleetWorkload, ElasticReport, ElasticRunConfig, MembershipChange,
};
pub use failover::{run_failover, CrashEvent, CrashKind, FailoverConfig, FailoverReport};
pub use gen::{IdSpaces, ParamGen, Zipf, BOOK_POPULARITY_EXPONENT};
pub use overload::{
    goodput_curve, knee_index, run_overload, CurvePoint, LoadProfile, LoadSegment,
    OverloadCounters, OverloadReport, OverloadRunConfig,
};
pub use runner::{
    measure_fleet_scalability, measure_scalability, run_audited_trial, run_fleet_trial,
    run_home_shard_trial, run_trial, sharded_workload, sweep_home_shards, BenchApp, Fidelity,
};
pub use trace::{replay, ReplayReport, Trace, TraceOp};
