//! Workload parameter generation: id spaces, Zipf popularity, word pools.

use crate::defs::ParamSpec;
use rand::rngs::StdRng;
use rand::Rng;
use scs_sqlkit::Value;
use std::collections::HashMap;

/// A Zipf sampler over ranks `1..=n` with exponent `s`:
/// `P(rank = r) ∝ r^-s`.
///
/// The paper re-popularized TPC-W with the Brynjolfsson et al. measurement
/// of amazon.com sales, `log Q = 10.526 − 0.871 log R` — i.e. a Zipf
/// exponent of `0.871` over book sales ranks.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

/// The Brynjolfsson et al. exponent used for the bookstore (§5.1).
pub const BOOK_POPULARITY_EXPONENT: f64 = 0.871;

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `1..=n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Mutable id-space state per table: how many ids were populated, and the
/// next fresh id for inserts.
#[derive(Debug, Clone, Default)]
pub struct IdSpaces {
    tables: HashMap<&'static str, IdSpace>,
}

#[derive(Debug, Clone)]
struct IdSpace {
    initial: i64,
    next_fresh: i64,
}

impl IdSpaces {
    /// Declares a table populated with ids `1..=count`.
    pub fn declare(&mut self, table: &'static str, count: i64) {
        self.tables.insert(
            table,
            IdSpace {
                initial: count,
                next_fresh: count + 1,
            },
        );
    }

    /// Number of initially populated rows.
    pub fn initial(&self, table: &str) -> i64 {
        self.tables.get(table).map_or(0, |s| s.initial)
    }

    /// Current high-water id (initial + inserts so far).
    pub fn high_water(&self, table: &str) -> i64 {
        self.tables.get(table).map_or(0, |s| s.next_fresh - 1)
    }

    fn fresh(&mut self, table: &str) -> i64 {
        let s = self
            .tables
            .get_mut(table)
            .unwrap_or_else(|| panic!("undeclared id space `{table}`"));
        let id = s.next_fresh;
        s.next_fresh += 1;
        id
    }
}

/// Parameter generator: binds [`ParamSpec`]s to concrete values.
pub struct ParamGen {
    pub ids: IdSpaces,
    zipf: HashMap<&'static str, Zipf>,
}

impl ParamGen {
    pub fn new(ids: IdSpaces, zipf_exponent: f64) -> ParamGen {
        let zipf = ids
            .tables
            .iter()
            .map(|(t, s)| (*t, Zipf::new(s.initial.max(1) as usize, zipf_exponent)))
            .collect();
        ParamGen { ids, zipf }
    }

    /// Generates one value for `spec`.
    pub fn bind(&mut self, spec: &ParamSpec, rng: &mut StdRng) -> Value {
        match spec {
            ParamSpec::ExistingId(table) => {
                let hi = self.ids.high_water(table).max(1);
                Value::Int(rng.gen_range(1..=hi))
            }
            ParamSpec::PopularId(table) => {
                let z = self
                    .zipf
                    .get(table)
                    .unwrap_or_else(|| panic!("undeclared id space `{table}`"));
                Value::Int(z.sample(rng) as i64)
            }
            ParamSpec::FreshId(table) => Value::Int(self.ids.fresh(table)),
            ParamSpec::Int(lo, hi) => Value::Int(rng.gen_range(*lo..=*hi)),
            ParamSpec::Word(pool) => Value::str(pool[rng.gen_range(0..pool.len())]),
            ParamSpec::Text(len) => {
                let chars = b"abcdefghijklmnopqrstuvwxyz ";
                let s: String = (0..*len)
                    .map(|_| chars[rng.gen_range(0..chars.len())] as char)
                    .collect();
                Value::Str(s)
            }
            ParamSpec::Keyed { table, pattern } => {
                let z = self
                    .zipf
                    .get(table)
                    .unwrap_or_else(|| panic!("undeclared id space `{table}`"));
                let id = z.sample(rng);
                Value::Str(pattern.replacen("{}", &id.to_string(), 1))
            }
        }
    }

    /// Binds a whole parameter list.
    pub fn bind_all(&mut self, specs: &[ParamSpec], rng: &mut StdRng) -> Vec<Value> {
        specs.iter().map(|s| self.bind(s, rng)).collect()
    }
}

/// Common word pools for the benchmark applications.
pub mod words {
    /// TPC-W book subjects.
    pub const SUBJECTS: &[&str] = &[
        "arts",
        "biographies",
        "business",
        "children",
        "computers",
        "cooking",
        "health",
        "history",
        "home",
        "humor",
        "literature",
        "mystery",
        "non-fiction",
        "parenting",
        "politics",
        "reference",
        "religion",
        "romance",
        "self-help",
        "science-nature",
        "science-fiction",
        "sports",
        "youth",
        "travel",
    ];

    /// Person surnames (authors, users).
    pub const SURNAMES: &[&str] = &[
        "smith", "johnson", "lee", "garcia", "miller", "davis", "lopez", "wilson", "anderson",
        "thomas", "taylor", "moore", "martin", "jackson", "white", "harris",
    ];

    /// Given names.
    pub const GIVEN_NAMES: &[&str] = &[
        "ada", "alan", "grace", "edsger", "barbara", "donald", "john", "leslie", "tony", "robin",
        "ken", "dennis", "niklaus", "frances", "jean", "kathleen",
    ];

    /// Auction / bboard categories.
    pub const CATEGORIES: &[&str] = &[
        "antiques",
        "books",
        "electronics",
        "collectibles",
        "music",
        "photo",
        "sports",
        "toys",
        "travel",
        "jewelry",
    ];

    /// Regions for the auction site.
    pub const REGIONS: &[&str] = &[
        "east", "west", "north", "south", "central", "mountain", "pacific", "atlantic",
    ];

    /// Order / transaction status values.
    pub const STATUSES: &[&str] = &["pending", "processing", "shipped", "denied"];
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, BOOK_POPULARITY_EXPONENT);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) <= 10 {
                head += 1;
            }
        }
        // Top-1% of ranks should draw far more than 1% of samples.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.10, "top-10 ranks drew only {frac:.3} of samples");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let r = z.sample(&mut rng);
            assert!((1..=5).contains(&r));
        }
    }

    #[test]
    fn fresh_ids_are_monotone_and_disjoint_from_initial() {
        let mut ids = IdSpaces::default();
        ids.declare("t", 100);
        let mut g = ParamGen::new(ids, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let a = g.bind(&ParamSpec::FreshId("t"), &mut rng);
        let b = g.bind(&ParamSpec::FreshId("t"), &mut rng);
        assert_eq!(a, Value::Int(101));
        assert_eq!(b, Value::Int(102));
        assert_eq!(g.ids.high_water("t"), 102);
    }

    #[test]
    fn existing_ids_cover_inserts() {
        let mut ids = IdSpaces::default();
        ids.declare("t", 3);
        let mut g = ParamGen::new(ids, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        g.bind(&ParamSpec::FreshId("t"), &mut rng);
        for _ in 0..100 {
            match g.bind(&ParamSpec::ExistingId("t"), &mut rng) {
                Value::Int(v) => assert!((1..=4).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn word_and_text_generation() {
        let mut g = ParamGen::new(IdSpaces::default(), 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let w = g.bind(&ParamSpec::Word(&["x", "y"]), &mut rng);
        assert!(matches!(&w, Value::Str(s) if s == "x" || s == "y"));
        let t = g.bind(&ParamSpec::Text(16), &mut rng);
        assert!(matches!(&t, Value::Str(s) if s.len() == 16));
    }
}
