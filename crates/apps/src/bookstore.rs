//! `bookstore` — a TPC-W-like transactional e-commerce application
//! (§5.1): an online book store with **28 query templates** (the count the
//! paper reports for TPC-W in §5.4, of which its static analysis could
//! encrypt 21 result sets for free) and 12 update templates.
//!
//! Book popularity follows the Brynjolfsson et al. Zipf distribution
//! (`log Q = 10.526 − 0.871 log R`) as in the paper's modified TPC-W; the
//! workload driver samples `ParamSpec::PopularId("item")` accordingly.
//! Credit-card transactions (`cc_xacts`) are the California-SB-1386
//! sensitive data of the evaluation.

use crate::defs::{query_def, update_def, AppDef, Op, ParamSpec, RequestType, Sensitivity};
use crate::gen::words;
use rand::rngs::StdRng;
use rand::Rng;
use scs_core::Attr;
use scs_sqlkit::Value;
use scs_storage::{ColumnType, Database, TableSchema};

/// Row counts used by [`populate`] (per scale unit).
#[derive(Debug, Clone, Copy)]
pub struct BookstoreScale {
    pub items: i64,
    pub customers: i64,
    pub authors: i64,
}

impl Default for BookstoreScale {
    fn default() -> Self {
        BookstoreScale {
            items: 1_000,
            customers: 1_440,
            authors: 250,
        }
    }
}

pub fn schemas() -> Vec<TableSchema> {
    vec![
        TableSchema::builder("country")
            .column("co_id", ColumnType::Int)
            .column("co_name", ColumnType::Str)
            .primary_key(&["co_id"])
            .index("co_name")
            .build()
            .expect("static schema"),
        TableSchema::builder("address")
            .column("addr_id", ColumnType::Int)
            .column("addr_street", ColumnType::Str)
            .column("addr_city", ColumnType::Str)
            .column("addr_zip", ColumnType::Int)
            .column("addr_co_id", ColumnType::Int)
            .primary_key(&["addr_id"])
            .foreign_key(&["addr_co_id"], "country", &["co_id"])
            .build()
            .expect("static schema"),
        TableSchema::builder("customer")
            .column("c_id", ColumnType::Int)
            .column("c_uname", ColumnType::Str)
            .column("c_passwd", ColumnType::Str)
            .column("c_fname", ColumnType::Str)
            .column("c_lname", ColumnType::Str)
            .column("c_email", ColumnType::Str)
            .column("c_since", ColumnType::Int)
            .column("c_discount", ColumnType::Int)
            .column("c_addr_id", ColumnType::Int)
            .primary_key(&["c_id"])
            .foreign_key(&["c_addr_id"], "address", &["addr_id"])
            .index("c_uname")
            .index("c_email")
            .build()
            .expect("static schema"),
        TableSchema::builder("author")
            .column("a_id", ColumnType::Int)
            .column("a_fname", ColumnType::Str)
            .column("a_lname", ColumnType::Str)
            .primary_key(&["a_id"])
            .index("a_lname")
            .build()
            .expect("static schema"),
        TableSchema::builder("item")
            .column("i_id", ColumnType::Int)
            .column("i_title", ColumnType::Str)
            .column("i_a_id", ColumnType::Int)
            .column("i_subject", ColumnType::Str)
            .column("i_pub_date", ColumnType::Int)
            .column("i_cost", ColumnType::Real)
            .column("i_stock", ColumnType::Int)
            .column("i_related", ColumnType::Int)
            .primary_key(&["i_id"])
            .foreign_key(&["i_a_id"], "author", &["a_id"])
            .index("i_subject")
            .index("i_title")
            .build()
            .expect("static schema"),
        TableSchema::builder("orders")
            .column("o_id", ColumnType::Int)
            .column("o_c_id", ColumnType::Int)
            .column("o_date", ColumnType::Int)
            .column("o_total", ColumnType::Real)
            .column("o_status", ColumnType::Str)
            .primary_key(&["o_id"])
            .foreign_key(&["o_c_id"], "customer", &["c_id"])
            .build()
            .expect("static schema"),
        TableSchema::builder("order_line")
            .column("ol_id", ColumnType::Int)
            .column("ol_o_id", ColumnType::Int)
            .column("ol_i_id", ColumnType::Int)
            .column("ol_qty", ColumnType::Int)
            .column("ol_discount", ColumnType::Int)
            .primary_key(&["ol_id"])
            .foreign_key(&["ol_o_id"], "orders", &["o_id"])
            .foreign_key(&["ol_i_id"], "item", &["i_id"])
            .build()
            .expect("static schema"),
        TableSchema::builder("cc_xacts")
            .column("cx_id", ColumnType::Int)
            .column("cx_o_id", ColumnType::Int)
            .column("cx_type", ColumnType::Str)
            .column("cx_num", ColumnType::Str)
            .column("cx_name", ColumnType::Str)
            .column("cx_expire", ColumnType::Int)
            .column("cx_amt", ColumnType::Real)
            .primary_key(&["cx_id"])
            .foreign_key(&["cx_o_id"], "orders", &["o_id"])
            .index("cx_o_id")
            .build()
            .expect("static schema"),
        TableSchema::builder("shopping_cart")
            .column("sc_id", ColumnType::Int)
            .column("sc_time", ColumnType::Int)
            .column("sc_total", ColumnType::Real)
            .primary_key(&["sc_id"])
            .build()
            .expect("static schema"),
        TableSchema::builder("shopping_cart_line")
            .column("scl_id", ColumnType::Int)
            .column("scl_sc_id", ColumnType::Int)
            .column("scl_i_id", ColumnType::Int)
            .column("scl_qty", ColumnType::Int)
            .primary_key(&["scl_id"])
            .foreign_key(&["scl_sc_id"], "shopping_cart", &["sc_id"])
            .foreign_key(&["scl_i_id"], "item", &["i_id"])
            .index("scl_sc_id")
            .build()
            .expect("static schema"),
    ]
}

/// The 28 query templates.
fn queries() -> Vec<crate::defs::TemplateDef<scs_sqlkit::QueryTemplate>> {
    use ParamSpec::*;
    use Sensitivity::*;
    vec![
        // 0
        query_def(
            "getName",
            "SELECT c_fname, c_lname FROM customer WHERE c_id = ?",
            vec![PopularId("customer")],
            Moderate,
        ),
        // 1
        query_def(
            "getBook",
            "SELECT i_title, i_cost, i_stock, i_a_id, i_subject FROM item WHERE i_id = ?",
            vec![PopularId("item")],
            Low,
        ),
        // 2
        query_def(
            "getCustomer",
            "SELECT c_id, c_uname, c_passwd, c_discount, c_addr_id FROM customer \
             WHERE c_uname = ?",
            vec![Keyed {
                table: "customer",
                pattern: "user{}",
            }],
            High,
        ),
        // 3
        query_def(
            "doSubjectSearch",
            "SELECT i_id, i_title FROM item WHERE i_subject = ? ORDER BY i_title LIMIT 50",
            vec![Word(words::SUBJECTS)],
            Low,
        ),
        // 4
        query_def(
            "doTitleSearch",
            "SELECT i_id, i_title, i_cost FROM item WHERE i_title = ? LIMIT 50",
            vec![Keyed {
                table: "item",
                pattern: "book title {}",
            }],
            Low,
        ),
        // 5
        query_def(
            "doAuthorSearch",
            "SELECT item.i_id, item.i_title FROM item, author \
             WHERE item.i_a_id = author.a_id AND author.a_lname = ? LIMIT 50",
            vec![Word(words::SURNAMES)],
            Low,
        ),
        // 6
        query_def(
            "getNewProducts",
            "SELECT i_id, i_title, i_pub_date FROM item WHERE i_subject = ? \
             ORDER BY i_pub_date DESC LIMIT 50",
            vec![Word(words::SUBJECTS)],
            Low,
        ),
        // 7 — aggregate/group-by template (§5.1: 7–11% of templates)
        query_def(
            "getBestSellers",
            "SELECT order_line.ol_i_id, SUM(order_line.ol_qty) FROM order_line, orders \
             WHERE order_line.ol_o_id = orders.o_id AND orders.o_date >= ? \
             GROUP BY order_line.ol_i_id",
            vec![Int(0, 7)],
            Low,
        ),
        // 8
        query_def(
            "getRelated",
            "SELECT i_related FROM item WHERE i_id = ?",
            vec![PopularId("item")],
            Moderate,
        ),
        // 9
        query_def(
            "getMostRecentOrder",
            "SELECT o_id, o_date, o_total, o_status FROM orders WHERE o_c_id = ? \
             ORDER BY o_date DESC LIMIT 1",
            vec![PopularId("customer")],
            Moderate,
        ),
        // 10
        query_def(
            "getOrderLines",
            "SELECT ol_i_id, ol_qty, ol_discount FROM order_line WHERE ol_o_id = ?",
            vec![PopularId("orders")],
            Moderate,
        ),
        // 11 — touches credit-card data
        query_def(
            "getOrderPayment",
            "SELECT orders.o_status, cc_xacts.cx_type, cc_xacts.cx_amt \
             FROM orders, cc_xacts \
             WHERE orders.o_id = cc_xacts.cx_o_id AND orders.o_id = ?",
            vec![PopularId("orders")],
            High,
        ),
        // 12
        query_def(
            "getCart",
            "SELECT sc_time, sc_total FROM shopping_cart WHERE sc_id = ?",
            vec![PopularId("shopping_cart")],
            Moderate,
        ),
        // 13
        query_def(
            "getCartLines",
            "SELECT scl_i_id, scl_qty FROM shopping_cart_line WHERE scl_sc_id = ?",
            vec![PopularId("shopping_cart")],
            Moderate,
        ),
        // 14
        query_def(
            "getCartLine",
            "SELECT scl_qty FROM shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?",
            vec![ExistingId("shopping_cart"), PopularId("item")],
            Moderate,
        ),
        // 15
        query_def(
            "getStock",
            "SELECT i_stock FROM item WHERE i_id = ?",
            vec![PopularId("item")],
            Moderate,
        ),
        // 16
        query_def(
            "getAddress",
            "SELECT addr_street, addr_city, addr_zip, addr_co_id FROM address \
             WHERE addr_id = ?",
            vec![ExistingId("address")],
            Moderate,
        ),
        // 17
        query_def(
            "getCountry",
            "SELECT co_name FROM country WHERE co_id = ?",
            vec![ExistingId("country")],
            Low,
        ),
        // 18
        query_def(
            "getCountryByName",
            "SELECT co_id FROM country WHERE co_name = ?",
            vec![Word(words::REGIONS)],
            Low,
        ),
        // 19
        query_def(
            "getCustomerAddress",
            "SELECT address.addr_street, address.addr_city, address.addr_zip \
             FROM customer, address \
             WHERE customer.c_addr_id = address.addr_id AND customer.c_id = ?",
            vec![PopularId("customer")],
            Moderate,
        ),
        // 20
        query_def(
            "getItemsBySubjectPrice",
            "SELECT i_id, i_title, i_cost FROM item WHERE i_subject = ? AND i_cost <= ? \
             ORDER BY i_cost LIMIT 50",
            vec![Word(words::SUBJECTS), Int(5, 100)],
            Low,
        ),
        // 21
        query_def(
            "getAuthor",
            "SELECT a_fname, a_lname FROM author WHERE a_id = ?",
            vec![ExistingId("author")],
            Low,
        ),
        // 22
        query_def(
            "getAuthorOfBook",
            "SELECT author.a_fname, author.a_lname FROM author, item \
             WHERE author.a_id = item.i_a_id AND item.i_id = ?",
            vec![PopularId("item")],
            Low,
        ),
        // 23 — aggregate
        query_def(
            "countCustomerOrders",
            "SELECT COUNT(*) FROM orders WHERE o_c_id = ?",
            vec![PopularId("customer")],
            Moderate,
        ),
        // 24 — aggregate
        query_def(
            "getLargestOrder",
            "SELECT MAX(o_total) FROM orders WHERE o_c_id = ?",
            vec![PopularId("customer")],
            Moderate,
        ),
        // 25
        query_def(
            "getCustomerByEmail",
            "SELECT c_id, c_uname, c_fname FROM customer WHERE c_email = ?",
            vec![Keyed {
                table: "customer",
                pattern: "user{}@example.org",
            }],
            High,
        ),
        // 26
        query_def(
            "getNewestOrders",
            "SELECT o_id, o_c_id, o_total FROM orders ORDER BY o_date DESC LIMIT 10",
            vec![],
            Moderate,
        ),
        // 27
        query_def(
            "getCheapestInStock",
            "SELECT i_id, i_title, i_cost FROM item WHERE i_stock >= ? \
             ORDER BY i_cost LIMIT 20",
            vec![Int(1, 10)],
            Low,
        ),
    ]
}

/// The 12 update templates.
fn updates() -> Vec<crate::defs::TemplateDef<scs_sqlkit::UpdateTemplate>> {
    use ParamSpec::*;
    use Sensitivity::*;
    vec![
        // 0
        update_def(
            "createAddress",
            "INSERT INTO address (addr_id, addr_street, addr_city, addr_zip, addr_co_id) \
             VALUES (?, ?, ?, ?, ?)",
            vec![
                FreshId("address"),
                Text(20),
                Text(10),
                Int(10_000, 99_999),
                ExistingId("country"),
            ],
            Moderate,
        ),
        // 1
        update_def(
            "createCustomer",
            "INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname, c_email, \
             c_since, c_discount, c_addr_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("customer"),
                Text(10),
                Text(12),
                Word(words::GIVEN_NAMES),
                Word(words::SURNAMES),
                Text(14),
                Int(0, 1_000),
                Int(0, 30),
                ExistingId("address"),
            ],
            High,
        ),
        // 2
        update_def(
            "createOrder",
            "INSERT INTO orders (o_id, o_c_id, o_date, o_total, o_status) \
             VALUES (?, ?, ?, ?, ?)",
            vec![
                FreshId("orders"),
                ExistingId("customer"),
                Int(900, 1_100),
                Int(10, 500),
                Word(words::STATUSES),
            ],
            Moderate,
        ),
        // 3
        update_def(
            "createOrderLine",
            "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount) \
             VALUES (?, ?, ?, ?, ?)",
            vec![
                FreshId("order_line"),
                ExistingId("orders"),
                PopularId("item"),
                Int(1, 5),
                Int(0, 30),
            ],
            Moderate,
        ),
        // 4 — the credit-card transaction (compulsory encryption)
        update_def(
            "createCcXact",
            "INSERT INTO cc_xacts (cx_id, cx_o_id, cx_type, cx_num, cx_name, cx_expire, \
             cx_amt) VALUES (?, ?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("cc_xacts"),
                ExistingId("orders"),
                Text(5),
                Text(16),
                Word(words::SURNAMES),
                Int(2_026, 2_032),
                Int(10, 500),
            ],
            High,
        ),
        // 5
        update_def(
            "createCart",
            "INSERT INTO shopping_cart (sc_id, sc_time, sc_total) VALUES (?, ?, ?)",
            vec![FreshId("shopping_cart"), Int(0, 1_000), Int(0, 0)],
            Moderate,
        ),
        // 6
        update_def(
            "addCartLine",
            "INSERT INTO shopping_cart_line (scl_id, scl_sc_id, scl_i_id, scl_qty) \
             VALUES (?, ?, ?, ?)",
            vec![
                FreshId("shopping_cart_line"),
                ExistingId("shopping_cart"),
                PopularId("item"),
                Int(1, 5),
            ],
            Moderate,
        ),
        // 7
        update_def(
            "updateCartTotal",
            "UPDATE shopping_cart SET sc_total = ?, sc_time = ? WHERE sc_id = ?",
            vec![Int(0, 800), Int(0, 2_000), ExistingId("shopping_cart")],
            Moderate,
        ),
        // 8
        update_def(
            "updateCartLineQty",
            "UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_id = ?",
            vec![Int(1, 9), ExistingId("shopping_cart_line")],
            Moderate,
        ),
        // 9
        update_def(
            "decrementStock",
            "UPDATE item SET i_stock = ? WHERE i_id = ?",
            vec![Int(0, 80), PopularId("item")],
            Moderate,
        ),
        // 10
        update_def(
            "clearCart",
            "DELETE FROM shopping_cart_line WHERE scl_sc_id = ?",
            vec![ExistingId("shopping_cart")],
            Moderate,
        ),
        // 11
        update_def(
            "updateOrderStatus",
            "UPDATE orders SET o_status = ? WHERE o_id = ?",
            vec![Word(words::STATUSES), ExistingId("orders")],
            Moderate,
        ),
    ]
}

/// TPC-W-shaped request mix (the WIPS browsing mix: ~80% browse / 20%
/// order interactions).
fn requests() -> Vec<RequestType> {
    use Op::*;
    vec![
        RequestType {
            name: "home",
            weight: 24,
            ops: vec![Query(0), Query(6)],
        },
        RequestType {
            name: "new-products",
            weight: 14,
            ops: vec![Query(6), Query(1)],
        },
        RequestType {
            name: "best-sellers",
            weight: 14,
            ops: vec![Query(7), Query(1)],
        },
        RequestType {
            name: "product-detail",
            weight: 26,
            ops: vec![Query(1), Query(22), Query(8)],
        },
        RequestType {
            name: "search-subject",
            weight: 8,
            ops: vec![Query(3), Query(20)],
        },
        RequestType {
            name: "search-author",
            weight: 6,
            ops: vec![Query(5), Query(21)],
        },
        RequestType {
            name: "search-title",
            weight: 6,
            ops: vec![Query(4), Query(27)],
        },
        RequestType {
            name: "shopping-cart",
            weight: 4,
            ops: vec![Update(5), Update(6), Query(13), Query(12), Update(7)],
        },
        RequestType {
            name: "cart-update",
            weight: 2,
            ops: vec![Query(13), Update(8), Update(7), Query(12)],
        },
        RequestType {
            name: "customer-registration",
            weight: 1,
            ops: vec![Query(2), Update(0), Update(1)],
        },
        RequestType {
            name: "buy-request",
            weight: 3,
            ops: vec![Query(2), Query(19), Query(12), Query(13)],
        },
        RequestType {
            name: "buy-confirm",
            weight: 2,
            ops: vec![
                Update(2),
                Update(3),
                Update(3),
                Update(4),
                Update(9),
                Update(10),
                Query(9),
            ],
        },
        RequestType {
            name: "order-inquiry",
            weight: 5,
            ops: vec![Query(2), Query(9), Query(10), Query(11)],
        },
        RequestType {
            name: "account",
            weight: 2,
            ops: vec![Query(25), Query(23), Query(24), Query(16), Query(17)],
        },
        RequestType {
            name: "admin",
            weight: 1,
            ops: vec![Query(1), Query(15), Update(9)],
        },
        RequestType {
            name: "order-board",
            weight: 1,
            ops: vec![Query(26), Query(18)],
        },
    ]
}

/// The complete bookstore application definition.
pub fn bookstore() -> AppDef {
    AppDef {
        name: "bookstore",
        schemas: schemas(),
        queries: queries(),
        updates: updates(),
        requests: requests(),
        // California SB 1386: credit-card data must be encrypted, plus the
        // account credentials that unlock it.
        sensitive_attrs: vec![
            Attr::new("cc_xacts", "cx_id"),
            Attr::new("cc_xacts", "cx_o_id"),
            Attr::new("cc_xacts", "cx_type"),
            Attr::new("cc_xacts", "cx_num"),
            Attr::new("cc_xacts", "cx_name"),
            Attr::new("cc_xacts", "cx_expire"),
            Attr::new("cc_xacts", "cx_amt"),
            Attr::new("customer", "c_passwd"),
        ],
    }
}

/// Populates the bookstore; every table's ids are `1..=n`.
pub fn populate(db: &mut Database, scale: BookstoreScale, rng: &mut StdRng) {
    let countries = words::REGIONS.len() as i64;
    for id in 1..=countries {
        db.insert_row(
            "country",
            vec![
                Value::Int(id),
                Value::str(words::REGIONS[(id - 1) as usize]),
            ],
        )
        .expect("fresh id");
    }
    let addresses = scale.customers * 2;
    for id in 1..=addresses {
        db.insert_row(
            "address",
            vec![
                Value::Int(id),
                Value::Str(format!("{id} main st")),
                Value::Str(format!("city-{}", id % 97)),
                Value::Int(10_000 + (id * 31) % 90_000),
                Value::Int(1 + (id % countries)),
            ],
        )
        .expect("fresh id");
    }
    for id in 1..=scale.customers {
        db.insert_row(
            "customer",
            vec![
                Value::Int(id),
                Value::Str(format!("user{id}")),
                Value::Str(format!("pw-{id}")),
                Value::str(words::GIVEN_NAMES[(id as usize) % words::GIVEN_NAMES.len()]),
                Value::str(words::SURNAMES[(id as usize) % words::SURNAMES.len()]),
                Value::Str(format!("user{id}@example.org")),
                Value::Int(rng.gen_range(0..1_000)),
                Value::Int(rng.gen_range(0..30)),
                Value::Int(1 + (id % addresses)),
            ],
        )
        .expect("fresh id");
    }
    for id in 1..=scale.authors {
        db.insert_row(
            "author",
            vec![
                Value::Int(id),
                Value::str(words::GIVEN_NAMES[(id as usize) % words::GIVEN_NAMES.len()]),
                Value::str(words::SURNAMES[(id as usize) % words::SURNAMES.len()]),
            ],
        )
        .expect("fresh id");
    }
    for id in 1..=scale.items {
        db.insert_row(
            "item",
            vec![
                Value::Int(id),
                Value::Str(format!("book title {id}")),
                Value::Int(1 + (id % scale.authors)),
                Value::str(words::SUBJECTS[(id as usize) % words::SUBJECTS.len()]),
                Value::Int(rng.gen_range(0..1_000)),
                Value::real(rng.gen_range(500..10_000) as f64 / 100.0),
                Value::Int(rng.gen_range(0..100)),
                Value::Int(1 + (id % scale.items)),
            ],
        )
        .expect("fresh id");
    }
    let orders = (scale.customers * 9) / 10;
    for id in 1..=orders {
        db.insert_row(
            "orders",
            vec![
                Value::Int(id),
                Value::Int(1 + (id % scale.customers)),
                Value::Int(rng.gen_range(0..1_000)),
                Value::real(rng.gen_range(1_000..50_000) as f64 / 100.0),
                Value::str(words::STATUSES[(id as usize) % words::STATUSES.len()]),
            ],
        )
        .expect("fresh id");
    }
    let order_lines = orders * 3;
    for id in 1..=order_lines {
        db.insert_row(
            "order_line",
            vec![
                Value::Int(id),
                Value::Int(1 + (id % orders)),
                Value::Int(1 + (id * 7) % scale.items),
                Value::Int(rng.gen_range(1..5)),
                Value::Int(rng.gen_range(0..30)),
            ],
        )
        .expect("fresh id");
    }
    for id in 1..=orders {
        db.insert_row(
            "cc_xacts",
            vec![
                Value::Int(id),
                Value::Int(id),
                Value::str("VISA"),
                Value::Str(format!("4111{id:012}")),
                Value::str(words::SURNAMES[(id as usize) % words::SURNAMES.len()]),
                Value::Int(2_027),
                Value::real(rng.gen_range(1_000..50_000) as f64 / 100.0),
            ],
        )
        .expect("fresh id");
    }
    let carts = scale.customers / 10;
    for id in 1..=carts {
        db.insert_row(
            "shopping_cart",
            vec![
                Value::Int(id),
                Value::Int(rng.gen_range(0..1_000)),
                Value::real(0.0),
            ],
        )
        .expect("fresh id");
    }
    let cart_lines = carts * 2;
    for id in 1..=cart_lines {
        db.insert_row(
            "shopping_cart_line",
            vec![
                Value::Int(id),
                Value::Int(1 + (id % carts)),
                Value::Int(1 + (id * 11) % scale.items),
                Value::Int(rng.gen_range(1..5)),
            ],
        )
        .expect("fresh id");
    }
}

/// The initial id-space sizes matching [`populate`], for the workload
/// generators.
pub fn id_spaces(scale: BookstoreScale) -> crate::gen::IdSpaces {
    let mut ids = crate::gen::IdSpaces::default();
    let orders = (scale.customers * 9) / 10;
    let carts = scale.customers / 10;
    ids.declare("country", words::REGIONS.len() as i64);
    ids.declare("address", scale.customers * 2);
    ids.declare("customer", scale.customers);
    ids.declare("author", scale.authors);
    ids.declare("item", scale.items);
    ids.declare("orders", orders);
    ids.declare("order_line", orders * 3);
    ids.declare("cc_xacts", orders);
    ids.declare("shopping_cart", carts);
    ids.declare("shopping_cart_line", carts * 2);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn has_28_query_templates() {
        // §5.4: "our static analysis identifies 21 out of the 28 query
        // templates associated with the bookstore application".
        assert_eq!(bookstore().queries.len(), 28);
        assert_eq!(bookstore().updates.len(), 12);
    }

    #[test]
    fn validates() {
        bookstore().validate().unwrap();
    }

    #[test]
    fn aggregate_fraction_matches_paper() {
        // §5.1: between 7% and 11% of query templates have aggregation or
        // group-by constructs.
        let app = bookstore();
        let aggs = app
            .queries
            .iter()
            .filter(|q| q.template.has_aggregates() || !q.template.group_by.is_empty())
            .count();
        let frac = aggs as f64 / app.queries.len() as f64;
        assert!((0.07..=0.12).contains(&frac), "aggregate fraction {frac}");
    }

    #[test]
    fn populate_fills_all_tables() {
        let app = bookstore();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let scale = BookstoreScale {
            items: 100,
            customers: 60,
            authors: 20,
        };
        let mut rng = StdRng::seed_from_u64(5);
        populate(&mut db, scale, &mut rng);
        for t in db.table_names().map(String::from).collect::<Vec<_>>() {
            assert!(!db.table(&t).unwrap().is_empty(), "table {t} is empty");
        }
        let ids = id_spaces(scale);
        assert_eq!(ids.initial("item"), 100);
        assert_eq!(db.table("item").unwrap().len(), 100);
        assert_eq!(
            db.table("orders").unwrap().len() as i64,
            ids.initial("orders")
        );
    }

    #[test]
    fn every_query_executes_on_populated_db() {
        use scs_sqlkit::Query;
        let app = bookstore();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let scale = BookstoreScale {
            items: 50,
            customers: 30,
            authors: 10,
        };
        let mut rng = StdRng::seed_from_u64(6);
        populate(&mut db, scale, &mut rng);
        let mut gen = crate::gen::ParamGen::new(id_spaces(scale), 0.871);
        for (tid, qd) in app.queries.iter().enumerate() {
            let params = gen.bind_all(&qd.params, &mut rng);
            let q = Query::bind(tid, qd.template.clone(), params).unwrap();
            db.execute(&q)
                .unwrap_or_else(|e| panic!("query `{}` fails: {e}", qd.name));
        }
    }

    #[test]
    fn every_update_executes_on_populated_db() {
        use scs_sqlkit::Update;
        let app = bookstore();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let scale = BookstoreScale {
            items: 50,
            customers: 30,
            authors: 10,
        };
        let mut rng = StdRng::seed_from_u64(7);
        populate(&mut db, scale, &mut rng);
        let mut gen = crate::gen::ParamGen::new(id_spaces(scale), 0.871);
        for (tid, ud) in app.updates.iter().enumerate() {
            let params = gen.bind_all(&ud.params, &mut rng);
            let u = Update::bind(tid, ud.template.clone(), params).unwrap();
            db.apply(&u)
                .unwrap_or_else(|e| panic!("update `{}` fails: {e}", ud.name));
        }
    }
}
