//! Overload harness: drives the toystore application through the DSSP's
//! overload-guarded pathways under scripted load spikes and measures what
//! the paper's knee looks like *past* the knee — offered load vs goodput.
//!
//! The model is deliberately small: an open-loop arrival process (the
//! chaos script replayed with a [`LoadProfile`] compressing inter-op
//! gaps), a single bounded [`ServiceCenter`] standing in for the home
//! server's CPU, and the proxy's admission/breaker/brownout machinery fed
//! the center's live queue state. A *completion* is timely when its
//! queueing delay plus retry backoff meets the deadline; **goodput** is
//! timely completions per second. An unprotected run (no
//! [`OverloadConfig`], unbounded queue) lets the backlog grow without
//! bound, so response times — and goodput — collapse past the knee; the
//! protected run sheds at arrival and keeps the goodput curve flat.
//!
//! Every served result is still checked against the chaos oracle:
//! degradation may *reject* work, but it must never serve a result stale
//! beyond the lease.

use crate::chaos::{
    build_scenario, next_arrival, staleness_within_lease, tick, ChaosConfig, ScriptOp,
};
use scs_dssp::{
    OverloadConfig, OverloadOutcome, OverloadUpdateOutcome, QueueState, RecoveryMode, RetryPolicy,
    StrategyKind,
};
use scs_netsim::{FaultSpec, QueueCap, ServiceCenter, Time, MS, SEC};
use scs_sqlkit::{Query, Update};
use scs_telemetry::{LogHistogram, TimeSeries, TimeSeriesSink};

/// One piece of a scripted arrival-rate profile. Multipliers scale the
/// base arrival rate: 1.0 is the baseline, 4.0 packs four times the
/// arrivals into the same wall of sim time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadSegment {
    /// Constant multiplier over `[start, end)`.
    Step {
        start: Time,
        end: Time,
        multiplier: f64,
    },
    /// Linear interpolation from `from` to `to` over `[start, end)`.
    Ramp {
        start: Time,
        end: Time,
        from: f64,
        to: f64,
    },
}

/// A piecewise arrival-rate multiplier over sim time. Outside every
/// segment the multiplier is 1.0; where segments overlap, the last one
/// listed wins (so a profile can layer a spike on a ramp).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadProfile {
    pub segments: Vec<LoadSegment>,
}

impl LoadProfile {
    /// The baseline profile: multiplier 1.0 everywhere.
    pub fn flat() -> LoadProfile {
        LoadProfile::default()
    }

    /// A constant multiplier over the whole run.
    pub fn constant(multiplier: f64) -> LoadProfile {
        LoadProfile {
            segments: vec![LoadSegment::Step {
                start: 0,
                end: Time::MAX,
                multiplier,
            }],
        }
    }

    /// A step spike: `multiplier`× the base rate over `[start, end)`.
    pub fn spike(start: Time, end: Time, multiplier: f64) -> LoadProfile {
        LoadProfile {
            segments: vec![LoadSegment::Step {
                start,
                end,
                multiplier,
            }],
        }
    }

    /// The arrival-rate multiplier at instant `t`.
    pub fn multiplier_at(&self, t: Time) -> f64 {
        let mut m = 1.0;
        for seg in &self.segments {
            match *seg {
                LoadSegment::Step {
                    start,
                    end,
                    multiplier,
                } if start <= t && t < end => m = multiplier,
                LoadSegment::Ramp {
                    start,
                    end,
                    from,
                    to,
                } if start <= t && t < end => {
                    let frac = (t - start) as f64 / (end - start).max(1) as f64;
                    m = from + (to - from) * frac;
                }
                _ => {}
            }
        }
        m
    }
}

/// One overload scenario: arrivals, the home-queue model, the deadline,
/// and the protection (or its absence).
#[derive(Debug, Clone)]
pub struct OverloadRunConfig {
    pub seed: u64,
    pub ops: usize,
    /// Baseline inter-arrival gap (µs); the [`LoadProfile`] divides it.
    pub op_spacing_micros: Time,
    pub lease_micros: Option<u64>,
    pub strategy: StrategyKind,
    pub load: LoadProfile,
    /// A completion counts toward goodput only when its queueing delay
    /// plus retry backoff is at most this (µs).
    pub deadline_micros: Time,
    /// Home-server service demand per miss/update round trip (µs).
    pub home_service_micros: Time,
    /// Bound on the home service queue (the backstop behind admission).
    pub queue_cap: QueueCap,
    /// Admission/breaker/brownout settings; `None` = unprotected run.
    pub protection: Option<OverloadConfig>,
    pub retry: RetryPolicy,
    /// Scripted link outages, to exercise the breaker during the run.
    pub scripted_outages: Option<Vec<(Time, Time)>>,
    pub timeseries_bucket_micros: Option<Time>,
}

impl OverloadRunConfig {
    /// The acceptance scenario: a 4× step spike over `[1 s, 2 s)` on a
    /// system whose baseline runs well below the knee, plus one scripted
    /// link outage after the spike so the breaker's full
    /// open → half-open → close cycle lands in the exported curves.
    pub fn spike_demo(seed: u64) -> OverloadRunConfig {
        OverloadRunConfig {
            seed,
            ops: 6_000,
            op_spacing_micros: MS,
            lease_micros: Some(200 * MS),
            strategy: StrategyKind::ViewInspection,
            load: LoadProfile::spike(SEC, 2 * SEC, 4.0),
            deadline_micros: 25 * MS,
            home_service_micros: MS,
            queue_cap: QueueCap::max_wait(30 * MS),
            protection: Some({
                let mut p = OverloadConfig::default();
                p.admission.deadline_micros = 20 * MS;
                p.admission.service_estimate_micros = MS;
                p.breaker.failure_threshold = 3;
                p.breaker.open_micros = 150 * MS;
                p.brownout.window_micros = 100 * MS;
                p.brownout.shed_ratio_threshold = 0.5;
                p.brownout.min_offered = 20;
                p
            }),
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff_micros: 5 * MS,
                max_backoff_micros: 20 * MS,
                timeout_micros: 50 * MS,
                jitter: true,
            },
            scripted_outages: Some(vec![(2 * SEC + 400 * MS, 2 * SEC + 700 * MS)]),
            timeseries_bucket_micros: Some(100 * MS),
        }
    }

    /// A short flat-load run for goodput-curve sweeps (the per-point
    /// config; [`goodput_curve`] substitutes the multiplier). The lease
    /// is deliberately short so most queries miss: the home queue is
    /// then the binding resource and the curve shows the textbook
    /// saturation knee, instead of being averaged away by cache hits
    /// that cost nothing at any offered load.
    pub fn sweep_point(seed: u64) -> OverloadRunConfig {
        OverloadRunConfig {
            ops: 2_500,
            lease_micros: Some(5 * MS),
            load: LoadProfile::flat(),
            scripted_outages: None,
            timeseries_bucket_micros: None,
            ..OverloadRunConfig::spike_demo(seed)
        }
    }

    /// Strips all protection: no admission, no breaker, no brownout, and
    /// an unbounded home queue. The baseline the goodput curve collapses
    /// against.
    pub fn unprotected(mut self) -> OverloadRunConfig {
        self.protection = None;
        self.queue_cap = QueueCap::unbounded();
        self
    }
}

/// The proxy's overload counters, read back from its registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadCounters {
    pub shed_admission: u64,
    pub shed_breaker_open: u64,
    pub shed_brownout: u64,
    pub shed_queue_full: u64,
    pub breaker_opens: u64,
    pub breaker_half_opens: u64,
    pub breaker_closes: u64,
    pub brownout_entries: u64,
    pub brownout_exits: u64,
    pub brownout_serves: u64,
    pub home_retries: u64,
    pub home_unavailable: u64,
}

impl OverloadCounters {
    pub fn from_dssp(dssp: &scs_dssp::Dssp) -> OverloadCounters {
        let reg = dssp.registry();
        OverloadCounters {
            shed_admission: reg.counter_value("dssp.shed_admission"),
            shed_breaker_open: reg.counter_value("dssp.shed_breaker_open"),
            shed_brownout: reg.counter_value("dssp.shed_brownout"),
            shed_queue_full: reg.counter_value("dssp.shed_queue_full"),
            breaker_opens: reg.counter_value("dssp.breaker_opens"),
            breaker_half_opens: reg.counter_value("dssp.breaker_half_opens"),
            breaker_closes: reg.counter_value("dssp.breaker_closes"),
            brownout_entries: reg.counter_value("dssp.brownout_entries"),
            brownout_exits: reg.counter_value("dssp.brownout_exits"),
            brownout_serves: reg.counter_value("dssp.brownout_serves"),
            home_retries: reg.counter_value("dssp.home_retries"),
            home_unavailable: reg.counter_value("dssp.home_unavailable"),
        }
    }

    /// Requests turned away before costing the home tier anything.
    pub fn shed_total(&self) -> u64 {
        self.shed_admission + self.shed_breaker_open + self.shed_brownout + self.shed_queue_full
    }
}

/// What an overload run observed.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Operations offered (the whole script).
    pub offered: u64,
    /// Operations that completed: queries served (hits included) plus
    /// updates applied.
    pub completed: u64,
    /// Completions (queries + updates) whose delay met the deadline.
    pub timely: u64,
    pub hits: u64,
    pub degraded_serves: u64,
    /// Requests shed by protection (admission/breaker/brownout/queue).
    pub shed: u64,
    /// Queries admitted but failed through every retry (link down).
    pub unavailable: u64,
    /// Completions that missed the deadline (counted, not dropped).
    pub deadline_missed: u64,
    pub updates_applied: u64,
    pub updates_rejected: u64,
    pub updates_unavailable: u64,
    /// Served results matching no master state within the lease window —
    /// must stay zero under any overload whatsoever.
    pub stale_beyond_lease: u64,
    pub max_observed_staleness_micros: u64,
    /// p99 wait in the home queue (µs), over admitted home trips.
    pub queue_wait_p99_micros: u64,
    /// p99 end-to-end delay (µs): queue wait + service + retry backoff.
    pub response_p99_micros: u64,
    /// Rejections at the bounded home queue itself.
    pub queue_rejections: u64,
    /// Final arrival instant (µs) — the goodput denominator.
    pub duration_micros: Time,
    pub counters: OverloadCounters,
    /// Present when `timeseries_bucket_micros` was set: harness counters
    /// (`offered`, `completed`, `timely`, `deadline_missed`) merged with
    /// the proxy's own trace curves (`request_shed`, `breaker_open`,
    /// `breaker_half_open`, `breaker_close`, `brownout_enter`,
    /// `brownout_exit`, `degraded_serve`, …), plus `queue_wait_us` and
    /// `response_us` histograms per window.
    pub timeseries: Option<TimeSeries>,
}

impl OverloadReport {
    fn duration_secs(&self) -> f64 {
        (self.duration_micros.max(1)) as f64 / 1_000_000.0
    }

    /// Offered operations per second of sim time.
    pub fn offered_rps(&self) -> f64 {
        self.offered as f64 / self.duration_secs()
    }

    /// Timely completions per second — the quantity that must stay flat
    /// past the knee.
    pub fn goodput_rps(&self) -> f64 {
        self.timely as f64 / self.duration_secs()
    }

    /// Shed operations as a fraction of offered.
    pub fn shed_ratio(&self) -> f64 {
        scs_telemetry::ratio(self.shed, self.offered)
    }
}

fn chaos_config(cfg: &OverloadRunConfig) -> ChaosConfig {
    ChaosConfig {
        seed: cfg.seed,
        ops: cfg.ops,
        op_spacing_micros: cfg.op_spacing_micros,
        lease_micros: cfg.lease_micros,
        recovery: RecoveryMode::FlushAffected,
        strategy: cfg.strategy,
        channel_faults: FaultSpec::none(),
        outage: None,
        scripted_outages: cfg.scripted_outages.clone(),
        crash_mean_interval_micros: None,
        retry: cfg.retry.clone(),
        timeseries_bucket_micros: cfg.timeseries_bucket_micros,
        load: Some(cfg.load.clone()),
        overload: cfg.protection,
    }
}

/// Runs one overload scenario.
///
/// Modeling notes: only operations that actually take a home round trip
/// (query misses, applied updates) occupy the bounded service center; a
/// fresh cache hit completes immediately. A *read* rejected by the
/// bounded queue is simply discarded (reads are side-effect-free), and
/// the rejection is fed back to the proxy via
/// [`scs_dssp::Dssp::record_queue_rejection`] so the brownout shed-ratio
/// sees it; admitted *updates* always serve (the master already applied
/// them — the admission gate, not the queue bound, is what protects
/// their latency). Invalidations are delivered perfectly: this harness
/// isolates overload from delivery faults, which `chaos.rs` owns.
pub fn run_overload(cfg: &OverloadRunConfig) -> OverloadReport {
    let chaos_cfg = chaos_config(cfg);
    let mut sc = build_scenario(&chaos_cfg);
    let link = match &cfg.scripted_outages {
        Some(windows) => scs_dssp::HomeLink::with_outages(windows.clone()),
        None => scs_dssp::HomeLink::reliable(),
    };
    let mut center = ServiceCenter::bounded(1, cfg.queue_cap);
    let mut series = cfg.timeseries_bucket_micros.map(TimeSeries::new);
    // The proxy's trace stream (shed/breaker/brownout events) lands in a
    // shared series merged into the report at the end.
    let proxy_series = cfg.timeseries_bucket_micros.map(|w| {
        let (sink, shared) = TimeSeriesSink::new(w);
        sc.dssp.add_trace_sink(Box::new(sink));
        shared
    });
    let wait_hist = LogHistogram::new();
    let response_hist = LogHistogram::new();

    let mut report = OverloadReport {
        offered: 0,
        completed: 0,
        timely: 0,
        hits: 0,
        degraded_serves: 0,
        shed: 0,
        unavailable: 0,
        deadline_missed: 0,
        updates_applied: 0,
        updates_rejected: 0,
        updates_unavailable: 0,
        stale_beyond_lease: 0,
        max_observed_staleness_micros: 0,
        queue_wait_p99_micros: 0,
        response_p99_micros: 0,
        queue_rejections: 0,
        duration_micros: 0,
        counters: OverloadCounters::default(),
        timeseries: None,
    };

    let script = std::mem::take(&mut sc.script);
    let mut clock: Time = 0;
    for op in script.iter() {
        clock = next_arrival(&chaos_cfg, clock);
        let now = clock;
        sc.dssp.set_sim_time_micros(now);
        report.offered += 1;
        tick(&mut series, now, "offered");
        let queue = QueueState {
            projected_wait_micros: center.projected_wait(now),
            depth: center.in_system(now),
        };
        match op {
            ScriptOp::Query { tid, params } => {
                let q = Query::bind(*tid, sc.queries[*tid].clone(), params.clone())
                    .expect("validated definitions");
                let resp = sc
                    .dssp
                    .execute_query_overload(&q, &mut sc.home, &link, &cfg.retry, &queue)
                    .expect("toystore queries never error");
                match resp.outcome {
                    OverloadOutcome::Served {
                        result,
                        hit,
                        degraded,
                    } => {
                        let delay = if hit {
                            // Answered from the proxy's cache: no home
                            // queue, only whatever backoff retries cost.
                            resp.backoff_micros
                        } else {
                            match center.try_serve(now, cfg.home_service_micros) {
                                Ok(done) => {
                                    wait_hist
                                        .record(done.saturating_sub(now + cfg.home_service_micros));
                                    done.saturating_sub(now) + resp.backoff_micros
                                }
                                Err(_) => {
                                    // The backstop queue bound tripped;
                                    // the read is discarded and the shed
                                    // feeds the brownout signal.
                                    let _why = sc.dssp.record_queue_rejection(*tid as u32);
                                    report.shed += 1;
                                    continue;
                                }
                            }
                        };
                        report.completed += 1;
                        report.hits += hit as u64;
                        report.degraded_serves += degraded as u64;
                        response_hist.record(delay);
                        tick(&mut series, now, "completed");
                        if let Some(ts) = series.as_mut() {
                            ts.observe(now, "response_us", delay);
                        }
                        if delay <= cfg.deadline_micros {
                            report.timely += 1;
                            tick(&mut series, now, "timely");
                        } else {
                            report.deadline_missed += 1;
                            tick(&mut series, now, "deadline_missed");
                        }
                        match staleness_within_lease(&sc.oracle, &q, &result, now, cfg.lease_micros)
                        {
                            Some(staleness) => {
                                report.max_observed_staleness_micros =
                                    report.max_observed_staleness_micros.max(staleness);
                            }
                            None => {
                                report.stale_beyond_lease += 1;
                                tick(&mut series, now, "stale_beyond_lease");
                            }
                        }
                    }
                    OverloadOutcome::Unavailable => {
                        report.unavailable += 1;
                        tick(&mut series, now, "query_unavailable");
                    }
                    OverloadOutcome::Shed(_) => {
                        report.shed += 1;
                    }
                }
            }
            ScriptOp::Update { tid, params } => {
                let u = Update::bind(*tid, sc.updates[*tid].clone(), params.clone())
                    .expect("validated definitions");
                match sc
                    .dssp
                    .execute_update_overload(&u, &mut sc.home, &link, &cfg.retry, &queue)
                {
                    Ok(resp) => match resp.outcome {
                        OverloadUpdateOutcome::Applied { msg, .. } => {
                            let done = center.serve(now, cfg.home_service_micros);
                            wait_hist.record(done.saturating_sub(now + cfg.home_service_micros));
                            let delay = done.saturating_sub(now) + resp.backoff_micros;
                            response_hist.record(delay);
                            report.completed += 1;
                            report.updates_applied += 1;
                            tick(&mut series, now, "completed");
                            tick(&mut series, now, "update_applied");
                            if delay <= cfg.deadline_micros {
                                report.timely += 1;
                                tick(&mut series, now, "timely");
                            } else {
                                report.deadline_missed += 1;
                                tick(&mut series, now, "deadline_missed");
                            }
                            sc.oracle.push((now, sc.home.database().clone()));
                            // Perfect (instant, lossless) delivery:
                            // overload is isolated from delivery faults,
                            // which `chaos.rs` owns.
                            sc.dssp.apply_invalidation(&msg);
                        }
                        OverloadUpdateOutcome::Unavailable => {
                            report.updates_unavailable += 1;
                            tick(&mut series, now, "update_unavailable");
                        }
                        OverloadUpdateOutcome::Shed(_) => {
                            report.shed += 1;
                        }
                    },
                    Err(_) => {
                        report.updates_rejected += 1;
                        tick(&mut series, now, "update_rejected");
                    }
                }
            }
        }
    }

    report.duration_micros = clock;
    report.queue_rejections = center.rejections();
    report.queue_wait_p99_micros = wait_hist.quantile_bounds(0.99).map_or(0, |(_, hi)| hi);
    report.response_p99_micros = response_hist.quantile_bounds(0.99).map_or(0, |(_, hi)| hi);
    report.counters = OverloadCounters::from_dssp(&sc.dssp);
    if let Some(mut ts) = series {
        if let Some(shared) = proxy_series {
            let proxy = shared.lock().expect("proxy series poisoned");
            ts.merge(&proxy);
        }
        report.timeseries = Some(ts);
    }
    report
}

/// One point on the offered-load vs goodput curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    pub multiplier: f64,
    pub offered_rps: f64,
    pub goodput_rps: f64,
    pub shed_ratio: f64,
    pub p99_response_micros: u64,
    pub stale_beyond_lease: u64,
}

/// Sweeps constant-rate runs over `multipliers` (each relative to
/// `base`'s spacing) and returns the goodput curve. The knee is where
/// goodput peaks; a healthy protected system holds near it afterwards,
/// an unprotected one collapses.
pub fn goodput_curve(base: &OverloadRunConfig, multipliers: &[f64]) -> Vec<CurvePoint> {
    multipliers
        .iter()
        .map(|&m| {
            let mut cfg = base.clone();
            cfg.load = LoadProfile::constant(m);
            cfg.timeseries_bucket_micros = None;
            let r = run_overload(&cfg);
            CurvePoint {
                multiplier: m,
                offered_rps: r.offered_rps(),
                goodput_rps: r.goodput_rps(),
                shed_ratio: r.shed_ratio(),
                p99_response_micros: r.response_p99_micros,
                stale_beyond_lease: r.stale_beyond_lease,
            }
        })
        .collect()
}

/// Index of the knee: the point of maximum goodput.
pub fn knee_index(curve: &[CurvePoint]) -> usize {
    let mut best = 0;
    for (i, p) in curve.iter().enumerate() {
        if p.goodput_rps > curve[best].goodput_rps {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile_is_identity() {
        let p = LoadProfile::flat();
        for t in [0, 1, SEC, 100 * SEC] {
            assert_eq!(p.multiplier_at(t), 1.0);
        }
    }

    #[test]
    fn step_and_ramp_segments_compose() {
        let p = LoadProfile {
            segments: vec![
                LoadSegment::Ramp {
                    start: 0,
                    end: 1_000,
                    from: 1.0,
                    to: 3.0,
                },
                LoadSegment::Step {
                    start: 500,
                    end: 800,
                    multiplier: 4.0,
                },
            ],
        };
        assert_eq!(p.multiplier_at(0), 1.0);
        assert!((p.multiplier_at(500) - 4.0).abs() < 1e-9); // later segment wins
        assert!((p.multiplier_at(900) - (1.0 + 2.0 * 0.9)).abs() < 1e-9);
        assert_eq!(p.multiplier_at(1_000), 1.0); // end exclusive
    }

    #[test]
    fn spike_compresses_arrivals_inside_its_window() {
        let mut cfg = crate::chaos::ChaosConfig::faultless(3, 100);
        cfg.load = Some(LoadProfile::spike(10 * MS, 20 * MS, 4.0));
        let mut clock = 0;
        let mut inside = 0;
        let mut outside = 0;
        for _ in 0..100 {
            clock = crate::chaos::next_arrival(&cfg, clock);
            if (10 * MS..20 * MS).contains(&clock) {
                inside += 1;
            } else {
                outside += 1;
            }
        }
        // 4× the rate in a 10 ms window: ~40 arrivals land inside where
        // 10 would at baseline.
        assert!(inside >= 35, "spike window got {inside} arrivals");
        assert!(outside > 0);
    }

    #[test]
    fn no_load_profile_replays_the_original_schedule() {
        let cfg = crate::chaos::ChaosConfig::faultless(3, 10);
        let mut clock = 0;
        let arrivals: Vec<Time> = (0..10)
            .map(|_| {
                clock = crate::chaos::next_arrival(&cfg, clock);
                clock
            })
            .collect();
        let expected: Vec<Time> = (1..=10).map(|i| i * cfg.op_spacing_micros).collect();
        assert_eq!(arrivals, expected);
    }

    #[test]
    fn spike_demo_sheds_but_never_serves_stale() {
        let report = run_overload(&OverloadRunConfig::spike_demo(42));
        assert!(report.shed > 0, "4× spike must shed something");
        assert_eq!(report.stale_beyond_lease, 0);
        assert!(report.completed > 0);
        assert!(report.timely > 0);
    }

    #[test]
    fn protection_beats_collapse_at_sustained_overload() {
        let seed = 7;
        let mut protected = OverloadRunConfig::sweep_point(seed);
        protected.load = LoadProfile::constant(4.0);
        let mut unprotected = OverloadRunConfig::sweep_point(seed).unprotected();
        unprotected.load = LoadProfile::constant(4.0);
        let p = run_overload(&protected);
        let u = run_overload(&unprotected);
        assert!(
            p.goodput_rps() >= u.goodput_rps(),
            "protected {} < unprotected {}",
            p.goodput_rps(),
            u.goodput_rps()
        );
        assert!(
            p.queue_wait_p99_micros <= protected.deadline_micros,
            "admission must bound the queue wait, got p99 {} µs",
            p.queue_wait_p99_micros
        );
    }

    #[test]
    fn overload_runs_replay_per_seed() {
        let a = run_overload(&OverloadRunConfig::spike_demo(9));
        let b = run_overload(&OverloadRunConfig::spike_demo(9));
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.timely, b.timely);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.counters, b.counters);
    }
}
