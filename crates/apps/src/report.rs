//! Machine-readable telemetry reports for the experiment binaries.
//!
//! The `fig3`/`fig8` binaries (and anything else driving a
//! [`DsspWorkload`](crate::driver::DsspWorkload)) assemble one JSON
//! *entry* per (application, configuration) probe run, combining:
//!
//! * the proxy-side registry: per-template hit/miss/invalidation counts
//!   and the invalidation-scan-size histogram;
//! * the empirical invalidation-attribution matrix next to the static
//!   IPM's A=0 predictions (plus any divergence — pairs the analysis
//!   proved conflict-free that nonetheless invalidated at runtime);
//! * the simulator's latency breakdown: response-time quantiles and
//!   per-service-center wait/service histograms.
//!
//! The schema is documented in `EXPERIMENTS.md`; everything renders via
//! the hermetic `scs-telemetry` JSON type, so reports stay dependency
//! free and round-trip through [`Json::parse`].

use crate::chaos::{ChaosConfig, ChaosReport, FaultCounters};
use scs_dssp::Dssp;
use scs_netsim::{CenterTelemetry, RunMetrics};
use scs_telemetry::{evaluate_all, HistogramSnapshot, Json, SloSpec, TimeSeries, Tracer};
use std::path::PathBuf;

/// Bumped whenever the report layout changes incompatibly. The `regress`
/// gate refuses to diff reports whose version differs from its own —
/// regenerate stale baselines instead of comparing mismatched shapes.
///
/// History: 1 = initial versioned schema; 2 = freshness-plane entries
/// (`freshness.points` curves from the provenance log); 3 = leakage
/// audit plane (`dssp.leakage` ledgers) and `frontier` entries; 4 =
/// durable home tier (`failover` entries: unavailability windows,
/// acked-write durability ledger, fencing counters).
pub const SCHEMA_VERSION: u64 = 4;

/// Environment variable overriding the output path of
/// [`write_telemetry`].
pub const TELEMETRY_OUT_ENV: &str = "SCS_TELEMETRY_OUT";

/// Summary of a latency histogram: count/mean/extremes plus nearest-rank
/// quantiles as `[lo, hi]` bucket bounds (the true sample lies within).
pub fn histogram_json(h: &HistogramSnapshot) -> Json {
    let bounds = |q: f64| -> Json {
        h.quantile_bounds(q)
            .map(|(lo, hi)| Json::from(vec![lo, hi]))
            .into()
    };
    Json::obj([
        ("count", h.count.into()),
        ("mean_us", h.mean().into()),
        ("min_us", h.min.into()),
        ("max_us", h.max.into()),
        ("p50_us", bounds(0.5)),
        ("p90_us", bounds(0.9)),
        ("p99_us", bounds(0.99)),
    ])
}

fn center_json(c: &CenterTelemetry) -> Json {
    Json::obj([
        ("wait", histogram_json(&c.wait)),
        ("service", histogram_json(&c.service)),
    ])
}

/// The simulator's view of one run: load, utilizations, and the
/// queueing-delay vs service-time breakdown per shared center.
pub fn run_metrics_json(m: &RunMetrics) -> Json {
    Json::obj([
        ("users", m.users.into()),
        ("requests_completed", m.requests_completed.into()),
        ("ops_executed", m.ops_executed.into()),
        ("throughput_rps", m.throughput().into()),
        ("hit_rate", m.hit_rate.into()),
        ("dssp_utilization", m.dssp_utilization.into()),
        ("home_utilization", m.home_utilization.into()),
        ("home_link_utilization", m.home_link_utilization.into()),
        ("response", histogram_json(&m.response_hist)),
        ("dssp_cpu", center_json(&m.dssp_cpu_telemetry)),
        ("home_cpu", center_json(&m.home_cpu_telemetry)),
        ("home_link", center_json(&m.home_link_telemetry)),
    ])
}

/// Health of the trace pipeline itself: whether any sink lost events
/// (ring-buffer overwrites) or failed to write (JSONL I/O errors). A
/// report whose curves were built from a lossy trace stream must say so.
pub fn trace_health_json(tracer: &Tracer) -> Json {
    Json::obj([
        ("active", tracer.is_active().into()),
        ("events_emitted", tracer.events_emitted().into()),
        ("events_dropped", tracer.events_dropped().into()),
        ("write_errors", tracer.write_errors().into()),
    ])
}

/// The `leakage` report section: what the proxy actually saw. With the
/// audit plane attached this is the full ledger summary (per-template and
/// per-tenant reveal counters, journal sink health, envelope seal/open
/// meter); without it, `{"enabled": false}` — the plane is inert and
/// there is nothing to report.
pub fn leakage_json(dssp: &Dssp) -> Json {
    let Some(audit) = dssp.audit() else {
        return Json::obj([("enabled", false.into())]);
    };
    let mut doc = audit.lock().unwrap().summary_json();
    let crypto: Json = dssp
        .crypto_meter()
        .map(|m| {
            Json::obj([
                ("seals", m.seals().into()),
                ("seal_bytes", m.seal_bytes().into()),
                ("opens", m.opens().into()),
                ("open_bytes", m.open_bytes().into()),
            ])
        })
        .into();
    if let Json::Obj(kv) = &mut doc {
        kv.push(("crypto".to_string(), crypto));
    }
    doc
}

/// SLO verdicts for one run as a JSON array (see `scs_telemetry::slo`).
pub fn slo_results_json(specs: &[SloSpec], series: &TimeSeries) -> Json {
    Json::from(
        evaluate_all(specs, series)
            .iter()
            .map(|r| r.to_json())
            .collect::<Vec<Json>>(),
    )
}

/// The proxy's view: aggregate stats, per-template counters, and the
/// empirical-vs-predicted invalidation attribution.
pub fn dssp_telemetry_json(dssp: &Dssp) -> Json {
    let snap = dssp.registry().snapshot();
    let stats = dssp.stats();
    let attr = dssp.attribution();
    let ipm = dssp.ipm();
    let counter = |name: String| -> Json { (*snap.counters.get(&name).unwrap_or(&0)).into() };

    let query_templates: Vec<Json> = (0..attr.query_count())
        .map(|q| {
            Json::obj([
                ("id", q.into()),
                ("hits", counter(format!("query_template.{q}.hits"))),
                ("misses", counter(format!("query_template.{q}.misses"))),
                (
                    "invalidated",
                    counter(format!("query_template.{q}.invalidated")),
                ),
                ("evicted", counter(format!("query_template.{q}.evicted"))),
            ])
        })
        .collect();
    let update_templates: Vec<Json> = (0..attr.update_count())
        .map(|u| {
            Json::obj([
                ("id", u.into()),
                ("applied", counter(format!("update_template.{u}.applied"))),
                (
                    "invalidations",
                    counter(format!("update_template.{u}.invalidations")),
                ),
            ])
        })
        .collect();

    let predicted_a_zero: Vec<Json> = (0..attr.update_count())
        .map(|u| {
            Json::from(
                (0..attr.query_count())
                    .map(|q| ipm.entry(u, q).all_zero())
                    .collect::<Vec<bool>>(),
            )
        })
        .collect();
    let divergence: Vec<Json> = attr
        .divergence(|u, q| ipm.entry(u, q).all_zero())
        .into_iter()
        .map(|(u, q, n)| {
            Json::obj([
                ("update", u.into()),
                ("query", q.into()),
                ("count", n.into()),
            ])
        })
        .collect();
    let updates_applied: Vec<u64> = (0..attr.update_count())
        .map(|u| attr.updates_applied(u))
        .collect();

    let scan_hist = snap
        .histograms
        .get("dssp.invalidation_scan_size")
        .cloned()
        .unwrap_or_default();
    let faults = FaultCounters::from_dssp(dssp);

    Json::obj([
        (
            "stats",
            Json::obj([
                ("queries", stats.queries.into()),
                ("hits", stats.hits.into()),
                ("misses", stats.misses.into()),
                ("updates", stats.updates.into()),
                ("invalidations", stats.invalidations.into()),
                ("entries_scanned", stats.entries_scanned.into()),
                ("evictions", stats.evictions.into()),
                ("hit_rate", stats.hit_rate().into()),
                (
                    "invalidations_per_update",
                    stats.invalidations_per_update().into(),
                ),
            ]),
        ),
        ("query_templates", Json::from(query_templates)),
        ("update_templates", Json::from(update_templates)),
        (
            "attribution",
            Json::obj([
                ("updates_applied", updates_applied.into()),
                (
                    "counts",
                    Json::from(
                        attr.dense_counts()
                            .into_iter()
                            .map(Json::from)
                            .collect::<Vec<Json>>(),
                    ),
                ),
                ("predicted_a_zero", Json::from(predicted_a_zero)),
                ("divergence", Json::from(divergence)),
            ]),
        ),
        ("invalidation_scan_size", histogram_json(&scan_hist)),
        ("faults", fault_counters_json(&faults)),
        ("trace", trace_health_json(dssp.tracer())),
        ("spans", dssp.spans().summary_json()),
        ("leakage", leakage_json(dssp)),
    ])
}

/// The fault/recovery counters as a report section. All-zero under
/// perfect delivery; chaos runs (the `chaos` binary, `EXPERIMENTS.md`)
/// must show nonzero handling here when injection is enabled.
pub fn fault_counters_json(f: &FaultCounters) -> Json {
    Json::obj([
        ("epoch_gaps", f.epoch_gaps.into()),
        ("recovery_flushes", f.recovery_flushes.into()),
        (
            "recovery_flushed_entries",
            f.recovery_flushed_entries.into(),
        ),
        ("duplicate_invalidations", f.duplicate_invalidations.into()),
        ("lease_expirations", f.lease_expirations.into()),
        ("home_retries", f.home_retries.into()),
        ("home_unavailable", f.home_unavailable.into()),
        ("degraded_serves", f.degraded_serves.into()),
        ("restarts", f.restarts.into()),
        ("total", f.total().into()),
    ])
}

/// One chaos-run entry: the fault schedule, the oracle's staleness
/// verdict, serve/availability accounting, channel-level delivery stats,
/// and the proxy's fault/recovery counters (see `EXPERIMENTS.md`).
pub fn chaos_entry_json(label: &str, cfg: &ChaosConfig, report: &ChaosReport) -> Json {
    let outage_windows: Vec<Json> = report
        .outage_windows
        .iter()
        .map(|&(s, e)| Json::from(vec![s, e]))
        .collect();
    // The chaos SLO: nothing served is ever stale beyond the lease — the
    // single objective the whole fault-tolerance layer exists to meet.
    let slo: Json = report
        .timeseries
        .as_ref()
        .map(|ts| {
            slo_results_json(
                &[SloSpec::counter_at_most(
                    "stale_beyond_lease_zero",
                    "stale_beyond_lease",
                    0,
                )],
                ts,
            )
        })
        .into();
    Json::obj([
        ("config", label.into()),
        ("seed", cfg.seed.into()),
        ("ops", (cfg.ops as u64).into()),
        ("lease_micros", cfg.lease_micros.into()),
        ("recovery", cfg.recovery.name().into()),
        ("strategy", cfg.strategy.name().into()),
        ("stale_beyond_lease", report.stale_beyond_lease.into()),
        (
            "max_observed_staleness_micros",
            report.max_observed_staleness_micros.into(),
        ),
        ("queries_served", report.queries_served.into()),
        ("hits", report.hits.into()),
        ("degraded_serves", report.degraded_serves.into()),
        ("queries_unavailable", report.queries_unavailable.into()),
        ("updates_applied", report.updates_applied.into()),
        ("updates_unavailable", report.updates_unavailable.into()),
        ("updates_rejected", report.updates_rejected.into()),
        (
            "channel",
            Json::obj([
                ("sent", report.channel.sent.into()),
                ("dropped", report.channel.dropped.into()),
                ("duplicated", report.channel.duplicated.into()),
                ("delayed", report.channel.delayed.into()),
                ("delivered", report.channel.delivered.into()),
            ]),
        ),
        ("faults", fault_counters_json(&report.counters)),
        ("outage_windows", Json::from(outage_windows)),
        (
            "timeseries",
            report.timeseries.as_ref().map(TimeSeries::to_json).into(),
        ),
        ("slo", slo),
    ])
}

/// One failover-run entry: the home-tier shape, the promotion record,
/// the unavailability-window accounting, and the durability/freshness
/// oracle verdicts. `goodput_retained` compares serves against the
/// steady single-home run of the same script (`None` for the steady
/// run itself). Keyed `app`/`config` so the regression gate diffs it
/// like any other probe entry; the `regress` detectors
/// `failover_window_rise` and `acked_write_lost` read the `failover`
/// section.
pub fn failover_entry_json(
    label: &str,
    cfg: &crate::failover::FailoverConfig,
    report: &crate::failover::FailoverReport,
    goodput_retained: Option<f64>,
) -> Json {
    let worst_window = report
        .failovers
        .iter()
        .map(|f| f.unavailable_micros)
        .max()
        .unwrap_or(0);
    // The promotion-latency budget: each failover may cost at most the
    // detection lease plus two heartbeat ticks of slack.
    let window_bound = report.failovers.len() as u64
        * (cfg.replication.lease_micros + 2 * cfg.replication.heartbeat_micros);
    let promotions: Vec<Json> = report
        .failovers
        .iter()
        .map(|f| {
            Json::obj([
                ("at_micros", f.at_micros.into()),
                ("new_term", f.new_term.into()),
                ("barrier_epoch", f.barrier_epoch.into()),
                ("lost_records", f.lost_records.into()),
                ("lost_acked", f.lost_acked.into()),
                ("unavailable_micros", f.unavailable_micros.into()),
            ])
        })
        .collect();
    Json::obj([
        ("app", "toystore".into()),
        ("config", label.into()),
        ("seed", cfg.seed.into()),
        ("ops", (cfg.ops as u64).into()),
        ("lease_micros", cfg.lease_micros.into()),
        ("strategy", cfg.strategy.name().into()),
        ("stale_beyond_lease", report.stale_beyond_lease.into()),
        (
            "max_observed_staleness_micros",
            report.max_observed_staleness_micros.into(),
        ),
        (
            "failover",
            Json::obj([
                ("mode", cfg.replication.mode.name().into()),
                ("standbys", (cfg.replication.standbys as u64).into()),
                ("heartbeat_micros", cfg.replication.heartbeat_micros.into()),
                (
                    "detection_lease_micros",
                    cfg.replication.lease_micros.into(),
                ),
                ("failovers", (report.failovers.len() as u64).into()),
                ("promotions", Json::from(promotions)),
                (
                    "unavailable_micros_total",
                    report.unavailable_micros_total.into(),
                ),
                ("worst_window_micros", worst_window.into()),
                ("window_bound_micros", window_bound.into()),
                ("lost_records", report.lost_records_total.into()),
                ("lost_acked", report.lost_acked_total.into()),
                (
                    "external_lost_acked",
                    report.external_lost_acked_total.into(),
                ),
                ("ledger_consistent", report.ledger_consistent.into()),
                ("durability_ok", report.durability_ok.into()),
                ("conservation_balanced", report.conservation_balanced.into()),
                ("fenced_records", report.fenced_records.into()),
                ("zombie_writes_applied", report.zombie_writes_applied.into()),
                ("divergence_discarded", report.divergence_discarded.into()),
                ("fanout_lost_on_crash", report.fanout_lost_on_crash.into()),
                ("recovery_flushes", report.recovery_flushes.into()),
                ("failover_stamps", (report.failover_stamps as u64).into()),
                ("queries_served", report.queries_served.into()),
                ("queries_unavailable", report.queries_unavailable.into()),
                ("updates_acked", report.updates_acked.into()),
                (
                    "updates_applied_unacked",
                    report.updates_applied_unacked.into(),
                ),
                ("updates_unavailable", report.updates_unavailable.into()),
                ("goodput_retained", goodput_retained.into()),
                ("final_epoch", report.final_epoch.into()),
            ]),
        ),
        (
            "timeseries",
            report.timeseries.as_ref().map(TimeSeries::to_json).into(),
        ),
    ])
}

/// The overload SLOs evaluated against a run's merged time series:
/// staleness stays lease-bounded no matter how hard the system sheds,
/// the worst 300 ms of the run still completes at least `min_goodput` of
/// what was offered, and completion latency stays deadline-shaped.
pub fn overload_slos(min_goodput: f64, p99_limit_micros: u64) -> Vec<SloSpec> {
    // Three buckets per SLO group, so a single thin bucket at a spike
    // edge can't fail the ratio on noise.
    vec![
        SloSpec::counter_at_most("stale_beyond_lease_zero", "stale_beyond_lease", 0),
        SloSpec::ratio_at_least("goodput_floor", "timely", "offered", min_goodput, 3, 30),
        SloSpec::quantile_at_most(
            "response_p99_bounded",
            "response_us",
            0.99,
            p99_limit_micros,
            3,
        ),
    ]
}

/// The proxy's shed/breaker/brownout counters as a report section.
pub fn overload_counters_json(c: &crate::overload::OverloadCounters) -> Json {
    Json::obj([
        ("shed_admission", c.shed_admission.into()),
        ("shed_breaker_open", c.shed_breaker_open.into()),
        ("shed_brownout", c.shed_brownout.into()),
        ("shed_queue_full", c.shed_queue_full.into()),
        ("shed_total", c.shed_total().into()),
        ("breaker_opens", c.breaker_opens.into()),
        ("breaker_half_opens", c.breaker_half_opens.into()),
        ("breaker_closes", c.breaker_closes.into()),
        ("brownout_entries", c.brownout_entries.into()),
        ("brownout_exits", c.brownout_exits.into()),
        ("brownout_serves", c.brownout_serves.into()),
        ("home_retries", c.home_retries.into()),
        ("home_unavailable", c.home_unavailable.into()),
    ])
}

/// One overload-run entry: offered-vs-goodput accounting, the shed and
/// breaker counters, the overload SLO verdicts, and (when recorded) the
/// merged harness + proxy trace curves. Keyed `app`/`config` so the
/// regression gate diffs it like any other probe entry.
pub fn overload_entry_json(
    label: &str,
    cfg: &crate::overload::OverloadRunConfig,
    report: &crate::overload::OverloadReport,
) -> Json {
    // With a scripted total home outage in the run, the worst windows are
    // the outage itself, where goodput is legitimately bounded by the
    // degraded-serve rate: the floor then asserts service *continuity*
    // (brownout keeps serving within-lease hits), not shedding headroom.
    let min_goodput = if cfg.scripted_outages.is_some() {
        0.05
    } else {
        0.35
    };
    let slo: Json = report
        .timeseries
        .as_ref()
        .map(|ts| {
            slo_results_json(
                &overload_slos(min_goodput, cfg.deadline_micros + cfg.deadline_micros / 2),
                ts,
            )
        })
        .into();
    Json::obj([
        ("app", "toystore".into()),
        ("config", label.into()),
        ("seed", cfg.seed.into()),
        ("ops", (cfg.ops as u64).into()),
        ("protected", cfg.protection.is_some().into()),
        ("deadline_micros", cfg.deadline_micros.into()),
        ("lease_micros", cfg.lease_micros.into()),
        (
            "overload",
            Json::obj([
                ("offered", report.offered.into()),
                ("completed", report.completed.into()),
                ("timely", report.timely.into()),
                ("shed", report.shed.into()),
                ("deadline_missed", report.deadline_missed.into()),
                ("hits", report.hits.into()),
                ("degraded_serves", report.degraded_serves.into()),
                ("unavailable", report.unavailable.into()),
                ("updates_applied", report.updates_applied.into()),
                ("queue_rejections", report.queue_rejections.into()),
                ("offered_rps", report.offered_rps().into()),
                ("goodput_rps", report.goodput_rps().into()),
                ("shed_ratio", report.shed_ratio().into()),
                ("queue_wait_p99_micros", report.queue_wait_p99_micros.into()),
                ("response_p99_micros", report.response_p99_micros.into()),
                ("duration_micros", report.duration_micros.into()),
                ("counters", overload_counters_json(&report.counters)),
            ]),
        ),
        ("stale_beyond_lease", report.stale_beyond_lease.into()),
        (
            "max_observed_staleness_micros",
            report.max_observed_staleness_micros.into(),
        ),
        (
            "timeseries",
            report.timeseries.as_ref().map(TimeSeries::to_json).into(),
        ),
        ("slo", slo),
    ])
}

/// An offered-load vs goodput curve as a report section: one point per
/// multiplier, with the knee index alongside so readers (and the
/// regression gate's collapse detector) don't have to re-derive it.
pub fn overload_curve_json(label: &str, points: &[crate::overload::CurvePoint]) -> Json {
    let knee = crate::overload::knee_index(points);
    let pts: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::obj([
                ("multiplier", p.multiplier.into()),
                ("offered_rps", p.offered_rps.into()),
                ("goodput_rps", p.goodput_rps.into()),
                ("shed_ratio", p.shed_ratio.into()),
                ("p99_response_micros", p.p99_response_micros.into()),
                ("stale_beyond_lease", p.stale_beyond_lease.into()),
            ])
        })
        .collect();
    Json::obj([
        ("label", label.into()),
        ("knee_index", (knee as u64).into()),
        (
            "knee_goodput_rps",
            points.get(knee).map(|p| p.goodput_rps).into(),
        ),
        ("points", Json::from(pts)),
    ])
}

/// One report entry: an (application, configuration) probe run.
pub fn telemetry_entry(
    app: &str,
    config: &str,
    scalability_users: Option<usize>,
    dssp: &Dssp,
    metrics: &RunMetrics,
) -> Json {
    Json::obj([
        ("app", app.into()),
        ("config", config.into()),
        ("scalability_users", scalability_users.into()),
        ("sim", run_metrics_json(metrics)),
        ("dssp", dssp_telemetry_json(dssp)),
    ])
}

/// Like [`telemetry_entry`] but for observed runs: merges the proxy's
/// trace-event time series into the simulator's windowed curves (the
/// counter namespaces are disjoint; both series must use the same bucket
/// width), evaluates `slos` against the merged series, and appends the
/// result as `timeseries` / `slo` sections.
pub fn telemetry_entry_observed(
    app: &str,
    config: &str,
    scalability_users: Option<usize>,
    dssp: &Dssp,
    metrics: &RunMetrics,
    proxy_series: Option<&TimeSeries>,
    slos: &[SloSpec],
) -> Json {
    let merged = match (metrics.timeseries.as_ref(), proxy_series) {
        (Some(sim), Some(proxy)) => {
            let mut m = sim.clone();
            m.merge(proxy);
            Some(m)
        }
        (Some(sim), None) => Some(sim.clone()),
        (None, Some(proxy)) => Some(proxy.clone()),
        (None, None) => None,
    };
    let slo: Json = merged.as_ref().map(|ts| slo_results_json(slos, ts)).into();
    Json::obj([
        ("app", app.into()),
        ("config", config.into()),
        ("scalability_users", scalability_users.into()),
        ("sim", run_metrics_json(metrics)),
        ("dssp", dssp_telemetry_json(dssp)),
        (
            "timeseries",
            merged.as_ref().map(TimeSeries::to_json).into(),
        ),
        ("slo", slo),
    ])
}

/// Wraps entries into the versioned top-level document.
pub fn telemetry_report(entries: Vec<Json>) -> Json {
    Json::obj([
        ("schema_version", SCHEMA_VERSION.into()),
        ("entries", Json::from(entries)),
    ])
}

/// Writes a report to `default_path` (or `$SCS_TELEMETRY_OUT` when set),
/// pretty-printed; returns the path written.
pub fn write_telemetry(report: &Json, default_path: &str) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(
        std::env::var(TELEMETRY_OUT_ENV).unwrap_or_else(|_| default_path.to_string()),
    );
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut text = report.render_pretty();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DsspWorkload;
    use crate::gen::IdSpaces;
    use crate::toystore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scs_dssp::StrategyKind;
    use scs_netsim::Workload;
    use scs_storage::Database;

    fn toystore_workload(kind: StrategyKind, seed: u64) -> DsspWorkload {
        let app = toystore::toystore();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        toystore::populate(&mut db, 50, 30, &mut rng);
        let mut ids = IdSpaces::default();
        ids.declare("toys", 50);
        ids.declare("customers", 30);
        ids.declare("credit_card", 15);
        let exposures = kind.exposures(app.updates.len(), app.queries.len());
        DsspWorkload::new(&app, db, ids, exposures, 1.0, seed)
    }

    fn drive(w: &mut DsspWorkload, requests: usize) {
        for _ in 0..requests {
            let n = w.begin_request(0);
            for i in 0..n {
                w.execute_op(0, i);
            }
        }
    }

    #[test]
    fn report_round_trips_through_parse() {
        let mut w = toystore_workload(StrategyKind::ViewInspection, 7);
        drive(&mut w, 200);
        let metrics = RunMetrics::default();
        let entry = telemetry_entry("toystore", "MVIS", Some(128), w.dssp(), &metrics);
        let report = telemetry_report(vec![entry]);
        let parsed = Json::parse(&report.render_pretty()).unwrap();
        assert_eq!(
            parsed.get("schema_version").unwrap().as_u64(),
            Some(SCHEMA_VERSION)
        );
        let entry = parsed.get("entries").unwrap().index(0).unwrap();
        assert_eq!(entry.get("app").unwrap().as_str(), Some("toystore"));
        assert_eq!(entry.get("scalability_users").unwrap().as_u64(), Some(128));
        let stats = entry.get("dssp").unwrap().get("stats").unwrap();
        let queries = stats.get("queries").unwrap().as_u64().unwrap();
        assert_eq!(queries, w.dssp().stats().queries);
        assert!(queries > 0);
    }

    #[test]
    fn per_template_counts_sum_to_totals() {
        let mut w = toystore_workload(StrategyKind::StatementInspection, 8);
        drive(&mut w, 300);
        let doc = dssp_telemetry_json(w.dssp());
        let stats = w.dssp().stats();
        let sum_field = |list: &str, field: &str| -> u64 {
            doc.get(list)
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|t| t.get(field).unwrap().as_u64().unwrap())
                .sum()
        };
        assert_eq!(sum_field("query_templates", "hits"), stats.hits);
        assert_eq!(sum_field("query_templates", "misses"), stats.misses);
        assert_eq!(sum_field("update_templates", "applied"), stats.updates);
        assert_eq!(
            sum_field("update_templates", "invalidations"),
            stats.invalidations
        );
    }

    #[test]
    fn empirical_attribution_matches_ipm_on_toystore() {
        // Under any template-informed strategy (MTIS and up), pairs the
        // static analysis characterizes as A=0 must never invalidate at
        // runtime — the report's divergence list stays empty.
        for kind in [
            StrategyKind::TemplateInspection,
            StrategyKind::StatementInspection,
            StrategyKind::ViewInspection,
        ] {
            let mut w = toystore_workload(kind, 9);
            drive(&mut w, 500);
            assert!(w.dssp().stats().invalidations > 0, "{kind:?}: no traffic");
            let doc = dssp_telemetry_json(w.dssp());
            let attribution = doc.get("attribution").unwrap();
            let divergence = attribution.get("divergence").unwrap().as_arr().unwrap();
            assert!(
                divergence.is_empty(),
                "{kind:?}: A=0 pairs invalidated at runtime: {divergence:?}"
            );
        }
    }

    #[test]
    fn fault_section_is_all_zero_under_perfect_delivery() {
        let mut w = toystore_workload(StrategyKind::ViewInspection, 13);
        drive(&mut w, 200);
        let doc = dssp_telemetry_json(w.dssp());
        let faults = doc.get("faults").unwrap();
        for key in [
            "epoch_gaps",
            "recovery_flushes",
            "duplicate_invalidations",
            "lease_expirations",
            "home_retries",
            "home_unavailable",
            "degraded_serves",
            "restarts",
            "total",
        ] {
            assert_eq!(faults.get(key).unwrap().as_u64(), Some(0), "{key}");
        }
    }

    #[test]
    fn fault_section_reflects_chaos_counters() {
        let report = crate::chaos::run_chaos(&crate::chaos::ChaosConfig::chaotic(23, 800));
        let doc = fault_counters_json(&report.counters);
        assert_eq!(
            doc.get("total").unwrap().as_u64(),
            Some(report.counters.total())
        );
        assert!(report.counters.total() > 0, "chaos run recorded no faults");
    }

    #[test]
    fn observed_entry_merges_curves_and_reports_slo_verdicts() {
        let mut w = toystore_workload(StrategyKind::ViewInspection, 11);
        let series = w.attach_observatory(scs_netsim::SEC);
        drive(&mut w, 300);
        assert!(w.dssp().stats().hits > 0, "fixture produced no hits");

        // Derive a per-window `queries` denominator for the hit-rate SLO.
        let mut proxy = series.lock().unwrap().clone();
        let totals: Vec<(u64, u64)> = proxy
            .windows()
            .iter()
            .map(|win| {
                (
                    win.start_micros,
                    win.counter("query_hit") + win.counter("query_miss"),
                )
            })
            .collect();
        for (start, n) in totals {
            proxy.add(start, "queries", n);
        }

        let mut metrics = RunMetrics::default();
        let mut sim = TimeSeries::new(scs_netsim::SEC);
        sim.incr(0, "requests");
        metrics.timeseries = Some(sim);

        let slos = [
            SloSpec::ratio_at_least("hit_rate_floor", "query_hit", "queries", 0.01, 1, 10),
            SloSpec::counter_at_most("no_misses_ever", "query_miss", 0), // must fail
        ];
        let entry = telemetry_entry_observed(
            "toystore",
            "MVIS",
            None,
            w.dssp(),
            &metrics,
            Some(&proxy),
            &slos,
        );
        let parsed = Json::parse(&entry.render_pretty()).unwrap();

        // The merged series carries sim and proxy counters side by side.
        let w0 = parsed
            .get("timeseries")
            .unwrap()
            .get("windows")
            .unwrap()
            .index(0)
            .unwrap();
        let counters = w0.get("counters").unwrap();
        assert!(counters.get("requests").is_some(), "sim counter missing");
        assert!(
            counters.get("query_miss").is_some(),
            "proxy counter missing"
        );

        let slo = parsed.get("slo").unwrap().as_arr().unwrap();
        assert_eq!(slo.len(), 2);
        assert_eq!(slo[0].get("passed").unwrap().as_bool(), Some(true));
        assert_eq!(slo[1].get("passed").unwrap().as_bool(), Some(false));

        // Trace health and span summary ride along under `dssp`.
        let dssp = parsed.get("dssp").unwrap();
        let emitted = dssp.get("trace").unwrap().get("events_emitted").unwrap();
        assert!(emitted.as_u64().unwrap() > 0);
        assert!(dssp.get("spans").unwrap().get("enabled").is_some());
    }

    #[test]
    fn chaos_entry_exports_outage_curves_and_slo() {
        let cfg = ChaosConfig::outage_demo(7, 1_500);
        let report = crate::chaos::run_chaos(&cfg);
        let doc = chaos_entry_json("outage_demo", &cfg, &report);
        let parsed = Json::parse(&doc.render_pretty()).unwrap();
        let windows = parsed.get("outage_windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), report.outage_windows.len());
        assert!(!windows.is_empty());
        let ts = parsed.get("timeseries").unwrap();
        assert_eq!(
            ts.get("width_us").unwrap().as_u64(),
            cfg.timeseries_bucket_micros
        );
        let slo = parsed.get("slo").unwrap().as_arr().unwrap();
        assert_eq!(
            slo[0].get("name").unwrap().as_str(),
            Some("stale_beyond_lease_zero")
        );
        assert_eq!(slo[0].get("passed").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn histogram_json_reports_quantile_bounds() {
        let h = scs_telemetry::LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let doc = histogram_json(&h.snapshot());
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(1000));
        let p90 = doc.get("p90_us").unwrap().as_arr().unwrap();
        let (lo, hi) = (p90[0].as_u64().unwrap(), p90[1].as_u64().unwrap());
        assert!(lo <= 900 && 900 <= hi, "p90 bounds [{lo}, {hi}]");
        // Empty histograms render null quantiles but still parse.
        let empty = histogram_json(&HistogramSnapshot::default());
        assert!(empty.get("p50_us").unwrap().as_arr().is_none());
    }
}
