//! Flash-crowd scenario for the elastic proxy fleet.
//!
//! The experiment the elastic fleet has to win: a steady workload over
//! many query templates takes a sudden arrival spike concentrated on
//! **one** hot template (a flash crowd — the hot template's arrival
//! rate rises ~10×). Under [`scs_dssp::RoutingMode::HashByTemplate`]
//! that template pins to a single replica, so a static fleet fails on
//! one side or the other:
//!
//! * **too small** — the hot replica saturates, queues explode, and
//!   the run blows the paper's p90 ≤ 2 s SLO;
//! * **too large** — the SLO holds, but the extra replicas idle
//!   through the whole run; the waste is measured in *node-seconds*
//!   (the integral of live replica count over the run).
//!
//! The autoscaled fleet starts small, scales out while the crowd is
//! hot (the joiners take ring arcs — and their cached working sets —
//! off every incumbent, including the hot one), and scales back in
//! when it passes: it holds the SLO at a fraction of the big static
//! fleet's node-seconds. [`run_elastic`] measures all three
//! configurations with the same seeds; `scs-bench`'s `elastic` binary
//! asserts the ordering.
//!
//! The control signal is *demand-side*: [`ElasticFleetWorkload`]
//! accumulates each replica's charged CPU micros per sample window and
//! feeds the busiest live replica's windowed utilization (which can
//! exceed 1.0 — that's queue growth) to the [`Autoscaler`]. Fleet
//! membership changes happen between operations via
//! [`scs_dssp::ProxyFleet::add_replica`] / `remove_replica`, i.e. with
//! full state handoff under live load, and the freshness plane's
//! membership stamps make the timeline auditable afterwards.

use crate::overload::LoadProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs_core::{characterize_app, AnalysisOptions, Catalog, Exposures};
use scs_dssp::{
    Autoscaler, AutoscalerConfig, DsspConfig, FleetConfig, HomeServer, ProxyFleet, RoutingMode,
    ScaleAction, ScaleDecision, StrategyKind,
};
use scs_netsim::{
    run_observed, FaultSpec, HomeTrip, OpCost, RunMetrics, SimConfig, Sla, SystemSpec, Time,
    Workload, MS, SEC,
};
use scs_sqlkit::{parse_query, parse_update, Query, QueryTemplate, Update, UpdateTemplate, Value};
use scs_storage::{ColumnType, Database, TableSchema};
use std::collections::HashMap;
use std::sync::Arc;

/// Flash-crowd run shape. Defaults come from
/// [`ElasticRunConfig::flash_crowd`]; the static baselines reuse the
/// same config with [`ElasticRunConfig::static_fleet`].
#[derive(Debug, Clone)]
pub struct ElasticRunConfig {
    pub seed: u64,
    pub users: usize,
    pub duration: Time,
    pub warmup: Time,
    /// Mean exponential think time outside the spike.
    pub think_mean: Time,
    /// Spike window: inside it the arrival rate multiplies and every
    /// request leads with a hot-template op.
    pub spike_start: Time,
    pub spike_end: Time,
    /// Arrival-rate multiplier inside the spike. Combined with the
    /// request-mix shift toward the hot template this puts the hot
    /// template's own arrival rate at roughly 10× its baseline.
    pub spike_think_mult: f64,
    /// Query template count; templates spread over the ring.
    pub templates: usize,
    /// The template the flash crowd hammers.
    pub hot_template: usize,
    /// Item id space (background queries draw uniformly from it).
    pub items: usize,
    /// The crowd re-reads a few ids, so hot ops mostly hit cache.
    pub hot_items: usize,
    /// Percent of non-leading ops that are updates (cache writes).
    pub update_pct: u32,
    pub ops_per_request: usize,
    /// DSSP CPU charge for a cache hit / miss (µs) on the hot
    /// template's point-lookup.
    pub hit_cost: Time,
    pub miss_cost: Time,
    /// Background templates are heavier report-style queries: their
    /// hit/miss CPU charge is this multiple of the hot point-lookup's.
    /// This is what makes adding replicas genuinely relieve the hot
    /// node — the background arcs it sheds carry real weight.
    pub bg_cost_mult: Time,
    /// Home CPU per miss/update round trip (µs).
    pub home_cpu: Time,
    pub initial_replicas: usize,
    /// `None` = static fleet (no membership changes).
    pub autoscaler: Option<AutoscalerConfig>,
    /// Autoscaler sampling window.
    pub sample_micros: Time,
    /// Per-entry staleness lease on every replica.
    pub lease_micros: Option<u64>,
    /// Observatory bucket width for the exported time series.
    pub bucket_micros: Time,
}

impl ElasticRunConfig {
    /// The autoscaled flash-crowd run: 2 replicas at rest, scale-out
    /// allowed to 8, a ~10× crowd on template 0 for a 30 s window in
    /// the middle of the run.
    pub fn flash_crowd(seed: u64) -> ElasticRunConfig {
        let mut autoscaler = AutoscalerConfig::paper(2, 8);
        // The scale-in signal is the *busiest* node's windowed
        // utilization — the max over replicas of a noisy per-window
        // estimate. The post-crowd tail settles near 0.3 per node on
        // the calibrated workload, but the max-of-k statistic rides
        // well above the mean, so the paper default threshold (0.25)
        // parks the fleet at its peak forever. 0.5 tracks the same
        // intent and still leaves a wide hysteresis band below 0.85.
        autoscaler.scale_in_util = 0.5;
        // While the queue built during the ramp drains, the hot node's
        // windows stay above the scale-out threshold even once capacity
        // is sufficient; a longer cooldown keeps that transient from
        // buying replicas the steady state doesn't need.
        autoscaler.cooldown_micros = 8 * SEC;
        ElasticRunConfig {
            seed,
            users: 50,
            duration: 150 * SEC,
            warmup: 10 * SEC,
            think_mean: 6 * SEC,
            spike_start: 45 * SEC,
            spike_end: 75 * SEC,
            spike_think_mult: 6.0,
            templates: 16,
            hot_template: 0,
            items: 48,
            hot_items: 4,
            update_pct: 6,
            ops_per_request: 3,
            hit_cost: 12 * MS,
            miss_cost: 18 * MS,
            bg_cost_mult: 4,
            home_cpu: 2 * MS,
            initial_replicas: 2,
            autoscaler: Some(autoscaler),
            sample_micros: 2 * SEC,
            lease_micros: Some(5 * SEC),
            bucket_micros: 2 * SEC,
        }
    }

    /// The same run with a fixed fleet of `n` replicas and no
    /// autoscaler — the static baselines the elastic fleet is compared
    /// against.
    pub fn static_fleet(mut self, n: usize) -> ElasticRunConfig {
        assert!(n >= 1);
        self.initial_replicas = n;
        self.autoscaler = None;
        self
    }

    /// CI-sized variant: same shape, third of the timeline.
    pub fn smoke(mut self) -> ElasticRunConfig {
        self.duration = 60 * SEC;
        self.warmup = 6 * SEC;
        self.spike_start = 18 * SEC;
        self.spike_end = 36 * SEC;
        self
    }

    fn profile(&self) -> LoadProfile {
        LoadProfile::spike(self.spike_start, self.spike_end, self.spike_think_mult)
    }
}

/// One membership change applied mid-run, for the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipChange {
    pub at_micros: Time,
    pub action: ScaleAction,
    /// Stable id of the joined/removed replica.
    pub replica: usize,
    /// Live replica count after the change.
    pub live_after: usize,
    /// Busiest live replica's windowed utilization that tripped it.
    pub busiest_util: f64,
    /// Cache entries handed off during the change.
    pub handed: u64,
}

enum ElasticOp {
    Query(Query),
    Update(Update),
}

/// The flash-crowd workload over an elastic [`ProxyFleet`]. Implements
/// [`Workload`] for `scs-netsim`, owning the load profile (think-time
/// modulation + spike request mix), the demand-side utilization signal,
/// and the autoscaler loop.
pub struct ElasticFleetWorkload {
    fleet: ProxyFleet,
    queries: Vec<Arc<QueryTemplate>>,
    update: Arc<UpdateTemplate>,
    update_tid: usize,
    cfg: ElasticRunConfig,
    profile: LoadProfile,
    rng: StdRng,
    pending: Vec<Vec<ElasticOp>>,
    autoscaler: Option<Autoscaler>,
    now: Time,
    window_start: Time,
    /// Charged DSSP CPU per replica id in the current sample window.
    window_busy: HashMap<usize, Time>,
    timeline: Vec<MembershipChange>,
    node_micro_seconds: f64,
    last_change_at: Time,
    peak_replicas: usize,
    handed_entries: u64,
    peak_busiest_util: f64,
}

impl ElasticFleetWorkload {
    pub fn new(cfg: &ElasticRunConfig) -> ElasticFleetWorkload {
        assert!(cfg.templates >= 2, "need background templates");
        assert!(cfg.hot_template < cfg.templates);
        assert!(cfg.hot_items >= 1 && cfg.hot_items <= cfg.items);
        let schema = TableSchema::builder("items")
            .column("item_id", ColumnType::Int)
            .column("val", ColumnType::Int)
            .primary_key(&["item_id"])
            .build()
            .expect("static schema");
        let mut db = Database::new();
        db.create_table(schema.clone()).expect("fresh database");
        for i in 0..cfg.items {
            db.insert_row(
                "items",
                vec![Value::Int(i as i64), Value::Int(i as i64 * 3)],
            )
            .expect("static rows");
        }
        // Every template is the same point lookup; distinct template
        // ids are what matters — each owns its own ring arcs and its
        // own cache partition.
        let queries: Vec<Arc<QueryTemplate>> = (0..cfg.templates)
            .map(|_| Arc::new(parse_query("SELECT val FROM items WHERE item_id = ?").unwrap()))
            .collect();
        let update = Arc::new(parse_update("UPDATE items SET val = ? WHERE item_id = ?").unwrap());
        let catalog = Catalog::new([schema]);
        let matrix = characterize_app(
            std::slice::from_ref(&update),
            &queries,
            &catalog,
            AnalysisOptions::default(),
        );
        let exposures: Exposures = StrategyKind::ViewInspection.exposures(1, cfg.templates);
        let config = DsspConfig::new("elastic", exposures, matrix);
        let fleet_cfg = FleetConfig {
            proxies: cfg.initial_replicas,
            routing: RoutingMode::HashByTemplate,
            fanout: scs_dssp::FanoutConfig::immediate(),
            pipe_spec: FaultSpec::none(),
            pipe_seed: cfg.seed ^ 0x656c_6173, // "elas"
        };
        let mut fleet = ProxyFleet::new(config, HomeServer::new(db), fleet_cfg);
        fleet.set_lease_micros(cfg.lease_micros);
        fleet.enable_provenance();
        ElasticFleetWorkload {
            fleet,
            queries,
            update,
            update_tid: 0,
            cfg: cfg.clone(),
            profile: cfg.profile(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x0066_6c61_7368), // "flash"
            pending: Vec::new(),
            autoscaler: cfg.autoscaler.map(Autoscaler::new),
            now: 0,
            window_start: 0,
            window_busy: HashMap::new(),
            timeline: Vec::new(),
            node_micro_seconds: 0.0,
            last_change_at: 0,
            peak_replicas: cfg.initial_replicas,
            handed_entries: 0,
            peak_busiest_util: 0.0,
        }
    }

    pub fn fleet(&self) -> &ProxyFleet {
        &self.fleet
    }

    pub fn fleet_mut(&mut self) -> &mut ProxyFleet {
        &mut self.fleet
    }

    pub fn timeline(&self) -> &[MembershipChange] {
        &self.timeline
    }

    pub fn decisions(&self) -> &[ScaleDecision] {
        self.autoscaler.as_ref().map_or(&[], |a| a.decisions())
    }

    fn sample_query(&mut self, tid: usize, hot: bool) -> ElasticOp {
        let item = if hot {
            self.rng.gen_range(0..self.cfg.hot_items)
        } else {
            self.rng.gen_range(0..self.cfg.items)
        } as i64;
        ElasticOp::Query(
            Query::bind(tid, self.queries[tid].clone(), vec![Value::Int(item)])
                .expect("validated template"),
        )
    }

    fn sample_background_op(&mut self) -> ElasticOp {
        if self.rng.gen_range(0..100u32) < self.cfg.update_pct {
            let item = self.rng.gen_range(0..self.cfg.items) as i64;
            let val = self.rng.gen_range(0..1_000_000);
            ElasticOp::Update(
                Update::bind(
                    self.update_tid,
                    self.update.clone(),
                    vec![Value::Int(val), Value::Int(item)],
                )
                .expect("validated template"),
            )
        } else {
            let tid = self.rng.gen_range(0..self.cfg.templates);
            self.sample_query(tid, false)
        }
    }

    fn in_spike(&self) -> bool {
        self.profile.multiplier_at(self.now) > 1.0
    }

    /// Accrues node-seconds up to `now` at the current fleet size.
    fn accrue_node_time(&mut self, now: Time) {
        let dt = now.saturating_sub(self.last_change_at);
        self.node_micro_seconds += self.fleet.len() as f64 * dt as f64;
        self.last_change_at = now;
    }

    /// Closes a sample window: feed the autoscaler, apply its decision
    /// as a live membership change, reset the window accumulators.
    fn autoscale_tick(&mut self, now: Time) {
        let live = self.fleet.replica_ids();
        let window = now.saturating_sub(self.window_start).max(1);
        let busiest = live
            .iter()
            .map(|id| self.window_busy.get(id).copied().unwrap_or(0) as f64 / window as f64)
            .fold(0.0, f64::max);
        self.peak_busiest_util = self.peak_busiest_util.max(busiest);
        // Admission shedding is not modeled in this scenario; overload
        // expresses itself purely as queue growth (busiest > 1.0).
        let shed_ratio = 0.0;
        let action = match self.autoscaler.as_mut() {
            Some(a) => a.observe(now, busiest, shed_ratio, live.len()),
            None => None,
        };
        if let Some(action) = action {
            self.accrue_node_time(now);
            match action {
                ScaleAction::Out => {
                    let out = self.fleet.add_replica();
                    self.handed_entries += out.handed;
                    self.timeline.push(MembershipChange {
                        at_micros: now,
                        action,
                        replica: out.replica,
                        live_after: self.fleet.len(),
                        busiest_util: busiest,
                        handed: out.handed,
                    });
                }
                ScaleAction::In => {
                    // Retire the idlest live replica in this window.
                    let victim = live
                        .iter()
                        .copied()
                        .min_by_key(|id| self.window_busy.get(id).copied().unwrap_or(0))
                        .expect("autoscaler respects min_replicas >= 1");
                    let out = self.fleet.remove_replica(victim);
                    self.handed_entries += out.handed;
                    self.timeline.push(MembershipChange {
                        at_micros: now,
                        action,
                        replica: victim,
                        live_after: self.fleet.len(),
                        busiest_util: busiest,
                        handed: out.handed,
                    });
                }
            }
            self.peak_replicas = self.peak_replicas.max(self.fleet.len());
        }
        self.window_start = now;
        self.window_busy.clear();
    }

    /// Final node-seconds accounting; call once after the run.
    pub fn finish(&mut self, end: Time) {
        self.accrue_node_time(end);
    }

    /// Integral of live replica count over the run, in node-seconds.
    pub fn node_seconds(&self) -> f64 {
        self.node_micro_seconds / 1_000_000.0
    }

    pub fn peak_replicas(&self) -> usize {
        self.peak_replicas
    }

    pub fn handed_entries(&self) -> u64 {
        self.handed_entries
    }

    /// Highest busiest-live-replica windowed utilization seen (> 1.0
    /// means demand outran the node: queue growth).
    pub fn peak_busiest_util(&self) -> f64 {
        self.peak_busiest_util
    }
}

impl Workload for ElasticFleetWorkload {
    fn begin_request(&mut self, client: usize) -> usize {
        if self.pending.len() <= client {
            self.pending.resize_with(client + 1, Vec::new);
        }
        let spike = self.in_spike();
        let hot_tid = self.cfg.hot_template;
        let mut ops = Vec::with_capacity(self.cfg.ops_per_request);
        // Inside the spike every request leads with a hot-template op;
        // outside, the hot template is just one uniform choice among
        // the others. Mix shift × arrival multiplier ≈ 10× on the hot
        // template.
        if spike {
            let op = self.sample_query(hot_tid, true);
            ops.push(op);
        } else {
            let op = self.sample_background_op();
            ops.push(op);
        }
        for _ in 1..self.cfg.ops_per_request {
            let op = self.sample_background_op();
            ops.push(op);
        }
        let n = ops.len();
        self.pending[client] = ops;
        n
    }

    fn execute_op(&mut self, client: usize, op_index: usize) -> OpCost {
        let cfg_hit = self.cfg.hit_cost;
        let cfg_miss = self.cfg.miss_cost;
        let cfg_home = self.cfg.home_cpu;
        let cost = match &self.pending[client][op_index] {
            ElasticOp::Query(q) => {
                let statement_bytes = q.statement_text().len() as u64;
                let weight = if q.template_id == self.cfg.hot_template {
                    1
                } else {
                    self.cfg.bg_cost_mult
                };
                let fr = self.fleet.execute_query(q).expect("validated templates");
                let result_bytes = fr.resp.result.approx_size_bytes() as u64;
                let dssp_cpu = if fr.resp.hit { cfg_hit } else { cfg_miss } * weight;
                let home_trip = (!fr.resp.hit).then_some(HomeTrip {
                    request_bytes: statement_bytes + 64,
                    reply_bytes: result_bytes + 64,
                    home_cpu: cfg_home,
                    shard: 0,
                });
                OpCost {
                    dssp_cpu,
                    proxy: fr.proxy,
                    home_trip,
                    reply_bytes: result_bytes + 128,
                }
            }
            ElasticOp::Update(u) => {
                let statement_bytes = u.statement_text().len() as u64;
                let fr = self.fleet.execute_update(u).expect("validated templates");
                OpCost {
                    dssp_cpu: cfg_hit,
                    proxy: fr.proxy,
                    home_trip: Some(HomeTrip {
                        request_bytes: statement_bytes + 64,
                        reply_bytes: 64,
                        home_cpu: cfg_home,
                        shard: 0,
                    }),
                    reply_bytes: 128,
                }
            }
        };
        *self.window_busy.entry(cost.proxy).or_insert(0) += cost.dssp_cpu;
        cost
    }

    fn hit_rate(&self) -> f64 {
        self.fleet.rollup_stats().hit_rate()
    }

    fn observe_time(&mut self, now: Time) {
        self.now = now;
        self.fleet.set_sim_time_micros(now);
        if now.saturating_sub(self.window_start) >= self.cfg.sample_micros {
            self.autoscale_tick(now);
        }
    }

    fn think_multiplier(&self, now: Time) -> f64 {
        self.profile.multiplier_at(now)
    }

    fn live_proxies(&self) -> Option<Vec<usize>> {
        Some(self.fleet.replica_ids())
    }
}

/// What one flash-crowd run produced.
#[derive(Debug)]
pub struct ElasticReport {
    pub metrics: RunMetrics,
    /// p90 response time over the measurement window (µs).
    pub p90_micros: Option<Time>,
    /// Paper SLO: p90 ≤ 2 s with a completed-request floor.
    pub slo_ok: bool,
    /// Integral of live replica count over the run.
    pub node_seconds: f64,
    pub replicas_start: usize,
    pub replicas_peak: usize,
    pub replicas_end: usize,
    pub joins: usize,
    pub leaves: usize,
    /// Cache entries handed off across all membership changes.
    pub handed_entries: u64,
    /// Highest busiest-live-replica windowed utilization seen; > 1.0
    /// means queue growth on the hot node.
    pub peak_busiest_util: f64,
    pub timeline: Vec<MembershipChange>,
    pub decisions: Vec<ScaleDecision>,
    /// Freshness-plane oracle: lease violations across every replica
    /// that ever existed. Must be 0 — membership changes included.
    pub stale_beyond_lease: u64,
    /// PR 6 conservation ledger: sent == applied + duplicate +
    /// recovered_over + in_flight, for every replica ever registered.
    pub conservation_balanced: bool,
    /// Membership stamps journaled on the freshness plane.
    pub membership_stamps: usize,
}

/// Runs one flash-crowd configuration end to end and audits the
/// freshness plane afterwards.
pub fn run_elastic(cfg: &ElasticRunConfig) -> ElasticReport {
    let mut w = ElasticFleetWorkload::new(cfg);
    let sim = SimConfig {
        users: cfg.users,
        duration: cfg.duration,
        warmup: cfg.warmup,
        think_mean: cfg.think_mean,
        seed: cfg.seed,
        spec: SystemSpec {
            dssp_nodes: cfg.initial_replicas,
            ..SystemSpec::default()
        },
    };
    let metrics = run_observed(&sim, &mut w, Some(cfg.bucket_micros));
    w.fleet_mut().drain();
    w.finish(cfg.duration);
    let sla = Sla::paper();
    let slo_ok = sla.met_by(&metrics);
    let p90 = metrics.percentile(sla.quantile);
    let (stale, balanced, stamps) = {
        let prov = w
            .fleet()
            .provenance()
            .expect("enabled at construction")
            .clone();
        let log = prov.lock().expect("no concurrent holders after the run");
        let final_epoch = w.fleet().home().epoch();
        let stale: u64 = (0..log.replica_count())
            .map(|r| log.replica(r).stale_beyond_lease)
            .sum();
        let balanced =
            (0..log.replica_count()).all(|r| log.conservation(r, final_epoch).balanced());
        (stale, balanced, log.membership().len())
    };
    let joins = w
        .timeline()
        .iter()
        .filter(|c| c.action == ScaleAction::Out)
        .count();
    let leaves = w.timeline().len() - joins;
    ElasticReport {
        p90_micros: p90,
        slo_ok,
        node_seconds: w.node_seconds(),
        replicas_start: cfg.initial_replicas,
        replicas_peak: w.peak_replicas(),
        replicas_end: w.fleet().len(),
        joins,
        leaves,
        handed_entries: w.handed_entries(),
        peak_busiest_util: w.peak_busiest_util(),
        timeline: w.timeline().to_vec(),
        decisions: w.decisions().to_vec(),
        stale_beyond_lease: stale,
        conservation_balanced: balanced,
        membership_stamps: stamps,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dev tool, not a gate: prints the flash-crowd bracket for a few
    /// seeds when recalibrating the scenario constants. Run with
    /// `cargo test -p scs-apps calibrate -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn calibrate() {
        for seed in [1u64, 7, 11, 23] {
            for (name, cfg) in [
                ("auto", ElasticRunConfig::flash_crowd(seed)),
                ("st-2", ElasticRunConfig::flash_crowd(seed).static_fleet(2)),
                ("st-4", ElasticRunConfig::flash_crowd(seed).static_fleet(4)),
                ("st-8", ElasticRunConfig::flash_crowd(seed).static_fleet(8)),
            ] {
                let r = run_elastic(&cfg);
                eprintln!(
                    "{name} s{seed}: p90={:?}ms slo={} peak_util={:.2} peak={} joins={} leaves={} node_s={:.1} reqs={} hit={:.2}",
                    r.p90_micros.map(|t| t / 1000),
                    r.slo_ok,
                    r.peak_busiest_util,
                    r.replicas_peak,
                    r.joins,
                    r.leaves,
                    r.node_seconds,
                    r.metrics.requests_completed,
                    r.metrics.hit_rate,
                );
            }
        }
    }

    #[test]
    fn static_fleet_runs_without_membership_changes() {
        let cfg = ElasticRunConfig::flash_crowd(7).smoke().static_fleet(3);
        let r = run_elastic(&cfg);
        assert_eq!(r.replicas_start, 3);
        assert_eq!(r.replicas_end, 3);
        assert!(r.timeline.is_empty());
        assert_eq!(r.joins + r.leaves, 0);
        assert!(r.metrics.requests_completed > 0);
        assert_eq!(r.stale_beyond_lease, 0);
        assert!(r.conservation_balanced);
        // Static node-seconds are exactly size × horizon.
        let expect = 3.0 * (cfg.duration as f64 / 1_000_000.0);
        assert!((r.node_seconds - expect).abs() < 1e-6);
    }

    #[test]
    fn autoscaled_smoke_scales_out_under_the_crowd_and_stays_fresh() {
        let cfg = ElasticRunConfig::flash_crowd(7).smoke();
        let r = run_elastic(&cfg);
        assert!(
            r.replicas_peak > cfg.initial_replicas,
            "the crowd must trip at least one scale-out (peak {})",
            r.replicas_peak
        );
        assert!(r.joins >= 1);
        assert_eq!(r.stale_beyond_lease, 0, "lease bound holds across joins");
        assert!(r.conservation_balanced, "ledger balances across epochs");
        assert!(
            r.membership_stamps > 0,
            "membership is journaled on the freshness plane"
        );
        // The timeline and the autoscaler journal agree.
        assert_eq!(r.timeline.len(), r.decisions.len());
    }
}
