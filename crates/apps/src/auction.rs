//! `auction` — a RUBiS-like auction site modeled after ebay.com (§5.1):
//! users sell items in categories and regions, place bids, buy outright,
//! and leave comments/ratings on each other.
//!
//! The historical record of user bids is the paper's example of moderately
//! sensitive auction data that the static analysis can encrypt for free
//! (§5.4).

use crate::defs::{query_def, update_def, AppDef, Op, ParamSpec, RequestType, Sensitivity};
use crate::gen::words;
use rand::rngs::StdRng;
use rand::Rng;
use scs_core::Attr;
use scs_sqlkit::Value;
use scs_storage::{ColumnType, Database, TableSchema};

/// Row counts used by [`populate`].
#[derive(Debug, Clone, Copy)]
pub struct AuctionScale {
    pub users: i64,
    pub items: i64,
}

impl Default for AuctionScale {
    fn default() -> Self {
        AuctionScale {
            users: 1_000,
            items: 1_300,
        }
    }
}

pub fn schemas() -> Vec<TableSchema> {
    vec![
        TableSchema::builder("regions")
            .column("r_id", ColumnType::Int)
            .column("r_name", ColumnType::Str)
            .primary_key(&["r_id"])
            .index("r_name")
            .build()
            .expect("static schema"),
        TableSchema::builder("categories")
            .column("cat_id", ColumnType::Int)
            .column("cat_name", ColumnType::Str)
            .primary_key(&["cat_id"])
            .index("cat_name")
            .build()
            .expect("static schema"),
        TableSchema::builder("users")
            .column("u_id", ColumnType::Int)
            .column("u_nickname", ColumnType::Str)
            .column("u_password", ColumnType::Str)
            .column("u_email", ColumnType::Str)
            .column("u_rating", ColumnType::Int)
            .column("u_balance", ColumnType::Real)
            .column("u_region", ColumnType::Int)
            .primary_key(&["u_id"])
            .foreign_key(&["u_region"], "regions", &["r_id"])
            .index("u_nickname")
            .build()
            .expect("static schema"),
        TableSchema::builder("items")
            .column("it_id", ColumnType::Int)
            .column("it_name", ColumnType::Str)
            .column("it_seller", ColumnType::Int)
            .column("it_category", ColumnType::Int)
            .column("it_initial_price", ColumnType::Real)
            .column("it_max_bid", ColumnType::Real)
            .column("it_nb_of_bids", ColumnType::Int)
            .column("it_end_date", ColumnType::Int)
            .primary_key(&["it_id"])
            .foreign_key(&["it_seller"], "users", &["u_id"])
            .foreign_key(&["it_category"], "categories", &["cat_id"])
            .index("it_category")
            .index("it_seller")
            .build()
            .expect("static schema"),
        TableSchema::builder("bids")
            .column("b_id", ColumnType::Int)
            .column("b_user_id", ColumnType::Int)
            .column("b_item_id", ColumnType::Int)
            .column("b_qty", ColumnType::Int)
            .column("b_bid", ColumnType::Real)
            .column("b_date", ColumnType::Int)
            .primary_key(&["b_id"])
            .foreign_key(&["b_user_id"], "users", &["u_id"])
            .foreign_key(&["b_item_id"], "items", &["it_id"])
            .index("b_item_id")
            .index("b_user_id")
            .build()
            .expect("static schema"),
        TableSchema::builder("comments")
            .column("cm_id", ColumnType::Int)
            .column("cm_from", ColumnType::Int)
            .column("cm_to", ColumnType::Int)
            .column("cm_item", ColumnType::Int)
            .column("cm_rating", ColumnType::Int)
            .column("cm_text", ColumnType::Str)
            .primary_key(&["cm_id"])
            .foreign_key(&["cm_from"], "users", &["u_id"])
            .foreign_key(&["cm_to"], "users", &["u_id"])
            .foreign_key(&["cm_item"], "items", &["it_id"])
            .index("cm_to")
            .build()
            .expect("static schema"),
        TableSchema::builder("buy_now")
            .column("bn_id", ColumnType::Int)
            .column("bn_buyer", ColumnType::Int)
            .column("bn_item", ColumnType::Int)
            .column("bn_qty", ColumnType::Int)
            .column("bn_date", ColumnType::Int)
            .primary_key(&["bn_id"])
            .foreign_key(&["bn_buyer"], "users", &["u_id"])
            .foreign_key(&["bn_item"], "items", &["it_id"])
            .build()
            .expect("static schema"),
    ]
}

fn queries() -> Vec<crate::defs::TemplateDef<scs_sqlkit::QueryTemplate>> {
    use ParamSpec::*;
    use Sensitivity::*;
    vec![
        // 0
        query_def(
            "getUser",
            "SELECT u_nickname, u_rating, u_region FROM users WHERE u_id = ?",
            vec![PopularId("users")],
            Moderate,
        ),
        // 1
        query_def(
            "getUserByNickname",
            "SELECT u_id, u_password, u_email FROM users WHERE u_nickname = ?",
            vec![Keyed {
                table: "users",
                pattern: "bidder{}",
            }],
            High,
        ),
        // 2
        query_def(
            "getItem",
            "SELECT it_name, it_seller, it_initial_price, it_max_bid, it_nb_of_bids, \
             it_end_date FROM items WHERE it_id = ?",
            vec![PopularId("items")],
            Low,
        ),
        // 3
        query_def(
            "getItemsByCategory",
            "SELECT it_id, it_name, it_max_bid, it_end_date FROM items \
             WHERE it_category = ? AND it_end_date >= ? ORDER BY it_end_date LIMIT 25",
            vec![ExistingId("categories"), Int(0, 4)],
            Low,
        ),
        // 4
        query_def(
            "getItemsByRegion",
            "SELECT items.it_id, items.it_name, items.it_max_bid FROM items, users \
             WHERE items.it_seller = users.u_id AND users.u_region = ? \
             AND items.it_category = ? LIMIT 25",
            vec![ExistingId("regions"), ExistingId("categories")],
            Low,
        ),
        // 5
        query_def(
            "getCategory",
            "SELECT cat_name FROM categories WHERE cat_id = ?",
            vec![ExistingId("categories")],
            Low,
        ),
        // 6
        query_def(
            "getCategoryByName",
            "SELECT cat_id FROM categories WHERE cat_name = ?",
            vec![Word(words::CATEGORIES)],
            Low,
        ),
        // 7
        query_def(
            "getRegion",
            "SELECT r_name FROM regions WHERE r_id = ?",
            vec![ExistingId("regions")],
            Low,
        ),
        // 8
        query_def(
            "getRegionByName",
            "SELECT r_id FROM regions WHERE r_name = ?",
            vec![Word(words::REGIONS)],
            Low,
        ),
        // 9 — the bid history: moderately sensitive (§5.4)
        query_def(
            "getBidHistory",
            "SELECT bids.b_user_id, bids.b_bid, bids.b_date FROM bids \
             WHERE b_item_id = ? ORDER BY b_date DESC LIMIT 20",
            vec![PopularId("items")],
            Moderate,
        ),
        // 10 — aggregate
        query_def(
            "getMaxBid",
            "SELECT MAX(b_bid) FROM bids WHERE b_item_id = ?",
            vec![PopularId("items")],
            Moderate,
        ),
        // 11 — aggregate
        query_def(
            "countBids",
            "SELECT COUNT(*) FROM bids WHERE b_item_id = ?",
            vec![PopularId("items")],
            Low,
        ),
        // 12
        query_def(
            "getUserBids",
            "SELECT bids.b_item_id, bids.b_bid, bids.b_date FROM bids \
             WHERE b_user_id = ? ORDER BY b_date DESC LIMIT 20",
            vec![ExistingId("users")],
            Moderate,
        ),
        // 13
        query_def(
            "getUserItems",
            "SELECT it_id, it_name, it_max_bid, it_end_date FROM items \
             WHERE it_seller = ? LIMIT 25",
            vec![ExistingId("users")],
            Moderate,
        ),
        // 14
        query_def(
            "getComments",
            "SELECT cm_from, cm_rating, cm_text FROM comments WHERE cm_to = ? LIMIT 25",
            vec![PopularId("users")],
            Moderate,
        ),
        // 15 — aggregate
        query_def(
            "getUserCommentCount",
            "SELECT COUNT(*) FROM comments WHERE cm_to = ?",
            vec![PopularId("users")],
            Low,
        ),
        // 16
        query_def(
            "getEndingAuctions",
            "SELECT it_id, it_name, it_end_date FROM items WHERE it_end_date >= ? \
             ORDER BY it_end_date LIMIT 25",
            vec![Int(0, 4)],
            Low,
        ),
        // 17
        query_def(
            "getHotItems",
            "SELECT it_id, it_name, it_nb_of_bids FROM items WHERE it_nb_of_bids >= ? \
             ORDER BY it_nb_of_bids DESC LIMIT 10",
            vec![Int(8, 12)],
            Low,
        ),
        // 18
        query_def(
            "getBidderNames",
            "SELECT users.u_nickname, bids.b_bid FROM users, bids \
             WHERE users.u_id = bids.b_user_id AND bids.b_item_id = ? LIMIT 20",
            vec![PopularId("items")],
            Moderate,
        ),
        // 19
        query_def(
            "getItemSeller",
            "SELECT users.u_nickname, users.u_rating FROM users, items \
             WHERE users.u_id = items.it_seller AND items.it_id = ?",
            vec![PopularId("items")],
            Low,
        ),
        // 20
        query_def(
            "getBuyNowHistory",
            "SELECT bn_item, bn_qty, bn_date FROM buy_now WHERE bn_buyer = ? LIMIT 20",
            vec![ExistingId("users")],
            Moderate,
        ),
        // 21
        query_def(
            "getItemBuyNows",
            "SELECT bn_buyer, bn_qty, bn_date FROM buy_now WHERE bn_item = ? LIMIT 20",
            vec![PopularId("items")],
            Moderate,
        ),
        // 22
        query_def(
            "getCheapOpenAuctions",
            "SELECT it_id, it_name, it_max_bid FROM items \
             WHERE it_max_bid <= ? AND it_end_date >= ? ORDER BY it_max_bid LIMIT 25",
            vec![Int(20, 24), Int(0, 4)],
            Low,
        ),
        // 23
        query_def(
            "getUserBalance",
            "SELECT u_balance FROM users WHERE u_id = ?",
            vec![ExistingId("users")],
            High,
        ),
    ]
}

fn updates() -> Vec<crate::defs::TemplateDef<scs_sqlkit::UpdateTemplate>> {
    use ParamSpec::*;
    use Sensitivity::*;
    vec![
        // 0
        update_def(
            "registerUser",
            "INSERT INTO users (u_id, u_nickname, u_password, u_email, u_rating, \
             u_balance, u_region) VALUES (?, ?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("users"),
                Text(10),
                Text(12),
                Text(14),
                Int(0, 0),
                Int(0, 0),
                ExistingId("regions"),
            ],
            High,
        ),
        // 1
        update_def(
            "registerItem",
            "INSERT INTO items (it_id, it_name, it_seller, it_category, \
             it_initial_price, it_max_bid, it_nb_of_bids, it_end_date) \
             VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("items"),
                Text(16),
                ExistingId("users"),
                ExistingId("categories"),
                Int(1, 500),
                Int(0, 0),
                Int(0, 0),
                Int(100, 1_000),
            ],
            Low,
        ),
        // 2
        update_def(
            "storeBid",
            "INSERT INTO bids (b_id, b_user_id, b_item_id, b_qty, b_bid, b_date) \
             VALUES (?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("bids"),
                ExistingId("users"),
                PopularId("items"),
                Int(1, 3),
                Int(1, 900),
                Int(0, 1_000),
            ],
            Moderate,
        ),
        // 3
        update_def(
            "updateItemBid",
            "UPDATE items SET it_max_bid = ?, it_nb_of_bids = ? WHERE it_id = ?",
            vec![Int(1, 900), Int(1, 50), PopularId("items")],
            Low,
        ),
        // 4
        update_def(
            "storeComment",
            "INSERT INTO comments (cm_id, cm_from, cm_to, cm_item, cm_rating, cm_text) \
             VALUES (?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("comments"),
                ExistingId("users"),
                ExistingId("users"),
                PopularId("items"),
                Int(-5, 5),
                Text(40),
            ],
            Moderate,
        ),
        // 5
        update_def(
            "updateUserRating",
            "UPDATE users SET u_rating = ? WHERE u_id = ?",
            vec![Int(-10, 100), ExistingId("users")],
            Moderate,
        ),
        // 6
        update_def(
            "storeBuyNow",
            "INSERT INTO buy_now (bn_id, bn_buyer, bn_item, bn_qty, bn_date) \
             VALUES (?, ?, ?, ?, ?)",
            vec![
                FreshId("buy_now"),
                ExistingId("users"),
                PopularId("items"),
                Int(1, 3),
                Int(0, 1_000),
            ],
            Moderate,
        ),
        // 7
        update_def(
            "updateUserBalance",
            "UPDATE users SET u_balance = ? WHERE u_id = ?",
            vec![Int(0, 10_000), ExistingId("users")],
            High,
        ),
        // 8
        update_def(
            "closeAuction",
            "DELETE FROM items WHERE it_id = ?",
            vec![ExistingId("items")],
            Low,
        ),
    ]
}

fn requests() -> Vec<RequestType> {
    use Op::*;
    vec![
        RequestType {
            name: "home",
            weight: 12,
            ops: vec![Query(16), Query(17)],
        },
        RequestType {
            name: "browse-category",
            weight: 14,
            ops: vec![Query(6), Query(3), Query(2)],
        },
        RequestType {
            name: "browse-region",
            weight: 7,
            ops: vec![Query(8), Query(4), Query(2)],
        },
        RequestType {
            name: "view-item",
            weight: 18,
            ops: vec![Query(2), Query(19), Query(10), Query(11)],
        },
        RequestType {
            name: "bid-history",
            weight: 6,
            ops: vec![Query(9), Query(18)],
        },
        RequestType {
            name: "place-bid",
            weight: 8,
            ops: vec![Query(1), Query(2), Query(10), Update(2), Update(3)],
        },
        RequestType {
            name: "buy-now",
            weight: 3,
            ops: vec![Query(1), Query(2), Update(6)],
        },
        RequestType {
            name: "view-user",
            weight: 8,
            ops: vec![Query(0), Query(14), Query(15)],
        },
        RequestType {
            name: "leave-comment",
            weight: 3,
            ops: vec![Query(1), Query(0), Update(4), Update(5)],
        },
        RequestType {
            name: "sell-item",
            weight: 4,
            ops: vec![Query(1), Query(6), Update(1)],
        },
        RequestType {
            name: "register",
            weight: 2,
            ops: vec![Query(8), Update(0)],
        },
        RequestType {
            name: "my-account",
            weight: 5,
            ops: vec![Query(1), Query(12), Query(13), Query(20), Query(23)],
        },
        RequestType {
            name: "bargains",
            weight: 4,
            ops: vec![Query(22), Query(2)],
        },
        RequestType {
            name: "close-auction",
            weight: 1,
            ops: vec![Query(13), Update(8)],
        },
    ]
}

/// The complete auction application definition.
pub fn auction() -> AppDef {
    AppDef {
        name: "auction",
        schemas: schemas(),
        queries: queries(),
        updates: updates(),
        requests: requests(),
        // Account credentials and balances (SB-1386-style account data).
        sensitive_attrs: vec![
            Attr::new("users", "u_password"),
            Attr::new("users", "u_balance"),
        ],
    }
}

/// Populates the auction site; ids are `1..=n` per table.
pub fn populate(db: &mut Database, scale: AuctionScale, rng: &mut StdRng) {
    for (id, name) in words::REGIONS.iter().enumerate() {
        db.insert_row(
            "regions",
            vec![Value::Int(id as i64 + 1), Value::str(*name)],
        )
        .expect("fresh id");
    }
    for (id, name) in words::CATEGORIES.iter().enumerate() {
        db.insert_row(
            "categories",
            vec![Value::Int(id as i64 + 1), Value::str(*name)],
        )
        .expect("fresh id");
    }
    let regions = words::REGIONS.len() as i64;
    let cats = words::CATEGORIES.len() as i64;
    for id in 1..=scale.users {
        db.insert_row(
            "users",
            vec![
                Value::Int(id),
                Value::Str(format!("bidder{id}")),
                Value::Str(format!("pw{id}")),
                Value::Str(format!("bidder{id}@example.org")),
                Value::Int(rng.gen_range(-5..100)),
                Value::real(rng.gen_range(0..100_000) as f64 / 100.0),
                Value::Int(1 + (id % regions)),
            ],
        )
        .expect("fresh id");
    }
    for id in 1..=scale.items {
        db.insert_row(
            "items",
            vec![
                Value::Int(id),
                Value::Str(format!("auction item {id}")),
                Value::Int(1 + (id % scale.users)),
                Value::Int(1 + (id % cats)),
                Value::real(rng.gen_range(100..50_000) as f64 / 100.0),
                Value::real(rng.gen_range(100..90_000) as f64 / 100.0),
                Value::Int(rng.gen_range(0..30)),
                Value::Int(rng.gen_range(0..1_000)),
            ],
        )
        .expect("fresh id");
    }
    let bids = scale.items * 5;
    for id in 1..=bids {
        db.insert_row(
            "bids",
            vec![
                Value::Int(id),
                Value::Int(1 + (id * 3) % scale.users),
                Value::Int(1 + (id * 7) % scale.items),
                Value::Int(rng.gen_range(1..3)),
                Value::real(rng.gen_range(100..90_000) as f64 / 100.0),
                Value::Int(rng.gen_range(0..1_000)),
            ],
        )
        .expect("fresh id");
    }
    let comments = scale.users * 2;
    for id in 1..=comments {
        db.insert_row(
            "comments",
            vec![
                Value::Int(id),
                Value::Int(1 + (id * 5) % scale.users),
                Value::Int(1 + (id * 11) % scale.users),
                Value::Int(1 + (id * 13) % scale.items),
                Value::Int(rng.gen_range(-5..5)),
                Value::Str(format!("comment text {id}")),
            ],
        )
        .expect("fresh id");
    }
    let buy_nows = scale.items / 4;
    for id in 1..=buy_nows {
        db.insert_row(
            "buy_now",
            vec![
                Value::Int(id),
                Value::Int(1 + (id * 17) % scale.users),
                Value::Int(1 + (id * 19) % scale.items),
                Value::Int(rng.gen_range(1..3)),
                Value::Int(rng.gen_range(0..1_000)),
            ],
        )
        .expect("fresh id");
    }
}

/// The initial id-space sizes matching [`populate`].
pub fn id_spaces(scale: AuctionScale) -> crate::gen::IdSpaces {
    let mut ids = crate::gen::IdSpaces::default();
    ids.declare("regions", words::REGIONS.len() as i64);
    ids.declare("categories", words::CATEGORIES.len() as i64);
    ids.declare("users", scale.users);
    ids.declare("items", scale.items);
    ids.declare("bids", scale.items * 5);
    ids.declare("comments", scale.users * 2);
    ids.declare("buy_now", scale.items / 4);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn validates() {
        auction().validate().unwrap();
    }

    #[test]
    fn template_counts() {
        let app = auction();
        assert_eq!(app.queries.len(), 24);
        assert_eq!(app.updates.len(), 9);
    }

    #[test]
    fn aggregate_fraction_matches_paper() {
        let app = auction();
        let aggs = app
            .queries
            .iter()
            .filter(|q| q.template.has_aggregates() || !q.template.group_by.is_empty())
            .count();
        let frac = aggs as f64 / app.queries.len() as f64;
        assert!((0.07..=0.15).contains(&frac), "aggregate fraction {frac}");
    }

    #[test]
    fn all_templates_execute() {
        use scs_sqlkit::{Query, Update};
        let app = auction();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let scale = AuctionScale {
            users: 40,
            items: 50,
        };
        let mut rng = StdRng::seed_from_u64(8);
        populate(&mut db, scale, &mut rng);
        let mut gen = crate::gen::ParamGen::new(id_spaces(scale), 1.0);
        for (tid, qd) in app.queries.iter().enumerate() {
            let params = gen.bind_all(&qd.params, &mut rng);
            let q = Query::bind(tid, qd.template.clone(), params).unwrap();
            db.execute(&q)
                .unwrap_or_else(|e| panic!("query `{}` fails: {e}", qd.name));
        }
        for (tid, ud) in app.updates.iter().enumerate() {
            let params = gen.bind_all(&ud.params, &mut rng);
            let u = Update::bind(tid, ud.template.clone(), params).unwrap();
            db.apply(&u)
                .unwrap_or_else(|e| panic!("update `{}` fails: {e}", ud.name));
        }
    }
}
