//! Deterministic chaos harness: drives the toystore application through
//! the DSSP's fault-tolerant pathways under a seeded fault schedule and
//! checks every served result against a ground-truth oracle.
//!
//! The oracle keeps a snapshot of the master database after every applied
//! update. A result served at time `t` under lease `L` must equal the
//! query evaluated against *some* master state that was current during
//! `[t - L, t]` — the paper's freshness guarantee, relaxed by exactly the
//! lease window. A result matching no such state is **stale beyond the
//! lease**, the failure the epoch/lease machinery exists to rule out.
//!
//! With all faults disabled the harness reduces to the classic synchronous
//! pipeline: [`run_classic`] executes the same script through
//! `execute_query` / `execute_update`, and the chaos tests assert the two
//! produce identical response sequences.

use crate::driver::analysis_matrix;
use crate::gen::{IdSpaces, ParamGen};
use crate::toystore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs_dssp::{
    Dssp, DsspConfig, FtOutcome, FtUpdateOutcome, HomeLink, HomeServer, InvalidationMsg,
    RecoveryMode, RetryPolicy, StrategyKind,
};
use scs_netsim::{ChannelStats, FaultSpec, FaultyChannel, OutageSchedule, Time, MS, SEC};
use scs_sqlkit::{Query, QueryTemplate, Update, UpdateTemplate, Value};
use scs_storage::{Database, QueryResult};
use scs_telemetry::{shared_provenance, FlushTrigger, SharedProvenance, TimeSeries};
use std::sync::Arc;

/// Mean up/down durations for the proxy ↔ home link.
#[derive(Debug, Clone, Copy)]
pub struct OutageSpec {
    pub mean_up_micros: Time,
    pub mean_down_micros: Time,
}

/// One chaos scenario: a seed, an op budget, and the fault surfaces.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seeds the op script, the channel faults, the outage schedule, and
    /// the crash schedule (domain-separated internally).
    pub seed: u64,
    /// Operations to run.
    pub ops: usize,
    /// Simulated time between consecutive operations (µs).
    pub op_spacing_micros: Time,
    /// Staleness lease on cache entries; `None` = never expire.
    pub lease_micros: Option<u64>,
    pub recovery: RecoveryMode,
    pub strategy: StrategyKind,
    /// Faults on the home → proxy invalidation stream.
    pub channel_faults: FaultSpec,
    /// Outage windows on the proxy ↔ home link (`None` = always up).
    pub outage: Option<OutageSpec>,
    /// Explicit `[start, end)` outage windows; when set, overrides the
    /// randomized `outage` schedule. Lets a scenario place the dip
    /// exactly where a test (or a figure) wants it.
    pub scripted_outages: Option<Vec<(Time, Time)>>,
    /// Mean interval between proxy crash/restarts (`None` = never).
    pub crash_mean_interval_micros: Option<Time>,
    pub retry: RetryPolicy,
    /// When set, [`run_chaos`] records per-op outcome counters into a
    /// sim-time [`TimeSeries`] with this bucket width — the outage-dip /
    /// recovery curves exported by the `chaos` binary.
    pub timeseries_bucket_micros: Option<Time>,
    /// Scripted arrival-rate profile; `None` keeps the constant base
    /// spacing. A multiplier above 1 compresses the inter-op gap, so a
    /// step or ramp packs a load spike into its window.
    pub load: Option<crate::overload::LoadProfile>,
    /// Overload protection for the proxy (admission control, circuit
    /// breaker, brownout); `None` leaves the classic pathways unguarded.
    pub overload: Option<scs_dssp::OverloadConfig>,
}

impl ChaosConfig {
    /// All fault surfaces disabled: the run must be byte-identical to
    /// [`run_classic`] on the same seed.
    pub fn faultless(seed: u64, ops: usize) -> ChaosConfig {
        ChaosConfig {
            seed,
            ops,
            op_spacing_micros: MS,
            lease_micros: None,
            recovery: RecoveryMode::FlushAffected,
            strategy: StrategyKind::ViewInspection,
            channel_faults: FaultSpec::none(),
            outage: None,
            scripted_outages: None,
            crash_mean_interval_micros: None,
            retry: RetryPolicy::no_retries(),
            timeseries_bucket_micros: None,
            load: None,
            overload: None,
        }
    }

    /// Every fault surface enabled at once: lossy delayed duplicating
    /// invalidation stream, link outages, periodic crashes, and a lease
    /// bounding what any of it can cost.
    pub fn chaotic(seed: u64, ops: usize) -> ChaosConfig {
        ChaosConfig {
            seed,
            ops,
            op_spacing_micros: MS,
            lease_micros: Some(250 * MS),
            recovery: RecoveryMode::FlushAffected,
            strategy: StrategyKind::ViewInspection,
            channel_faults: FaultSpec {
                drop_probability: 0.10,
                duplicate_probability: 0.10,
                delay_probability: 0.30,
                max_delay_micros: 40 * MS,
                base_latency_micros: MS,
            },
            outage: Some(OutageSpec {
                mean_up_micros: 2 * SEC,
                mean_down_micros: 100 * MS,
            }),
            scripted_outages: None,
            crash_mean_interval_micros: Some(400 * MS),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_micros: 5 * MS,
                max_backoff_micros: 40 * MS,
                timeout_micros: 100 * MS,
                jitter: false,
            },
            timeseries_bucket_micros: None,
            load: None,
            overload: None,
        }
    }

    /// The observability demo: a clean run except for two scripted link
    /// outages, recorded into 100 ms time-series buckets. The exported
    /// curves must show the throughput dip, the degraded-serve spike
    /// while leased hits outlive the outage, and full recovery after the
    /// link returns (the acceptance scenario in `EXPERIMENTS.md`).
    pub fn outage_demo(seed: u64, ops: usize) -> ChaosConfig {
        ChaosConfig {
            seed,
            ops,
            op_spacing_micros: MS,
            lease_micros: Some(200 * MS),
            recovery: RecoveryMode::FlushAffected,
            strategy: StrategyKind::ViewInspection,
            channel_faults: FaultSpec::none(),
            outage: None,
            scripted_outages: Some(vec![(SEC, SEC + 500 * MS), (2 * SEC + 500 * MS, 3 * SEC)]),
            crash_mean_interval_micros: None,
            retry: RetryPolicy::no_retries(),
            timeseries_bucket_micros: Some(100 * MS),
            load: None,
            overload: None,
        }
    }
}

/// One scripted operation (pre-bound so every run replays identically).
#[derive(Debug, Clone)]
pub(crate) enum ScriptOp {
    Query { tid: usize, params: Vec<Value> },
    Update { tid: usize, params: Vec<Value> },
}

/// What one operation produced — the unit of baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutcome {
    Query {
        hit: bool,
        degraded: bool,
        result: QueryResult,
    },
    QueryUnavailable,
    UpdateApplied,
    UpdateUnavailable,
    /// The master rejected the statement (FK violation, duplicate key);
    /// nothing changed.
    UpdateRejected,
}

/// The proxy's fault/recovery counters, read back from its registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    pub epoch_gaps: u64,
    pub recovery_flushes: u64,
    pub recovery_flushed_entries: u64,
    pub duplicate_invalidations: u64,
    pub lease_expirations: u64,
    pub home_retries: u64,
    pub home_unavailable: u64,
    pub degraded_serves: u64,
    pub restarts: u64,
}

impl FaultCounters {
    pub fn from_dssp(dssp: &Dssp) -> FaultCounters {
        let reg = dssp.registry();
        FaultCounters {
            epoch_gaps: reg.counter_value("dssp.epoch_gaps"),
            recovery_flushes: reg.counter_value("dssp.recovery_flushes"),
            recovery_flushed_entries: reg.counter_value("dssp.recovery_flushed_entries"),
            duplicate_invalidations: reg.counter_value("dssp.duplicate_invalidations"),
            lease_expirations: reg.counter_value("dssp.lease_expirations"),
            home_retries: reg.counter_value("dssp.home_retries"),
            home_unavailable: reg.counter_value("dssp.home_unavailable"),
            degraded_serves: reg.counter_value("dssp.degraded_serves"),
            restarts: reg.counter_value("dssp.restarts"),
        }
    }

    /// Sum of every counter — zero exactly when the run saw no fault
    /// handling at all.
    pub fn total(&self) -> u64 {
        self.epoch_gaps
            + self.recovery_flushes
            + self.recovery_flushed_entries
            + self.duplicate_invalidations
            + self.lease_expirations
            + self.home_retries
            + self.home_unavailable
            + self.degraded_serves
            + self.restarts
    }
}

/// What a chaos run observed.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-op outcomes, in script order (the baseline-equivalence unit).
    pub outcomes: Vec<OpOutcome>,
    /// Served results matching **no** master state current within the
    /// lease window — must be zero; anything else is a consistency bug.
    pub stale_beyond_lease: u64,
    /// Worst observed age of any served result (µs): time since the
    /// matched master state was superseded. Bounded by the lease.
    pub max_observed_staleness_micros: u64,
    pub queries_served: u64,
    pub hits: u64,
    pub degraded_serves: u64,
    pub queries_unavailable: u64,
    pub updates_applied: u64,
    pub updates_unavailable: u64,
    pub updates_rejected: u64,
    pub channel: ChannelStats,
    pub counters: FaultCounters,
    /// Per-op outcome counters bucketed by sim time, present when
    /// [`ChaosConfig::timeseries_bucket_micros`] was set. Counter names:
    /// `query_served`, `query_hit`, `degraded_serve`,
    /// `query_unavailable`, `update_applied`, `update_unavailable`,
    /// `update_rejected`, `stale_beyond_lease`; plus a `staleness_us`
    /// histogram of observed (within-lease) staleness.
    pub timeseries: Option<TimeSeries>,
    /// The `[start, end)` link outage windows the run actually used —
    /// exported next to the curves so dips line up with their cause.
    pub outage_windows: Vec<(Time, Time)>,
    /// The freshness plane for the run (single replica 0): commit /
    /// flush / arrival stamps plus the explain engine. `None` for
    /// [`run_classic`] baselines.
    pub provenance: Option<SharedProvenance>,
    /// The oracle's master history timeline: `master_history_micros[e]`
    /// is the sim time at which master epoch `e` became current (index 0
    /// is the initial state at t=0). The provenance plane's commit
    /// stamps must agree with this — the cross-check the freshness
    /// property tests enforce. Empty for [`run_classic`].
    pub master_history_micros: Vec<Time>,
}

/// The bound application: templates, home server, proxy, and oracle.
pub(crate) struct Scenario {
    pub(crate) dssp: Dssp,
    pub(crate) home: HomeServer,
    pub(crate) queries: Vec<Arc<QueryTemplate>>,
    pub(crate) updates: Vec<Arc<UpdateTemplate>>,
    pub(crate) script: Vec<ScriptOp>,
    /// `(since_micros, state)`: the master as of each applied update.
    pub(crate) oracle: Vec<(Time, Database)>,
}

pub(crate) fn build_scenario(cfg: &ChaosConfig) -> Scenario {
    let app = toystore::toystore();
    let mut db = Database::new();
    for s in &app.schemas {
        db.create_table(s.clone()).expect("static schema");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x706F_7075_6C61_7465); // "populate"
    toystore::populate(&mut db, 50, 30, &mut rng);
    let mut ids = IdSpaces::default();
    ids.declare("toys", 50);
    ids.declare("customers", 30);
    ids.declare("credit_card", 15);

    let matrix = analysis_matrix(&app);
    let exposures = cfg.strategy.exposures(app.updates.len(), app.queries.len());
    let dssp = Dssp::new(DsspConfig {
        lease_micros: cfg.lease_micros,
        recovery: cfg.recovery,
        overload: cfg.overload,
        ..DsspConfig::new("chaos", exposures, matrix)
    });
    let home = HomeServer::new(db);

    // Pre-bind the whole op script so the chaos and classic runs replay
    // the identical statement sequence.
    let mut gen = ParamGen::new(ids, 1.0);
    let mut script_rng = StdRng::seed_from_u64(cfg.seed ^ 0x7363_7269_7074); // "script"
    let mut script = Vec::with_capacity(cfg.ops);
    let total_weight: u32 = app.requests.iter().map(|r| r.weight).sum();
    while script.len() < cfg.ops {
        let mut pick = script_rng.gen_range(0..total_weight);
        let request = app
            .requests
            .iter()
            .find(|r| {
                if pick < r.weight {
                    true
                } else {
                    pick -= r.weight;
                    false
                }
            })
            .expect("weights sum to total");
        for op in &request.ops {
            match *op {
                crate::defs::Op::Query(tid) => script.push(ScriptOp::Query {
                    tid,
                    params: gen.bind_all(&app.queries[tid].params, &mut script_rng),
                }),
                crate::defs::Op::Update(tid) => script.push(ScriptOp::Update {
                    tid,
                    params: gen.bind_all(&app.updates[tid].params, &mut script_rng),
                }),
            }
        }
    }
    script.truncate(cfg.ops);

    let oracle = vec![(0, home.database().clone())];
    Scenario {
        dssp,
        home,
        queries: app.query_templates(),
        updates: app.update_templates(),
        script,
        oracle,
    }
}

/// Checks a served result against the oracle; returns the observed
/// staleness (µs), or `None` when the result matches no state current
/// within `[now - lease, now]`.
pub(crate) fn staleness_within_lease(
    oracle: &[(Time, Database)],
    q: &Query,
    served: &QueryResult,
    now: Time,
    lease: Option<Time>,
) -> Option<Time> {
    let window_start = match lease {
        Some(l) => now.saturating_sub(l),
        None => 0,
    };
    // Walk states newest-first; state i is current over
    // [since_i, since_{i+1}). Stop once a state's validity ends before
    // the window opens.
    let mut valid_until = now; // exclusive end of the newest state = "now"
    for (i, (since, state)) in oracle.iter().enumerate().rev() {
        let truth = state.execute(q).expect("oracle replays valid queries");
        if served.multiset_eq(&truth) {
            let staleness = if i == oracle.len() - 1 {
                0
            } else {
                now.saturating_sub(valid_until)
            };
            return Some(staleness);
        }
        if *since <= window_start {
            break; // older states were never current inside the window
        }
        valid_until = *since;
    }
    None
}

/// Records an outcome counter when the run carries a time series.
pub(crate) fn tick(series: &mut Option<TimeSeries>, at: Time, name: &str) {
    if let Some(ts) = series.as_mut() {
        ts.incr(at, name);
    }
}

/// Advances the arrival clock by one op: the base spacing divided by the
/// load profile's multiplier at the previous instant (open-loop
/// arrivals), floored at 1 µs so a spike can never stall the clock. With
/// no profile the step is exactly `op_spacing_micros`, which keeps every
/// pre-existing run bit-identical.
pub(crate) fn next_arrival(cfg: &ChaosConfig, clock: Time) -> Time {
    let mult = cfg
        .load
        .as_ref()
        .map_or(1.0, |profile| profile.multiplier_at(clock));
    let step = if mult == 1.0 {
        cfg.op_spacing_micros
    } else {
        (cfg.op_spacing_micros as f64 / mult.max(1e-9)).round() as Time
    };
    clock + step.max(1)
}

/// Runs the fault-tolerant pipeline under `cfg`'s fault schedule.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let mut sc = build_scenario(cfg);
    // Single-replica freshness plane: the home stamps commits, the
    // channel sends are stamped inline (one-message batches), and the
    // proxy stamps arrivals/serves as replica 0.
    let prov = shared_provenance(1);
    sc.home.attach_provenance(prov.clone());
    sc.dssp.attach_provenance(prov.clone(), 0);
    let horizon = (cfg.ops as Time + 2) * cfg.op_spacing_micros;
    let link = match (&cfg.scripted_outages, cfg.outage) {
        (Some(windows), _) => HomeLink::with_outages(windows.clone()),
        (None, Some(o)) => HomeLink::with_outages(OutageSchedule::windows(
            cfg.seed,
            horizon,
            o.mean_up_micros,
            o.mean_down_micros,
        )),
        (None, None) => HomeLink::reliable(),
    };
    let mut series = cfg.timeseries_bucket_micros.map(TimeSeries::new);
    let crash_times: Vec<Time> = match cfg.crash_mean_interval_micros {
        Some(mean) => OutageSchedule::crash_times(cfg.seed, horizon, mean),
        None => Vec::new(),
    };
    let mut next_crash = 0usize;
    let mut channel: FaultyChannel<InvalidationMsg> =
        FaultyChannel::new(cfg.seed ^ 0x63_6861_6E6E_656C, cfg.channel_faults.clone()); // "channel"

    let mut report = ChaosReport {
        outcomes: Vec::with_capacity(sc.script.len()),
        stale_beyond_lease: 0,
        max_observed_staleness_micros: 0,
        queries_served: 0,
        hits: 0,
        degraded_serves: 0,
        queries_unavailable: 0,
        updates_applied: 0,
        updates_unavailable: 0,
        updates_rejected: 0,
        channel: ChannelStats::default(),
        counters: FaultCounters::default(),
        timeseries: None,
        outage_windows: link.outages().to_vec(),
        provenance: None,
        master_history_micros: Vec::new(),
    };

    let script = std::mem::take(&mut sc.script);
    let mut clock: Time = 0;
    for op in script.iter() {
        clock = next_arrival(cfg, clock);
        let now = clock;
        sc.dssp.set_sim_time_micros(now);
        sc.home.set_sim_time_micros(now);
        while next_crash < crash_times.len() && crash_times[next_crash] <= now {
            sc.dssp.restart(sc.home.epoch());
            next_crash += 1;
        }
        for msg in channel.poll(now) {
            sc.dssp.apply_invalidation(&msg);
        }
        match op {
            ScriptOp::Query { tid, params } => {
                let q = Query::bind(*tid, sc.queries[*tid].clone(), params.clone())
                    .expect("validated definitions");
                let resp = sc
                    .dssp
                    .execute_query_ft(&q, &mut sc.home, &link, &cfg.retry)
                    .expect("toystore queries never error");
                match resp.outcome {
                    FtOutcome::Served {
                        result,
                        hit,
                        degraded,
                    } => {
                        report.queries_served += 1;
                        report.hits += hit as u64;
                        report.degraded_serves += degraded as u64;
                        tick(&mut series, now, "query_served");
                        if hit {
                            tick(&mut series, now, "query_hit");
                        }
                        if degraded {
                            tick(&mut series, now, "degraded_serve");
                        }
                        match staleness_within_lease(&sc.oracle, &q, &result, now, cfg.lease_micros)
                        {
                            Some(staleness) => {
                                report.max_observed_staleness_micros =
                                    report.max_observed_staleness_micros.max(staleness);
                                if let Some(ts) = series.as_mut() {
                                    ts.observe(now, "staleness_us", staleness);
                                }
                            }
                            None => {
                                report.stale_beyond_lease += 1;
                                tick(&mut series, now, "stale_beyond_lease");
                            }
                        }
                        report.outcomes.push(OpOutcome::Query {
                            hit,
                            degraded,
                            result,
                        });
                    }
                    FtOutcome::Unavailable => {
                        report.queries_unavailable += 1;
                        tick(&mut series, now, "query_unavailable");
                        report.outcomes.push(OpOutcome::QueryUnavailable);
                    }
                }
            }
            ScriptOp::Update { tid, params } => {
                let u = Update::bind(*tid, sc.updates[*tid].clone(), params.clone())
                    .expect("validated definitions");
                match sc
                    .dssp
                    .execute_update_ft(&u, &mut sc.home, &link, &cfg.retry)
                {
                    Ok(resp) => match resp.outcome {
                        FtUpdateOutcome::Applied { msg, .. } => {
                            report.updates_applied += 1;
                            tick(&mut series, now, "update_applied");
                            sc.oracle.push((now, sc.home.database().clone()));
                            // The classic chaos channel ships each
                            // notification unbatched: stamp a
                            // one-message flush + send so the plane sees
                            // the same flush/send/arrival shape as the
                            // fleet fanout.
                            {
                                let mut p = prov.lock().unwrap();
                                let id = p.note_flush(
                                    msg.epoch,
                                    msg.epoch,
                                    1,
                                    0,
                                    now,
                                    FlushTrigger::Inline,
                                    vec![(u.template_id, msg.payload_bytes())],
                                );
                                p.note_send(0, id, now);
                            }
                            channel.send(now, msg);
                            report.outcomes.push(OpOutcome::UpdateApplied);
                        }
                        FtUpdateOutcome::Unavailable => {
                            report.updates_unavailable += 1;
                            tick(&mut series, now, "update_unavailable");
                            report.outcomes.push(OpOutcome::UpdateUnavailable);
                        }
                    },
                    Err(_) => {
                        report.updates_rejected += 1;
                        tick(&mut series, now, "update_rejected");
                        report.outcomes.push(OpOutcome::UpdateRejected);
                    }
                }
            }
        }
        // A zero-latency channel delivers within the same step, which is
        // exactly the classic synchronous pipeline.
        for msg in channel.poll(now) {
            sc.dssp.apply_invalidation(&msg);
        }
    }
    // The stream eventually drains; late messages arrive as duplicates or
    // gaps and must be absorbed cleanly either way.
    for msg in channel.drain() {
        sc.dssp.apply_invalidation(&msg);
    }

    report.channel = channel.stats();
    report.counters = FaultCounters::from_dssp(&sc.dssp);
    report.timeseries = series;
    report.provenance = Some(prov);
    report.master_history_micros = sc.oracle.iter().map(|&(t, _)| t).collect();
    report
}

/// Runs the identical script through the classic synchronous pipeline
/// (perfect delivery): the no-fault baseline.
pub fn run_classic(cfg: &ChaosConfig) -> ChaosReport {
    let mut sc = build_scenario(cfg);
    let mut report = ChaosReport {
        outcomes: Vec::with_capacity(sc.script.len()),
        stale_beyond_lease: 0,
        max_observed_staleness_micros: 0,
        queries_served: 0,
        hits: 0,
        degraded_serves: 0,
        queries_unavailable: 0,
        updates_applied: 0,
        updates_unavailable: 0,
        updates_rejected: 0,
        channel: ChannelStats::default(),
        counters: FaultCounters::default(),
        timeseries: None,
        outage_windows: Vec::new(),
        provenance: None,
        master_history_micros: Vec::new(),
    };
    let script = std::mem::take(&mut sc.script);
    let mut clock: Time = 0;
    for op in script.iter() {
        clock = next_arrival(cfg, clock);
        let now = clock;
        sc.dssp.set_sim_time_micros(now);
        match op {
            ScriptOp::Query { tid, params } => {
                let q = Query::bind(*tid, sc.queries[*tid].clone(), params.clone())
                    .expect("validated definitions");
                let resp = sc
                    .dssp
                    .execute_query(&q, &mut sc.home)
                    .expect("toystore queries never error");
                report.queries_served += 1;
                report.hits += resp.hit as u64;
                match staleness_within_lease(&sc.oracle, &q, &resp.result, now, cfg.lease_micros) {
                    Some(staleness) => {
                        report.max_observed_staleness_micros =
                            report.max_observed_staleness_micros.max(staleness);
                    }
                    None => report.stale_beyond_lease += 1,
                }
                report.outcomes.push(OpOutcome::Query {
                    hit: resp.hit,
                    degraded: false,
                    result: resp.result,
                });
            }
            ScriptOp::Update { tid, params } => {
                let u = Update::bind(*tid, sc.updates[*tid].clone(), params.clone())
                    .expect("validated definitions");
                match sc.dssp.execute_update(&u, &mut sc.home) {
                    Ok(_) => {
                        report.updates_applied += 1;
                        sc.oracle.push((now, sc.home.database().clone()));
                        report.outcomes.push(OpOutcome::UpdateApplied);
                    }
                    Err(_) => {
                        report.updates_rejected += 1;
                        report.outcomes.push(OpOutcome::UpdateRejected);
                    }
                }
            }
        }
    }
    report.counters = FaultCounters::from_dssp(&sc.dssp);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_chaos_equals_classic_pipeline() {
        for seed in [1u64, 7, 21] {
            let cfg = ChaosConfig::faultless(seed, 400);
            let chaos = run_chaos(&cfg);
            let classic = run_classic(&cfg);
            assert_eq!(chaos.outcomes, classic.outcomes, "seed {seed}");
            assert_eq!(chaos.counters.total(), 0, "no fault handling occurred");
            assert_eq!(classic.counters.total(), 0);
            assert_eq!(chaos.stale_beyond_lease, 0);
            assert_eq!(chaos.max_observed_staleness_micros, 0);
        }
    }

    #[test]
    fn chaotic_run_exercises_faults_and_keeps_the_lease_bound() {
        let cfg = ChaosConfig::chaotic(17, 1_500);
        let report = run_chaos(&cfg);
        assert_eq!(
            report.stale_beyond_lease, 0,
            "a served result was stale beyond the lease"
        );
        assert!(
            report.max_observed_staleness_micros <= cfg.lease_micros.unwrap(),
            "staleness {} exceeds lease {}",
            report.max_observed_staleness_micros,
            cfg.lease_micros.unwrap()
        );
        assert!(report.channel.dropped > 0, "schedule produced no drops");
        assert!(report.counters.total() > 0, "no fault handling recorded");
        assert!(report.counters.restarts > 0, "no crash/restart happened");
    }

    #[test]
    fn outage_demo_curves_show_dip_spike_and_recovery() {
        let cfg = ChaosConfig::outage_demo(42, 4_000);
        let report = run_chaos(&cfg);
        assert_eq!(report.stale_beyond_lease, 0);
        let ts = report.timeseries.as_ref().expect("demo records a series");
        let windows = &report.outage_windows;
        assert_eq!(windows, cfg.scripted_outages.as_ref().unwrap());

        let width = cfg.timeseries_bucket_micros.unwrap();
        let in_outage = |start: Time| {
            let end = start + width;
            windows.iter().any(|&(s, e)| start < e && s < end)
        };
        let served = ts.counter_curve("query_served");
        let unavailable = ts.counter_curve("query_unavailable");
        let degraded = ts.counter_curve("degraded_serve");
        let starts: Vec<Time> = ts.windows().iter().map(|w| w.start_micros).collect();

        // Unavailability and degraded serves happen only while the link
        // is down; every bucket clear of the outage windows is clean.
        for (i, &start) in starts.iter().enumerate() {
            if !in_outage(start) {
                assert_eq!(unavailable[i], 0, "unavailable outside outage at {start}");
                assert_eq!(degraded[i], 0, "degraded serve outside outage at {start}");
            }
        }
        assert!(
            report.queries_unavailable > 0,
            "outage produced no unavailability at all"
        );
        assert!(
            report.degraded_serves > 0,
            "no leased hit was served while the link was down"
        );

        // The throughput dip: a bucket fully inside the first outage
        // serves strictly less than the bucket just before the outage,
        // and the first bucket after the link returns recovers.
        let (o_start, o_end) = windows[0];
        let bucket_of = |t: Time| starts.iter().position(|&s| s == t).expect("dense buckets");
        let pre = bucket_of(o_start - width);
        let mid = bucket_of(o_start + width); // fully inside the 500 ms window
        let post = bucket_of(o_end);
        assert!(
            served[mid] < served[pre],
            "no dip: served {} mid-outage vs {} before",
            served[mid],
            served[pre]
        );
        assert_eq!(unavailable[post], 0, "unavailability outlived the outage");
        assert!(
            served[post] > served[mid],
            "no recovery: served {} after vs {} during",
            served[post],
            served[mid]
        );
    }

    #[test]
    fn chaos_runs_replay_per_seed() {
        let cfg = ChaosConfig::chaotic(5, 600);
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.channel, b.channel);
        let other = run_chaos(&ChaosConfig::chaotic(6, 600));
        assert_ne!(a.outcomes, other.outcomes, "seed must matter");
    }
}
