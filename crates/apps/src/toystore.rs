//! The paper's running examples: `simple-toystore` (Table 1) and the
//! extended `toystore` (Table 3).

use crate::defs::{query_def, update_def, AppDef, Op, ParamSpec, RequestType, Sensitivity};
use rand::rngs::StdRng;
use scs_core::Attr;
use scs_sqlkit::Value;
use scs_storage::{ColumnType, Database, TableSchema};

fn toys_schema() -> TableSchema {
    TableSchema::builder("toys")
        .column("toy_id", ColumnType::Int)
        .column("toy_name", ColumnType::Str)
        .column("qty", ColumnType::Int)
        .primary_key(&["toy_id"])
        .index("toy_name")
        .build()
        .expect("static schema")
}

fn customers_schema() -> TableSchema {
    TableSchema::builder("customers")
        .column("cust_id", ColumnType::Int)
        .column("cust_name", ColumnType::Str)
        .primary_key(&["cust_id"])
        .build()
        .expect("static schema")
}

fn credit_card_schema() -> TableSchema {
    TableSchema::builder("credit_card")
        .column("cid", ColumnType::Int)
        .column("number", ColumnType::Str)
        .column("zip_code", ColumnType::Int)
        .primary_key(&["cid"])
        .foreign_key(&["cid"], "customers", &["cust_id"])
        .index("zip_code")
        .build()
        .expect("static schema")
}

const TOY_NAMES: &[&str] = &[
    "bear", "car", "kite", "robot", "puzzle", "blocks", "train", "doll",
];

/// `simple-toystore` of Table 1: three query templates, one update
/// template, two relations.
pub fn simple_toystore() -> AppDef {
    AppDef {
        name: "simple-toystore",
        schemas: vec![toys_schema(), customers_schema()],
        queries: vec![
            query_def(
                "Q1",
                "SELECT toy_id FROM toys WHERE toy_name = ?",
                vec![ParamSpec::Word(TOY_NAMES)],
                Sensitivity::Low,
            ),
            query_def(
                "Q2",
                "SELECT qty FROM toys WHERE toy_id = ?",
                vec![ParamSpec::ExistingId("toys")],
                Sensitivity::Moderate,
            ),
            query_def(
                "Q3",
                "SELECT cust_name FROM customers WHERE cust_id = ?",
                vec![ParamSpec::ExistingId("customers")],
                Sensitivity::Moderate,
            ),
        ],
        updates: vec![update_def(
            "U1",
            "DELETE FROM toys WHERE toy_id = ?",
            vec![ParamSpec::ExistingId("toys")],
            Sensitivity::Low,
        )],
        requests: vec![
            RequestType {
                name: "browse",
                weight: 8,
                ops: vec![Op::Query(0), Op::Query(1)],
            },
            RequestType {
                name: "account",
                weight: 3,
                ops: vec![Op::Query(2)],
            },
            RequestType {
                name: "discontinue",
                weight: 1,
                ops: vec![Op::Update(0)],
            },
        ],
        sensitive_attrs: vec![],
    }
}

/// The extended `toystore` of Table 3, used throughout §3–4 of the paper
/// (adds the `credit_card` relation, the join query Q3, and the
/// credit-card insertion U2).
pub fn toystore() -> AppDef {
    AppDef {
        name: "toystore",
        schemas: vec![toys_schema(), customers_schema(), credit_card_schema()],
        queries: vec![
            query_def(
                "Q1",
                "SELECT toy_id FROM toys WHERE toy_name = ?",
                vec![ParamSpec::Word(TOY_NAMES)],
                Sensitivity::Low,
            ),
            query_def(
                "Q2",
                "SELECT qty FROM toys WHERE toy_id = ?",
                vec![ParamSpec::ExistingId("toys")],
                Sensitivity::Moderate,
            ),
            query_def(
                "Q3",
                "SELECT customers.cust_name FROM customers, credit_card \
                 WHERE customers.cust_id = credit_card.cid AND credit_card.zip_code = ?",
                vec![ParamSpec::Int(10_000, 99_999)],
                Sensitivity::Moderate,
            ),
        ],
        updates: vec![
            update_def(
                "U1",
                "DELETE FROM toys WHERE toy_id = ?",
                vec![ParamSpec::ExistingId("toys")],
                Sensitivity::Low,
            ),
            update_def(
                "U2",
                "INSERT INTO credit_card (cid, number, zip_code) VALUES (?, ?, ?)",
                vec![
                    ParamSpec::ExistingId("customers"),
                    ParamSpec::Text(16),
                    ParamSpec::Int(10_000, 99_999),
                ],
                Sensitivity::High,
            ),
        ],
        requests: vec![
            RequestType {
                name: "browse",
                weight: 8,
                ops: vec![Op::Query(0), Op::Query(1)],
            },
            RequestType {
                name: "demographics",
                weight: 3,
                ops: vec![Op::Query(2)],
            },
            RequestType {
                name: "discontinue",
                weight: 1,
                ops: vec![Op::Update(0)],
            },
            RequestType {
                name: "add-card",
                weight: 1,
                ops: vec![Op::Update(1)],
            },
        ],
        sensitive_attrs: vec![
            Attr::new("credit_card", "cid"),
            Attr::new("credit_card", "number"),
            Attr::new("credit_card", "zip_code"),
        ],
    }
}

/// Populates the (simple or extended) toystore with `toys` toys and
/// `customers` customers; ids are `1..=n` as the workload generators
/// expect. `credit_card` rows reference every other customer when that
/// relation exists.
pub fn populate(db: &mut Database, toys: i64, customers: i64, _rng: &mut StdRng) {
    for id in 1..=toys {
        db.insert_row(
            "toys",
            vec![
                Value::Int(id),
                Value::str(TOY_NAMES[(id as usize - 1) % TOY_NAMES.len()]),
                Value::Int((id * 13) % 50),
            ],
        )
        .expect("fresh ids never collide");
    }
    for id in 1..=customers {
        db.insert_row(
            "customers",
            vec![Value::Int(id), Value::Str(format!("customer-{id}"))],
        )
        .expect("fresh ids never collide");
    }
    if db.table("credit_card").is_ok() {
        for id in 1..=customers / 2 {
            db.insert_row(
                "credit_card",
                vec![
                    Value::Int(id * 2),
                    Value::Str(format!("4111-{id:012}")),
                    Value::Int(10_000 + (id * 37) % 90_000),
                ],
            )
            .expect("fresh ids never collide");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn apps_validate() {
        simple_toystore().validate().unwrap();
        toystore().validate().unwrap();
    }

    #[test]
    fn populate_fills_tables() {
        let app = toystore();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        populate(&mut db, 20, 10, &mut rng);
        assert_eq!(db.table("toys").unwrap().len(), 20);
        assert_eq!(db.table("customers").unwrap().len(), 10);
        assert_eq!(db.table("credit_card").unwrap().len(), 5);
    }

    #[test]
    fn template_counts_match_paper() {
        let simple = simple_toystore();
        assert_eq!(simple.queries.len(), 3);
        assert_eq!(simple.updates.len(), 1);
        let full = toystore();
        assert_eq!(full.queries.len(), 3);
        assert_eq!(full.updates.len(), 2);
    }
}
