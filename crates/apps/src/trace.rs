//! Workload traces: record a concrete operation stream once, replay it
//! byte-identically against different DSSP configurations.
//!
//! Scalability comparisons in the paper hold the workload *distribution*
//! fixed; traces go one step further and hold the exact operation sequence
//! fixed, which makes strategy/exposure A/B comparisons noise-free (same
//! inserts, same deletes, same lookup keys).
//!
//! The on-disk format is a small line-oriented text codec (one op per
//! line) so traces are diffable and greppable; no external serialization
//! crates are needed.

use crate::defs::{AppDef, Op};
use crate::gen::{IdSpaces, ParamGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs_core::Exposures;
use scs_dssp::{Dssp, DsspConfig, DsspStats, HomeServer};
use scs_sqlkit::{Query, Update, Value};
use scs_storage::Database;
use std::fmt;

/// One recorded operation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    Query {
        template_id: usize,
        params: Vec<Value>,
    },
    Update {
        template_id: usize,
        params: Vec<Value>,
    },
}

/// A recorded operation stream for one application.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    pub ops: Vec<TraceOp>,
}

/// Errors decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Generates a trace by sampling `requests` requests from the
    /// application's mix — exactly the stream the simulation driver would
    /// execute for one client with this seed.
    pub fn generate(app: &AppDef, ids: IdSpaces, requests: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = ParamGen::new(ids, 1.0);
        let total_weight: u32 = app.requests.iter().map(|r| r.weight).sum();
        let mut ops = Vec::new();
        for _ in 0..requests {
            let mut pick = rng.gen_range(0..total_weight);
            let request = app
                .requests
                .iter()
                .find(|r| {
                    if pick < r.weight {
                        true
                    } else {
                        pick -= r.weight;
                        false
                    }
                })
                .expect("weights sum to total");
            for op in &request.ops {
                ops.push(match op {
                    Op::Query(tid) => TraceOp::Query {
                        template_id: *tid,
                        params: gen.bind_all(&app.queries[*tid].params, &mut rng),
                    },
                    Op::Update(tid) => TraceOp::Update {
                        template_id: *tid,
                        params: gen.bind_all(&app.updates[*tid].params, &mut rng),
                    },
                });
            }
        }
        Trace { ops }
    }

    /// Encodes to the line format: `Q|U <template_id> <value>*` with
    /// values as `i:<int>`, `r:<bits>` (f64 bit pattern, exact), or
    /// `s:<percent-escaped utf-8>`.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let (tag, tid, params) = match op {
                TraceOp::Query {
                    template_id,
                    params,
                } => ('Q', template_id, params),
                TraceOp::Update {
                    template_id,
                    params,
                } => ('U', template_id, params),
            };
            out.push(tag);
            out.push(' ');
            out.push_str(&tid.to_string());
            for v in params {
                out.push(' ');
                match v {
                    Value::Int(i) => out.push_str(&format!("i:{i}")),
                    Value::Real(r) => out.push_str(&format!("r:{}", r.get().to_bits())),
                    Value::Str(s) => {
                        out.push_str("s:");
                        for b in s.bytes() {
                            if b.is_ascii_alphanumeric() || b"-_.@".contains(&b) {
                                out.push(b as char);
                            } else {
                                out.push_str(&format!("%{b:02x}"));
                            }
                        }
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Decodes the line format.
    pub fn decode(text: &str) -> Result<Trace, TraceError> {
        let mut ops = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let err = |message: String| TraceError {
                line: n + 1,
                message,
            };
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split(' ');
            let tag = fields.next().ok_or_else(|| err("missing tag".into()))?;
            let tid: usize = fields
                .next()
                .ok_or_else(|| err("missing template id".into()))?
                .parse()
                .map_err(|e| err(format!("bad template id: {e}")))?;
            let mut params = Vec::new();
            for f in fields {
                let (kind, payload) = f
                    .split_once(':')
                    .ok_or_else(|| err(format!("bad value `{f}`")))?;
                params.push(match kind {
                    "i" => Value::Int(payload.parse().map_err(|e| err(format!("bad int: {e}")))?),
                    "r" => {
                        let bits: u64 =
                            payload.parse().map_err(|e| err(format!("bad real: {e}")))?;
                        Value::real(f64::from_bits(bits))
                    }
                    "s" => Value::Str(unescape(payload).map_err(err)?),
                    other => return Err(err(format!("unknown value kind `{other}`"))),
                });
            }
            ops.push(match tag {
                "Q" => TraceOp::Query {
                    template_id: tid,
                    params,
                },
                "U" => TraceOp::Update {
                    template_id: tid,
                    params,
                },
                other => return Err(err(format!("unknown tag `{other}`"))),
            });
        }
        Ok(Trace { ops })
    }
}

fn unescape(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 > bytes.len() {
                return Err("truncated escape".into());
            }
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| "truncated escape".to_string())?;
            out.push(u8::from_str_radix(hex, 16).map_err(|e| format!("bad escape: {e}"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|e| format!("invalid utf-8: {e}"))
}

/// The outcome of replaying a trace against one configuration.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    pub stats: DsspStats,
    /// Updates the home server rejected (duplicate keys, FK violations).
    pub rejected_updates: usize,
}

/// Replays a trace against a fresh DSSP + home server under `exposures`.
/// Identical traces + identical databases ⇒ noise-free configuration
/// comparisons.
pub fn replay(app: &AppDef, db: Database, exposures: Exposures, trace: &Trace) -> ReplayReport {
    let matrix = crate::driver::analysis_matrix(app);
    let mut dssp = Dssp::new(DsspConfig::new(app.name, exposures, matrix));
    let mut home = HomeServer::new(db);
    let queries = app.query_templates();
    let updates = app.update_templates();
    let mut rejected = 0;
    for op in &trace.ops {
        match op {
            TraceOp::Query {
                template_id,
                params,
            } => {
                let q = Query::bind(*template_id, queries[*template_id].clone(), params.clone())
                    .expect("trace matches app templates");
                dssp.execute_query(&q, &mut home).expect("valid query");
            }
            TraceOp::Update {
                template_id,
                params,
            } => {
                let u = Update::bind(*template_id, updates[*template_id].clone(), params.clone())
                    .expect("trace matches app templates");
                if dssp.execute_update(&u, &mut home).is_err() {
                    rejected += 1;
                }
            }
        }
    }
    ReplayReport {
        stats: dssp.stats(),
        rejected_updates: rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::BenchApp;
    use scs_dssp::StrategyKind;

    fn sample_trace() -> (AppDef, Trace) {
        let app = BenchApp::Bookstore.def();
        let (_, ids) = BenchApp::Bookstore.build_database(5);
        let trace = Trace::generate(&app, ids, 30, 5);
        (app, trace)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (_, trace) = sample_trace();
        assert!(!trace.ops.is_empty());
        let decoded = Trace::decode(&trace.encode()).unwrap();
        assert_eq!(trace, decoded);
    }

    #[test]
    fn roundtrip_preserves_tricky_values() {
        let trace = Trace {
            ops: vec![TraceOp::Query {
                template_id: 3,
                params: vec![
                    Value::Int(-42),
                    Value::real(0.1 + 0.2), // non-representable decimal
                    Value::str("o'brien %20 spaces\nnewline"),
                    Value::str("héllo"),
                ],
            }],
        };
        let decoded = Trace::decode(&trace.encode()).unwrap();
        assert_eq!(trace, decoded);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Trace::decode("X 0 i:1").is_err());
        assert!(Trace::decode("Q nope").is_err());
        assert!(Trace::decode("Q 0 z:1").is_err());
        assert!(Trace::decode("Q 0 i:notanint").is_err());
        assert!(Trace::decode("").unwrap().ops.is_empty());
    }

    #[test]
    fn replay_is_deterministic() {
        let (app, trace) = sample_trace();
        let exposures =
            StrategyKind::StatementInspection.exposures(app.updates.len(), app.queries.len());
        let a = replay(
            &app,
            BenchApp::Bookstore.build_database(5).0,
            exposures.clone(),
            &trace,
        );
        let b = replay(
            &app,
            BenchApp::Bookstore.build_database(5).0,
            exposures,
            &trace,
        );
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.rejected_updates, b.rejected_updates);
    }

    /// The same trace under more exposure never hits less — the trace
    /// makes the Figure-8 comparison exact rather than statistical.
    #[test]
    fn replay_ab_comparison_is_ordered() {
        let (app, trace) = sample_trace();
        let mut hits = Vec::new();
        for kind in StrategyKind::ALL {
            let exposures = kind.exposures(app.updates.len(), app.queries.len());
            let report = replay(
                &app,
                BenchApp::Bookstore.build_database(5).0,
                exposures,
                &trace,
            );
            hits.push(report.stats.hits);
        }
        // ALL is MVIS, MSIS, MTIS, MBS (most → least informed).
        for w in hits.windows(2) {
            assert!(
                w[0] >= w[1],
                "hit counts must be antitone in encryption: {hits:?}"
            );
        }
    }
}
