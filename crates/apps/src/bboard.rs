//! `bboard` — a RUBBoS-like bulletin board inspired by slashdot.org
//! (§5.1): stories, threaded comments, user ratings, moderation.
//!
//! Each HTTP request issues **about ten database queries** (§5.3), which
//! is why the bboard collapses under blind/template-inspection strategies
//! in the paper's Figure 8. The user-to-user ratings are the paper's
//! example of moderately sensitive bboard data (§5.4).

use crate::defs::{query_def, update_def, AppDef, Op, ParamSpec, RequestType, Sensitivity};
use crate::gen::words;
use rand::rngs::StdRng;
use rand::Rng;
use scs_core::Attr;
use scs_sqlkit::Value;
use scs_storage::{ColumnType, Database, TableSchema};

/// Row counts used by [`populate`].
#[derive(Debug, Clone, Copy)]
pub struct BboardScale {
    pub users: i64,
    pub stories: i64,
}

impl Default for BboardScale {
    fn default() -> Self {
        BboardScale {
            users: 1_000,
            stories: 600,
        }
    }
}

pub fn schemas() -> Vec<TableSchema> {
    vec![
        TableSchema::builder("users")
            .column("u_id", ColumnType::Int)
            .column("u_nickname", ColumnType::Str)
            .column("u_password", ColumnType::Str)
            .column("u_email", ColumnType::Str)
            .column("u_rating", ColumnType::Int)
            .column("u_access", ColumnType::Int)
            .primary_key(&["u_id"])
            .index("u_nickname")
            .build()
            .expect("static schema"),
        TableSchema::builder("story_cat")
            .column("sc_id", ColumnType::Int)
            .column("sc_name", ColumnType::Str)
            .primary_key(&["sc_id"])
            .index("sc_name")
            .build()
            .expect("static schema"),
        TableSchema::builder("stories")
            .column("s_id", ColumnType::Int)
            .column("s_title", ColumnType::Str)
            .column("s_body", ColumnType::Str)
            .column("s_author", ColumnType::Int)
            .column("s_cat", ColumnType::Int)
            .column("s_date", ColumnType::Int)
            .column("s_hits", ColumnType::Int)
            .primary_key(&["s_id"])
            .foreign_key(&["s_author"], "users", &["u_id"])
            .foreign_key(&["s_cat"], "story_cat", &["sc_id"])
            .index("s_cat")
            .index("s_author")
            .build()
            .expect("static schema"),
        TableSchema::builder("comments")
            .column("c_id", ColumnType::Int)
            .column("c_story", ColumnType::Int)
            .column("c_author", ColumnType::Int)
            .column("c_parent", ColumnType::Int)
            .column("c_date", ColumnType::Int)
            .column("c_subject", ColumnType::Str)
            .column("c_body", ColumnType::Str)
            .column("c_rating", ColumnType::Int)
            .primary_key(&["c_id"])
            .foreign_key(&["c_story"], "stories", &["s_id"])
            .foreign_key(&["c_author"], "users", &["u_id"])
            .index("c_story")
            .index("c_author")
            .build()
            .expect("static schema"),
        TableSchema::builder("moderator_log")
            .column("m_id", ColumnType::Int)
            .column("m_moderator", ColumnType::Int)
            .column("m_comment", ColumnType::Int)
            .column("m_delta", ColumnType::Int)
            .column("m_date", ColumnType::Int)
            .primary_key(&["m_id"])
            .foreign_key(&["m_moderator"], "users", &["u_id"])
            .foreign_key(&["m_comment"], "comments", &["c_id"])
            .build()
            .expect("static schema"),
    ]
}

fn queries() -> Vec<crate::defs::TemplateDef<scs_sqlkit::QueryTemplate>> {
    use ParamSpec::*;
    use Sensitivity::*;
    vec![
        // 0
        query_def(
            "storiesOfTheDay",
            "SELECT s_id, s_title, s_author, s_date FROM stories WHERE s_date >= ? \
             ORDER BY s_date DESC LIMIT 10",
            vec![Int(0, 5)],
            Low,
        ),
        // 1
        query_def(
            "getStory",
            "SELECT s_title, s_body, s_author, s_cat, s_date FROM stories WHERE s_id = ?",
            vec![PopularId("stories")],
            Low,
        ),
        // 2
        query_def(
            "getStoryComments",
            "SELECT c_id, c_author, c_subject, c_rating, c_parent FROM comments \
             WHERE c_story = ? ORDER BY c_date LIMIT 50",
            vec![PopularId("stories")],
            Low,
        ),
        // 3
        query_def(
            "getComment",
            "SELECT c_author, c_subject, c_body, c_rating FROM comments WHERE c_id = ?",
            vec![PopularId("comments")],
            Low,
        ),
        // 4
        query_def(
            "getUser",
            "SELECT u_nickname, u_rating, u_access FROM users WHERE u_id = ?",
            vec![PopularId("users")],
            Moderate,
        ),
        // 5
        query_def(
            "getUserByNickname",
            "SELECT u_id, u_password FROM users WHERE u_nickname = ?",
            vec![Keyed {
                table: "users",
                pattern: "reader{}",
            }],
            High,
        ),
        // 6 — aggregate
        query_def(
            "countStoryComments",
            "SELECT COUNT(*) FROM comments WHERE c_story = ?",
            vec![PopularId("stories")],
            Low,
        ),
        // 7
        query_def(
            "getStoriesByCategory",
            "SELECT s_id, s_title, s_date FROM stories WHERE s_cat = ? \
             ORDER BY s_date DESC LIMIT 25",
            vec![ExistingId("story_cat")],
            Low,
        ),
        // 8
        query_def(
            "getCategoryByName",
            "SELECT sc_id FROM story_cat WHERE sc_name = ?",
            vec![Word(words::CATEGORIES)],
            Low,
        ),
        // 9
        query_def(
            "getUserStories",
            "SELECT s_id, s_title, s_date FROM stories WHERE s_author = ? \
             ORDER BY s_date DESC LIMIT 25",
            vec![PopularId("users")],
            Moderate,
        ),
        // 10
        query_def(
            "getUserComments",
            "SELECT c_id, c_story, c_subject, c_rating FROM comments WHERE c_author = ? \
             ORDER BY c_date DESC LIMIT 25",
            vec![PopularId("users")],
            Moderate,
        ),
        // 11 — the user-to-user ratings view: moderately sensitive (§5.4)
        query_def(
            "getCommentAuthorRatings",
            "SELECT users.u_nickname, comments.c_rating FROM users, comments \
             WHERE users.u_id = comments.c_author AND comments.c_story = ? LIMIT 50",
            vec![PopularId("stories")],
            Moderate,
        ),
        // 12 — aggregate
        query_def(
            "getMaxCommentRating",
            "SELECT MAX(c_rating) FROM comments WHERE c_story = ?",
            vec![PopularId("stories")],
            Low,
        ),
        // 13
        query_def(
            "getStoryAuthor",
            "SELECT users.u_nickname, users.u_rating FROM users, stories \
             WHERE users.u_id = stories.s_author AND stories.s_id = ?",
            vec![PopularId("stories")],
            Low,
        ),
        // 14
        query_def(
            "getModerationLog",
            "SELECT m_comment, m_delta, m_date FROM moderator_log WHERE m_moderator = ? \
             ORDER BY m_date DESC LIMIT 20",
            vec![ExistingId("users")],
            Moderate,
        ),
        // 15
        query_def(
            "getTopComments",
            "SELECT c_id, c_subject, c_rating FROM comments WHERE c_rating >= ? \
             ORDER BY c_rating DESC LIMIT 10",
            vec![Int(4, 5)],
            Low,
        ),
        // 16
        query_def(
            "getHotStories",
            "SELECT s_id, s_title, s_hits FROM stories WHERE s_hits >= ? \
             ORDER BY s_hits DESC LIMIT 10",
            vec![Int(1, 4)],
            Low,
        ),
        // 17
        query_def(
            "getCommentReplies",
            "SELECT c_id, c_author, c_subject FROM comments WHERE c_parent = ? LIMIT 25",
            vec![PopularId("comments")],
            Low,
        ),
        // 18 — aggregate
        query_def(
            "countUserStories",
            "SELECT COUNT(*) FROM stories WHERE s_author = ?",
            vec![ExistingId("users")],
            Low,
        ),
        // 19
        query_def(
            "getCategory",
            "SELECT sc_name FROM story_cat WHERE sc_id = ?",
            vec![ExistingId("story_cat")],
            Low,
        ),
    ]
}

fn updates() -> Vec<crate::defs::TemplateDef<scs_sqlkit::UpdateTemplate>> {
    use ParamSpec::*;
    use Sensitivity::*;
    vec![
        // 0
        update_def(
            "submitStory",
            "INSERT INTO stories (s_id, s_title, s_body, s_author, s_cat, s_date, s_hits) \
             VALUES (?, ?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("stories"),
                Text(24),
                Text(120),
                ExistingId("users"),
                ExistingId("story_cat"),
                Int(400, 600),
                Int(0, 0),
            ],
            Low,
        ),
        // 1
        update_def(
            "postComment",
            "INSERT INTO comments (c_id, c_story, c_author, c_parent, c_date, c_subject, \
             c_body, c_rating) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("comments"),
                PopularId("stories"),
                ExistingId("users"),
                Int(0, 0),
                Int(400, 600),
                Text(16),
                Text(80),
                Int(0, 0),
            ],
            Low,
        ),
        // 2
        update_def(
            "moderateComment",
            "UPDATE comments SET c_rating = ? WHERE c_id = ?",
            vec![Int(-1, 5), PopularId("comments")],
            Moderate,
        ),
        // 3
        update_def(
            "logModeration",
            "INSERT INTO moderator_log (m_id, m_moderator, m_comment, m_delta, m_date) \
             VALUES (?, ?, ?, ?, ?)",
            vec![
                FreshId("moderator_log"),
                ExistingId("users"),
                ExistingId("comments"),
                Int(-1, 1),
                Int(400, 600),
            ],
            Moderate,
        ),
        // 4
        update_def(
            "registerUser",
            "INSERT INTO users (u_id, u_nickname, u_password, u_email, u_rating, u_access) \
             VALUES (?, ?, ?, ?, ?, ?)",
            vec![
                FreshId("users"),
                Text(10),
                Text(12),
                Text(14),
                Int(0, 0),
                Int(0, 0),
            ],
            High,
        ),
        // 5
        update_def(
            "updateUserRating",
            "UPDATE users SET u_rating = ? WHERE u_id = ?",
            vec![Int(-10, 50), ExistingId("users")],
            Moderate,
        ),
        // 6
        update_def(
            "bumpStoryHits",
            "UPDATE stories SET s_hits = ? WHERE s_id = ?",
            vec![Int(0, 500), PopularId("stories")],
            Low,
        ),
        // 7
        update_def(
            "purgeOldComments",
            "DELETE FROM comments WHERE c_date < ?",
            vec![Int(0, 200)],
            Low,
        ),
    ]
}

/// Request mix — each page issues ~10 database queries (§5.3).
fn requests() -> Vec<RequestType> {
    use Op::*;
    vec![
        RequestType {
            name: "front-page",
            weight: 20,
            ops: vec![
                Query(0),
                Query(13),
                Query(13),
                Query(6),
                Query(6),
                Query(6),
                Query(16),
                Query(15),
                Query(19),
                Query(8),
            ],
        },
        RequestType {
            name: "view-story",
            weight: 22,
            ops: vec![
                Query(1),
                Query(13),
                Query(2),
                Query(6),
                Query(12),
                Query(11),
                Query(3),
                Query(3),
                Query(17),
                Update(6),
            ],
        },
        RequestType {
            name: "browse-category",
            weight: 10,
            ops: vec![
                Query(8),
                Query(7),
                Query(13),
                Query(13),
                Query(6),
                Query(6),
                Query(6),
                Query(19),
                Query(16),
                Query(0),
            ],
        },
        RequestType {
            name: "view-user",
            weight: 8,
            ops: vec![
                Query(4),
                Query(9),
                Query(10),
                Query(18),
                Query(14),
                Query(15),
                Query(16),
                Query(0),
            ],
        },
        RequestType {
            name: "post-comment",
            weight: 7,
            ops: vec![
                Query(5),
                Query(1),
                Query(2),
                Query(6),
                Update(1),
                Query(2),
                Query(6),
                Query(12),
                Query(3),
            ],
        },
        RequestType {
            name: "submit-story",
            weight: 3,
            ops: vec![
                Query(5),
                Query(8),
                Update(0),
                Query(0),
                Query(7),
                Query(13),
                Query(6),
                Query(16),
            ],
        },
        RequestType {
            name: "moderate",
            weight: 3,
            ops: vec![
                Query(5),
                Query(3),
                Update(2),
                Update(3),
                Update(5),
                Query(14),
                Query(15),
                Query(3),
            ],
        },
        RequestType {
            name: "register",
            weight: 1,
            ops: vec![Query(5), Update(4), Query(0), Query(16), Query(15)],
        },
        RequestType {
            name: "janitor",
            weight: 1,
            ops: vec![Query(5), Update(7), Query(0), Query(15)],
        },
    ]
}

/// The complete bboard application definition.
pub fn bboard() -> AppDef {
    AppDef {
        name: "bboard",
        schemas: schemas(),
        queries: queries(),
        updates: updates(),
        requests: requests(),
        sensitive_attrs: vec![Attr::new("users", "u_password")],
    }
}

/// Populates the bboard; ids are `1..=n` per table.
pub fn populate(db: &mut Database, scale: BboardScale, rng: &mut StdRng) {
    for (id, name) in words::CATEGORIES.iter().enumerate() {
        db.insert_row(
            "story_cat",
            vec![Value::Int(id as i64 + 1), Value::str(*name)],
        )
        .expect("fresh id");
    }
    let cats = words::CATEGORIES.len() as i64;
    for id in 1..=scale.users {
        db.insert_row(
            "users",
            vec![
                Value::Int(id),
                Value::Str(format!("reader{id}")),
                Value::Str(format!("pw{id}")),
                Value::Str(format!("reader{id}@example.org")),
                Value::Int(rng.gen_range(-5..50)),
                Value::Int(rng.gen_range(0..3)),
            ],
        )
        .expect("fresh id");
    }
    for id in 1..=scale.stories {
        db.insert_row(
            "stories",
            vec![
                Value::Int(id),
                Value::Str(format!("story headline {id}")),
                Value::Str(format!("story body text for story {id}")),
                Value::Int(1 + (id * 3) % scale.users),
                Value::Int(1 + (id % cats)),
                Value::Int(rng.gen_range(0..500)),
                Value::Int(rng.gen_range(0..200)),
            ],
        )
        .expect("fresh id");
    }
    let comments = scale.stories * 8;
    for id in 1..=comments {
        db.insert_row(
            "comments",
            vec![
                Value::Int(id),
                Value::Int(1 + (id % scale.stories)),
                Value::Int(1 + (id * 7) % scale.users),
                Value::Int(0),
                Value::Int(rng.gen_range(0..500)),
                Value::Str(format!("re: story {}", 1 + (id % scale.stories))),
                Value::Str(format!("comment body {id}")),
                Value::Int(rng.gen_range(-1..5)),
            ],
        )
        .expect("fresh id");
    }
    let moderations = scale.stories;
    for id in 1..=moderations {
        db.insert_row(
            "moderator_log",
            vec![
                Value::Int(id),
                Value::Int(1 + (id * 5) % scale.users),
                Value::Int(1 + (id * 9) % comments),
                Value::Int(if id % 2 == 0 { 1 } else { -1 }),
                Value::Int(rng.gen_range(0..500)),
            ],
        )
        .expect("fresh id");
    }
}

/// The initial id-space sizes matching [`populate`].
pub fn id_spaces(scale: BboardScale) -> crate::gen::IdSpaces {
    let mut ids = crate::gen::IdSpaces::default();
    ids.declare("story_cat", words::CATEGORIES.len() as i64);
    ids.declare("users", scale.users);
    ids.declare("stories", scale.stories);
    ids.declare("comments", scale.stories * 8);
    ids.declare("moderator_log", scale.stories);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn validates() {
        bboard().validate().unwrap();
    }

    #[test]
    fn template_counts() {
        let app = bboard();
        assert_eq!(app.queries.len(), 20);
        assert_eq!(app.updates.len(), 8);
    }

    /// §5.3: each HTTP request results in about ten database requests.
    #[test]
    fn requests_average_ten_ops() {
        let app = bboard();
        let total_w: u32 = app.requests.iter().map(|r| r.weight).sum();
        let weighted: f64 = app
            .requests
            .iter()
            .map(|r| r.weight as f64 * r.ops.len() as f64)
            .sum::<f64>()
            / total_w as f64;
        assert!(
            (8.0..=11.0).contains(&weighted),
            "mean ops/request = {weighted}"
        );
    }

    #[test]
    fn all_templates_execute() {
        use scs_sqlkit::{Query, Update};
        let app = bboard();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let scale = BboardScale {
            users: 30,
            stories: 20,
        };
        let mut rng = StdRng::seed_from_u64(9);
        populate(&mut db, scale, &mut rng);
        let mut gen = crate::gen::ParamGen::new(id_spaces(scale), 1.0);
        for (tid, qd) in app.queries.iter().enumerate() {
            let params = gen.bind_all(&qd.params, &mut rng);
            let q = Query::bind(tid, qd.template.clone(), params).unwrap();
            db.execute(&q)
                .unwrap_or_else(|e| panic!("query `{}` fails: {e}", qd.name));
        }
        for (tid, ud) in app.updates.iter().enumerate() {
            let params = gen.bind_all(&ud.params, &mut rng);
            let u = Update::bind(tid, ud.template.clone(), params).unwrap();
            db.apply(&u)
                .unwrap_or_else(|e| panic!("update `{}` fails: {e}", ud.name));
        }
    }
}
