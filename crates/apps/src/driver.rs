//! The end-to-end simulation driver: executes each simulated database
//! operation for real (through the DSSP proxy against the in-memory home
//! server) and reports its resource demands to the network simulator.

use crate::defs::{AppDef, Op, ParamSpec, RequestType};
use crate::gen::{IdSpaces, ParamGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs_core::{characterize_app, AnalysisOptions, Exposures, IpmMatrix};
use scs_dssp::{Dssp, DsspConfig, FleetConfig, HomeServer, ProxyFleet, ShardedHome};
use scs_netsim::{HomeTrip, OpCost, Time, Workload};
use scs_sqlkit::{Query, QueryTemplate, Update, UpdateTemplate};
use scs_storage::{Database, PartitionMap, TablePlacement};
use std::sync::Arc;

/// CPU/size cost model calibrated to the paper's testbed shape (§5.2):
/// a fast (Xeon-class) DSSP node, a slow (P-III-class) home server running
/// the database, and statement/result wire sizes derived from actual text
/// and result sizes.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// DSSP CPU per operation (cache lookup + app logic).
    pub dssp_cpu_per_op: Time,
    /// DSSP CPU per cache entry scanned during an invalidation pass.
    pub dssp_cpu_per_scan: Time,
    /// Home CPU to execute one query (base).
    pub home_cpu_query: Time,
    /// Home CPU per returned result row.
    pub home_cpu_per_row: Time,
    /// Home CPU to apply one update.
    pub home_cpu_update: Time,
    /// Extra home CPU per *participant* of a scatter-gather query
    /// (sub-query planning plus merging its partial result). The scan
    /// itself divides across the participants — each shard reads only
    /// its slice — so a scattered query costs roughly one routed query
    /// plus this overhead times the fan-out.
    pub home_scatter_overhead: Time,
    /// Bytes of an update acknowledgement.
    pub ack_bytes: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            dssp_cpu_per_op: 300,
            dssp_cpu_per_scan: 1,
            home_cpu_query: 8_000,
            home_cpu_per_row: 40,
            home_cpu_update: 10_000,
            home_scatter_overhead: 1_500,
            ack_bytes: 100,
        }
    }
}

impl CostModel {
    /// A testbed shape where the DSSP node's CPU is the binding resource
    /// (application logic dominates: templating, session handling,
    /// encryption) and updates apply cheaply at the home server. This is
    /// the regime of the paper's multi-proxy figures: adding DSSP
    /// proxies relieves the bottleneck for strategies that serve mostly
    /// from cache, while a blind strategy keeps missing through to the
    /// *shared* home server and barely scales at all. The per-op DSSP
    /// cost must sit between the two strategies' effective per-op home
    /// demands — above the informed strategies' (their miss traffic),
    /// below the blind strategy's (nearly every op) — so the bottleneck
    /// lands on opposite tiers at the two ends of the exposure spectrum.
    pub fn dssp_bound() -> CostModel {
        CostModel {
            dssp_cpu_per_op: 7_500,
            home_cpu_update: 2_000,
            ..CostModel::default()
        }
    }
}

/// A bound, ready-to-execute operation of an in-flight request.
enum PreparedOp {
    Query(Query),
    Update(Update),
}

/// The workload-generation half shared by the single-proxy and fleet
/// drivers: samples weighted request types and binds their operations'
/// parameters, keeping each client's in-flight request.
struct OpSampler {
    queries: Vec<Arc<QueryTemplate>>,
    query_params: Vec<Vec<ParamSpec>>,
    updates: Vec<Arc<UpdateTemplate>>,
    update_params: Vec<Vec<ParamSpec>>,
    requests: Vec<RequestType>,
    total_weight: u32,
    gen: ParamGen,
    rng: StdRng,
    pending: Vec<Vec<PreparedOp>>,
}

impl OpSampler {
    fn new(app: &AppDef, ids: IdSpaces, zipf_exponent: f64, seed: u64) -> OpSampler {
        OpSampler {
            queries: app.query_templates(),
            query_params: app.queries.iter().map(|q| q.params.clone()).collect(),
            updates: app.update_templates(),
            update_params: app.updates.iter().map(|u| u.params.clone()).collect(),
            requests: app.requests.clone(),
            total_weight: app.requests.iter().map(|r| r.weight).sum(),
            gen: ParamGen::new(ids, zipf_exponent),
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
        }
    }

    fn sample_request(&mut self) -> usize {
        let mut pick = self.rng.gen_range(0..self.total_weight);
        for (i, r) in self.requests.iter().enumerate() {
            if pick < r.weight {
                return i;
            }
            pick -= r.weight;
        }
        unreachable!("weights sum to total_weight")
    }

    fn begin_request(&mut self, client: usize) -> usize {
        if self.pending.len() <= client {
            self.pending.resize_with(client + 1, Vec::new);
        }
        let rix = self.sample_request();
        let ops: Vec<PreparedOp> = self.requests[rix]
            .ops
            .clone()
            .iter()
            .map(|op| match op {
                Op::Query(tid) => {
                    let params = self.gen.bind_all(&self.query_params[*tid], &mut self.rng);
                    PreparedOp::Query(
                        Query::bind(*tid, self.queries[*tid].clone(), params)
                            .expect("validated definitions"),
                    )
                }
                Op::Update(tid) => {
                    let params = self.gen.bind_all(&self.update_params[*tid], &mut self.rng);
                    PreparedOp::Update(
                        Update::bind(*tid, self.updates[*tid].clone(), params)
                            .expect("validated definitions"),
                    )
                }
            })
            .collect();
        let n = ops.len();
        self.pending[client] = ops;
        n
    }
}

/// Drives one application instance through the DSSP for the simulator.
pub struct DsspWorkload {
    dssp: Dssp,
    home: HomeServer,
    ops: OpSampler,
    costs: CostModel,
}

impl DsspWorkload {
    /// Builds a workload over a freshly populated database.
    ///
    /// * `app` — the application definition;
    /// * `db` / `ids` — populated master database and its id spaces;
    /// * `exposures` — per-template exposure levels (strategy or
    ///   methodology output);
    /// * `zipf_exponent` — popularity skew for `ParamSpec::PopularId`.
    pub fn new(
        app: &AppDef,
        db: Database,
        ids: IdSpaces,
        exposures: Exposures,
        zipf_exponent: f64,
        seed: u64,
    ) -> DsspWorkload {
        let matrix = analysis_matrix(app);
        DsspWorkload::with_matrix(app, db, ids, exposures, matrix, zipf_exponent, seed)
    }

    /// As [`DsspWorkload::new`] with a precomputed IPM matrix (ablations
    /// pass a constraint-free matrix here).
    pub fn with_matrix(
        app: &AppDef,
        db: Database,
        ids: IdSpaces,
        exposures: Exposures,
        matrix: IpmMatrix,
        zipf_exponent: f64,
        seed: u64,
    ) -> DsspWorkload {
        let config = DsspConfig::new(app.name, exposures, matrix);
        DsspWorkload::with_config(app, db, ids, config, zipf_exponent, seed)
    }

    /// The fully general constructor: an explicit [`DsspConfig`] (custom
    /// cache capacity, tenant id, ...).
    pub fn with_config(
        app: &AppDef,
        db: Database,
        ids: IdSpaces,
        config: DsspConfig,
        zipf_exponent: f64,
        seed: u64,
    ) -> DsspWorkload {
        assert_eq!(
            config.exposures.queries.len(),
            app.queries.len(),
            "exposure shape"
        );
        assert_eq!(
            config.exposures.updates.len(),
            app.updates.len(),
            "exposure shape"
        );
        DsspWorkload {
            dssp: Dssp::new(config),
            home: HomeServer::new(db),
            ops: OpSampler::new(app, ids, zipf_exponent, seed),
            costs: CostModel::default(),
        }
    }

    /// Replaces the cost model (builder style).
    pub fn with_costs(mut self, costs: CostModel) -> DsspWorkload {
        self.costs = costs;
        self
    }

    /// The DSSP proxy (inspection hook for reports and tests).
    pub fn dssp(&self) -> &Dssp {
        &self.dssp
    }

    /// Mutable proxy access (attach trace sinks, flush telemetry).
    pub fn dssp_mut(&mut self) -> &mut Dssp {
        &mut self.dssp
    }

    /// The home server (inspection hook).
    pub fn home(&self) -> &HomeServer {
        &self.home
    }

    /// Attaches the scalability observatory to the proxy: every trace
    /// event (hit/miss/invalidation/fault) is bucketed into the returned
    /// shared time series by simulated time, producing per-window
    /// hit/miss/invalidation curves alongside the simulator's own
    /// throughput/latency series. Merge the two after the run — the
    /// counter names are disjoint.
    pub fn attach_observatory(&mut self, width_micros: Time) -> scs_telemetry::SharedTimeSeries {
        let (sink, series) = scs_telemetry::TimeSeriesSink::new(width_micros);
        self.dssp.add_trace_sink(Box::new(sink));
        series
    }
}

/// Characterizes an application's IPM matrix with default options.
pub fn analysis_matrix(app: &AppDef) -> IpmMatrix {
    characterize_app(
        &app.update_templates(),
        &app.query_templates(),
        &app.catalog(),
        AnalysisOptions::default(),
    )
}

impl Workload for DsspWorkload {
    fn begin_request(&mut self, client: usize) -> usize {
        self.ops.begin_request(client)
    }

    fn execute_op(&mut self, client: usize, op_index: usize) -> OpCost {
        let c = &self.costs;
        match &self.ops.pending[client][op_index] {
            PreparedOp::Query(q) => {
                let statement_bytes = q.statement_text().len() as u64;
                let resp = self
                    .dssp
                    .execute_query(q, &mut self.home)
                    .expect("validated query templates");
                let result_bytes = resp.result.approx_size_bytes() as u64;
                let home_trip = (!resp.hit).then(|| HomeTrip {
                    request_bytes: statement_bytes + 64,
                    reply_bytes: result_bytes + 64,
                    home_cpu: c.home_cpu_query + c.home_cpu_per_row * resp.result.len() as Time,
                    shard: 0,
                });
                OpCost {
                    dssp_cpu: c.dssp_cpu_per_op,
                    home_trip,
                    reply_bytes: result_bytes + 128,
                    ..OpCost::default()
                }
            }
            PreparedOp::Update(u) => {
                let statement_bytes = u.statement_text().len() as u64;
                // Rejected updates (FK violation on a deleted row, ...)
                // still cost a home round trip; they change nothing and
                // trigger no invalidation.
                let scanned = match self.dssp.execute_update(u, &mut self.home) {
                    Ok(resp) => resp.scanned,
                    Err(_) => 0,
                };
                OpCost {
                    dssp_cpu: c.dssp_cpu_per_op + c.dssp_cpu_per_scan * scanned as Time,
                    home_trip: Some(HomeTrip {
                        request_bytes: statement_bytes + 64,
                        reply_bytes: c.ack_bytes,
                        home_cpu: c.home_cpu_update,
                        shard: 0,
                    }),
                    reply_bytes: c.ack_bytes + 128,
                    ..OpCost::default()
                }
            }
        }
    }

    fn hit_rate(&self) -> f64 {
        self.dssp.stats().hit_rate()
    }

    fn observe_time(&mut self, now: Time) {
        // Trace events emitted during execute_op carry simulated time.
        self.dssp.set_sim_time_micros(now);
    }
}

/// Drives one application instance through a multi-proxy [`ProxyFleet`]
/// for the simulator — the paper's scale-out deployment (§5, Fig. 8–10).
///
/// Each operation routes to one replica (per the fleet's
/// [`scs_dssp::RoutingMode`]) and its [`OpCost::proxy`] tag steers the
/// queueing cost onto that replica's service center
/// ([`scs_netsim::SystemSpec::dssp_nodes`] must match the fleet size).
/// Invalidation-scan work delivered at the serving replica just before an
/// operation is charged to that operation's DSSP CPU. An update's fanout
/// scans the *whole* fleet; that work is charged to the forwarding
/// replica — a deliberate simplification that slightly overcharges one
/// node on the (rare) updates.
pub struct FleetWorkload {
    fleet: ProxyFleet,
    ops: OpSampler,
    costs: CostModel,
}

impl FleetWorkload {
    /// Builds a fleet workload over a freshly populated database (same
    /// arguments as [`DsspWorkload::new`] plus the fleet shape).
    pub fn new(
        app: &AppDef,
        db: Database,
        ids: IdSpaces,
        exposures: Exposures,
        fleet: FleetConfig,
        zipf_exponent: f64,
        seed: u64,
    ) -> FleetWorkload {
        let matrix = analysis_matrix(app);
        let config = DsspConfig::new(app.name, exposures, matrix);
        FleetWorkload::with_config(app, db, ids, config, fleet, zipf_exponent, seed)
    }

    /// The fully general constructor: an explicit [`DsspConfig`] cloned
    /// into every replica.
    pub fn with_config(
        app: &AppDef,
        db: Database,
        ids: IdSpaces,
        config: DsspConfig,
        fleet: FleetConfig,
        zipf_exponent: f64,
        seed: u64,
    ) -> FleetWorkload {
        assert_eq!(
            config.exposures.queries.len(),
            app.queries.len(),
            "exposure shape"
        );
        assert_eq!(
            config.exposures.updates.len(),
            app.updates.len(),
            "exposure shape"
        );
        FleetWorkload {
            fleet: ProxyFleet::new(config, HomeServer::new(db), fleet),
            ops: OpSampler::new(app, ids, zipf_exponent, seed),
            costs: CostModel::default(),
        }
    }

    /// Replaces the cost model (builder style) — the multi-proxy figures
    /// use [`CostModel::dssp_bound`].
    pub fn with_costs(mut self, costs: CostModel) -> FleetWorkload {
        self.costs = costs;
        self
    }

    /// The fleet (inspection hook for reports and tests).
    pub fn fleet(&self) -> &ProxyFleet {
        &self.fleet
    }

    /// Mutable fleet access (attach trace sinks, inject faults).
    pub fn fleet_mut(&mut self) -> &mut ProxyFleet {
        &mut self.fleet
    }
}

impl Workload for FleetWorkload {
    fn begin_request(&mut self, client: usize) -> usize {
        self.ops.begin_request(client)
    }

    fn execute_op(&mut self, client: usize, op_index: usize) -> OpCost {
        let c = &self.costs;
        match &self.ops.pending[client][op_index] {
            PreparedOp::Query(q) => {
                let statement_bytes = q.statement_text().len() as u64;
                let fr = self
                    .fleet
                    .execute_query(q)
                    .expect("validated query templates");
                let result_bytes = fr.resp.result.approx_size_bytes() as u64;
                let home_trip = (!fr.resp.hit).then(|| HomeTrip {
                    request_bytes: statement_bytes + 64,
                    reply_bytes: result_bytes + 64,
                    home_cpu: c.home_cpu_query + c.home_cpu_per_row * fr.resp.result.len() as Time,
                    shard: 0,
                });
                OpCost {
                    dssp_cpu: c.dssp_cpu_per_op
                        + c.dssp_cpu_per_scan * fr.delivered.scanned as Time,
                    home_trip,
                    reply_bytes: result_bytes + 128,
                    proxy: fr.proxy,
                }
            }
            PreparedOp::Update(u) => {
                let statement_bytes = u.statement_text().len() as u64;
                // Rejected updates still cost a home round trip; they
                // change nothing and trigger no invalidation. (Their
                // serving replica is unknown on rejection — node 0
                // absorbs the cost; rejections are rare.)
                let (proxy, scanned) = match self.fleet.execute_update(u) {
                    Ok(fr) => (fr.proxy, fr.resp.scanned),
                    Err(_) => (0, 0),
                };
                OpCost {
                    dssp_cpu: c.dssp_cpu_per_op + c.dssp_cpu_per_scan * scanned as Time,
                    home_trip: Some(HomeTrip {
                        request_bytes: statement_bytes + 64,
                        reply_bytes: c.ack_bytes,
                        home_cpu: c.home_cpu_update,
                        shard: 0,
                    }),
                    reply_bytes: c.ack_bytes + 128,
                    proxy,
                }
            }
        }
    }

    fn hit_rate(&self) -> f64 {
        self.fleet.rollup_stats().hit_rate()
    }

    fn observe_time(&mut self, now: Time) {
        // Advances every replica's lease/trace clock, fires the interval
        // flush, and delivers fanout batches that became due.
        self.fleet.set_sim_time_micros(now);
    }
}

/// Builds the partition map a sharded home tier uses for `app`: every
/// table with an **eligible** integer column — one every update on the
/// table provably pins (inserts always do; deletes/modifies need an
/// equality restriction on it) — is **hash-split** across all `shards`
/// by the eligible column its *queries* restrict on most often, so the
/// common lookups route to one shard while per-key load (Zipf head
/// included) spreads uniformly. Tables with no eligible column keep
/// whole-table placement. The 1-shard map is [`PartitionMap::single`] —
/// the classic home, pinned op-for-op equivalent by the sharded-home
/// tests.
///
/// Picking the most-queried column rather than blindly the primary key
/// matters: a RUBiS-style `bids` table is keyed by `b_id` but looked up
/// by `b_item_id`, and a PK split would scatter-gather every bid-history
/// read across the whole tier.
pub fn home_shard_map(app: &AppDef, shards: usize) -> PartitionMap {
    let mut map = PartitionMap::by_table(shards);
    if shards <= 1 {
        return map;
    }
    for schema in &app.schemas {
        let best = schema
            .columns
            .iter()
            .filter(|c| c.ty == scs_storage::ColumnType::Int)
            .filter(|c| updates_pin_column(app, &schema.name, &c.name))
            .map(|c| (query_pin_weight(app, &schema.name, &c.name), &c.name))
            // `max_by_key` keeps the *last* maximum; reverse so ties go
            // to the earliest schema column (stable across runs).
            .rev()
            .max_by_key(|(w, _)| *w);
        if let Some((_, column)) = best {
            map = map.with_placement(
                &schema.name,
                TablePlacement::Hash {
                    column: column.clone(),
                },
            );
        }
    }
    map
}

/// How much query traffic an equality restriction on `column` would pin
/// to one shard: the sum of request-mix weights over query templates
/// reading `table` that restrict `column` by equality.
fn query_pin_weight(app: &AppDef, table: &str, column: &str) -> u32 {
    let mut weight_of = vec![0u32; app.queries.len()];
    for r in &app.requests {
        for op in &r.ops {
            if let Op::Query(tid) = op {
                weight_of[*tid] += r.weight;
            }
        }
    }
    app.queries
        .iter()
        .enumerate()
        .filter(|(_, q)| q.template.from.iter().any(|t| t.table == table))
        .filter(|(_, q)| {
            q.template.predicates.iter().any(|p| {
                p.as_restriction()
                    .is_some_and(|(c, op, _)| op == scs_sqlkit::CmpOp::Eq && c.column == column)
            })
        })
        .map(|(tid, _)| weight_of[tid])
        .sum()
}

/// True when every update template touching `table` routes under a
/// key split on `column`: inserts always do (the candidate row carries
/// the value); deletes/modifies must carry an equality restriction on it.
fn updates_pin_column(app: &AppDef, table: &str, column: &str) -> bool {
    app.update_templates()
        .iter()
        .filter(|t| t.table() == table)
        .all(|t| match &**t {
            UpdateTemplate::Insert(_) => true,
            _ => t.predicates().iter().any(|p| {
                p.as_restriction()
                    .is_some_and(|(c, op, _)| op == scs_sqlkit::CmpOp::Eq && c.column == column)
            }),
        })
}

/// Drives one application instance through a single DSSP proxy against a
/// **sharded** home tier — the partitioned-master deployment. Updates
/// route to their owning shard and queries scatter-gather; each home
/// trip's [`HomeTrip::shard`] tag steers its queueing cost onto that
/// shard's service center ([`scs_netsim::SystemSpec::home_shards`] must
/// match the map). Under the default (home-bound) cost model this is the
/// experiment where the blind strategy — pinned to the home tier —
/// finally scales: its binding resource is now partitioned.
pub struct ShardedWorkload {
    dssp: Dssp,
    home: ShardedHome,
    ops: OpSampler,
    costs: CostModel,
    /// Round-robin cursor spreading scatter-gather trips across their
    /// participant shards (the simulator bills one center per trip).
    scatter_rr: usize,
}

impl ShardedWorkload {
    /// Builds a sharded workload over a freshly populated database
    /// partitioned under `map` (same arguments as [`DsspWorkload::new`]
    /// plus the partition map; see [`home_shard_map`]).
    pub fn new(
        app: &AppDef,
        db: Database,
        ids: IdSpaces,
        exposures: Exposures,
        map: PartitionMap,
        zipf_exponent: f64,
        seed: u64,
    ) -> ShardedWorkload {
        let matrix = analysis_matrix(app);
        let config = DsspConfig::new(app.name, exposures, matrix);
        assert_eq!(
            config.exposures.queries.len(),
            app.queries.len(),
            "exposure shape"
        );
        ShardedWorkload {
            dssp: Dssp::new(config),
            home: ShardedHome::new(db, map),
            ops: OpSampler::new(app, ids, zipf_exponent, seed),
            costs: CostModel::default(),
            scatter_rr: 0,
        }
    }

    /// Replaces the cost model (builder style).
    pub fn with_costs(mut self, costs: CostModel) -> ShardedWorkload {
        self.costs = costs;
        self
    }

    /// The DSSP proxy (inspection hook).
    pub fn dssp(&self) -> &Dssp {
        &self.dssp
    }

    /// Mutable proxy access.
    pub fn dssp_mut(&mut self) -> &mut Dssp {
        &mut self.dssp
    }

    /// The sharded home tier (inspection hook).
    pub fn home(&self) -> &ShardedHome {
        &self.home
    }
}

impl Workload for ShardedWorkload {
    fn begin_request(&mut self, client: usize) -> usize {
        self.ops.begin_request(client)
    }

    fn execute_op(&mut self, client: usize, op_index: usize) -> OpCost {
        let c = &self.costs;
        match &self.ops.pending[client][op_index] {
            PreparedOp::Query(q) => {
                let statement_bytes = q.statement_text().len() as u64;
                let participants = self.home.map().shards_for_query(q);
                let resp = self
                    .dssp
                    .execute_query_sharded(q, &mut self.home)
                    .expect("validated query templates");
                let result_bytes = resp.result.approx_size_bytes() as u64;
                let home_trip = (!resp.hit).then(|| {
                    let k = participants.len().max(1);
                    // A routed miss queues on its one owner; a
                    // scatter-gather trip is billed to one participant
                    // (round-robin) — the simulator models one center
                    // per trip, and round-robin spreads the aggregate
                    // scatter load evenly, matching the tier-wide cost
                    // the gather actually induces (each shard scans
                    // only its slice, so the base scan does not
                    // multiply; the per-participant overhead does).
                    let shard = if k == 1 {
                        participants[0]
                    } else {
                        self.scatter_rr += 1;
                        participants[self.scatter_rr % k]
                    };
                    HomeTrip {
                        request_bytes: statement_bytes + 64,
                        reply_bytes: result_bytes + 64,
                        home_cpu: c.home_cpu_query
                            + c.home_cpu_per_row * resp.result.len() as Time
                            + c.home_scatter_overhead * (k - 1) as Time,
                        shard,
                    }
                });
                OpCost {
                    dssp_cpu: c.dssp_cpu_per_op,
                    home_trip,
                    reply_bytes: result_bytes + 128,
                    ..OpCost::default()
                }
            }
            PreparedOp::Update(u) => {
                let statement_bytes = u.statement_text().len() as u64;
                // Rejected updates (cross-shard FK violation on a
                // deleted parent, ...) still cost a trip to the shard
                // that would have owned them; they change nothing and
                // consume no epoch on any stream.
                let (shard, scanned) = match self.dssp.execute_update_sharded(u, &mut self.home) {
                    Ok((resp, shard)) => (shard, resp.scanned),
                    Err(_) => (
                        self.home
                            .map()
                            .shard_for_update(self.home.shard(0).database(), u)
                            .unwrap_or(0),
                        0,
                    ),
                };
                OpCost {
                    dssp_cpu: c.dssp_cpu_per_op + c.dssp_cpu_per_scan * scanned as Time,
                    home_trip: Some(HomeTrip {
                        request_bytes: statement_bytes + 64,
                        reply_bytes: c.ack_bytes,
                        home_cpu: c.home_cpu_update,
                        shard,
                    }),
                    reply_bytes: c.ack_bytes + 128,
                    ..OpCost::default()
                }
            }
        }
    }

    fn hit_rate(&self) -> f64 {
        self.dssp.stats().hit_rate()
    }

    fn observe_time(&mut self, now: Time) {
        self.dssp.set_sim_time_micros(now);
        self.home.set_sim_time_micros(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toystore;
    use scs_core::ExposureLevel;
    use scs_dssp::StrategyKind;
    use scs_netsim::{run, SimConfig, SystemSpec, SEC};

    fn toystore_workload(kind: StrategyKind, seed: u64) -> DsspWorkload {
        let app = toystore::toystore();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        toystore::populate(&mut db, 50, 30, &mut rng);
        let mut ids = IdSpaces::default();
        ids.declare("toys", 50);
        ids.declare("customers", 30);
        ids.declare("credit_card", 15);
        let exposures = kind.exposures(app.updates.len(), app.queries.len());
        DsspWorkload::new(&app, db, ids, exposures, 1.0, seed)
    }

    fn quick_cfg(users: usize) -> SimConfig {
        SimConfig {
            users,
            duration: 90 * SEC,
            warmup: 15 * SEC,
            think_mean: 7 * SEC,
            seed: 11,
            spec: SystemSpec::default(),
        }
    }

    #[test]
    fn end_to_end_simulation_runs() {
        let mut w = toystore_workload(StrategyKind::ViewInspection, 1);
        let m = run(&quick_cfg(20), &mut w);
        assert!(m.requests_completed > 20);
        assert!(m.ops_executed > 0);
        assert!(w.dssp().stats().queries > 0);
    }

    #[test]
    fn view_inspection_gets_better_hit_rate_than_blind() {
        let mut mvis = toystore_workload(StrategyKind::ViewInspection, 2);
        let mut mbs = toystore_workload(StrategyKind::Blind, 2);
        let cfg = quick_cfg(30);
        let a = run(&cfg, &mut mvis);
        let b = run(&cfg, &mut mbs);
        assert!(
            a.hit_rate > b.hit_rate,
            "MVIS hit rate {} should beat MBS {}",
            a.hit_rate,
            b.hit_rate
        );
    }

    #[test]
    fn driver_is_deterministic_per_seed() {
        use scs_netsim::Workload;
        let mut a = toystore_workload(StrategyKind::ViewInspection, 9);
        let mut b = toystore_workload(StrategyKind::ViewInspection, 9);
        for _ in 0..50 {
            let na = a.begin_request(0);
            let nb = b.begin_request(0);
            assert_eq!(na, nb);
            for i in 0..na {
                let ca = a.execute_op(0, i);
                let cb = b.execute_op(0, i);
                assert_eq!(ca.dssp_cpu, cb.dssp_cpu);
                assert_eq!(ca.reply_bytes, cb.reply_bytes);
                assert_eq!(ca.home_trip.is_some(), cb.home_trip.is_some());
            }
        }
        assert_eq!(a.dssp().stats(), b.dssp().stats());
    }

    #[test]
    fn request_mix_respects_weights() {
        use scs_netsim::Workload;
        let mut w = toystore_workload(StrategyKind::ViewInspection, 10);
        // toystore: browse(8, 2 ops), demographics(3, 1 op),
        // discontinue(1, 1 op), add-card(1, 1 op) — expected mean ops
        // = (8*2 + 3 + 1 + 1) / 13 ≈ 1.62.
        let n = 2_000;
        let mut total_ops = 0usize;
        for _ in 0..n {
            let ops = w.begin_request(0);
            total_ops += ops;
            for i in 0..ops {
                w.execute_op(0, i);
            }
        }
        let mean = total_ops as f64 / n as f64;
        assert!((1.45..1.8).contains(&mean), "mean ops/request = {mean}");
    }

    #[test]
    fn rejected_updates_are_tolerated() {
        use scs_netsim::Workload;
        // Run enough toystore traffic that deletes + credit-card inserts
        // produce FK violations / missing rows; the driver must absorb
        // them as no-op home trips without panicking.
        let mut w = toystore_workload(StrategyKind::StatementInspection, 11);
        for _ in 0..500 {
            let ops = w.begin_request(0);
            for i in 0..ops {
                let cost = w.execute_op(0, i);
                assert!(cost.reply_bytes > 0);
            }
        }
        assert!(w.dssp().stats().updates > 0);
    }

    #[test]
    fn observatory_buckets_proxy_events_by_sim_time() {
        let mut w = toystore_workload(StrategyKind::ViewInspection, 3);
        let series = w.attach_observatory(10 * SEC);
        let m = run(&quick_cfg(10), &mut w);
        assert!(m.ops_executed > 0);
        let series = series.lock().unwrap();
        assert!(series.len() > 1, "a 90s run spans several 10s windows");
        // The windowed curves reconcile with the proxy's own counters.
        let stats = w.dssp().stats();
        assert_eq!(series.counter_total("query_hit"), stats.hits);
        assert_eq!(series.counter_total("query_miss"), stats.misses);
        assert_eq!(series.counter_total("update_applied"), stats.updates);
        assert_eq!(
            series.counter_total("entry_invalidated"),
            stats.invalidations
        );
        // Events land across the run, not all in the first window.
        let curve = series.counter_curve("query_miss");
        assert!(curve.iter().filter(|&&n| n > 0).count() > 1);
    }

    fn toystore_fleet(
        kind: StrategyKind,
        fleet: scs_dssp::FleetConfig,
        seed: u64,
    ) -> FleetWorkload {
        let app = toystore::toystore();
        let mut db = Database::new();
        for s in &app.schemas {
            db.create_table(s.clone()).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        toystore::populate(&mut db, 50, 30, &mut rng);
        let mut ids = IdSpaces::default();
        ids.declare("toys", 50);
        ids.declare("customers", 30);
        ids.declare("credit_card", 15);
        let exposures = kind.exposures(app.updates.len(), app.queries.len());
        FleetWorkload::new(&app, db, ids, exposures, fleet, 1.0, seed)
    }

    #[test]
    fn fleet_simulation_runs_and_spreads_load() {
        use scs_dssp::{FleetConfig, RoutingMode};
        let n = 3;
        let mut w = toystore_fleet(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(n, RoutingMode::RoundRobin),
            5,
        );
        let mut cfg = quick_cfg(20);
        cfg.spec = SystemSpec::with_dssp_nodes(n);
        let m = run(&cfg, &mut w);
        assert!(m.requests_completed > 20);
        assert_eq!(m.dssp_node_utilization.len(), n);
        // Round-robin keeps every replica busy and roughly even.
        assert!(m.dssp_node_utilization.iter().all(|&u| u > 0.0));
        let (max, min) = m
            .dssp_node_utilization
            .iter()
            .fold((0.0f64, 1.0f64), |(hi, lo), &u| (hi.max(u), lo.min(u)));
        assert!(
            max - min < 0.1,
            "uneven spread: {:?}",
            m.dssp_node_utilization
        );
        // Every replica served queries and heard every invalidation.
        let stats = w.fleet().rollup_stats();
        assert!(stats.queries > 0);
        for p in 0..n {
            assert_eq!(w.fleet().proxy(p).epoch(), w.fleet().home().epoch());
        }
    }

    #[test]
    fn fleet_of_one_matches_single_proxy_driver() {
        use scs_dssp::{FleetConfig, RoutingMode};
        use scs_netsim::Workload;
        // Same seed ⇒ identical request streams; a 1-replica immediate
        // fleet must produce the same cache behaviour and costs as the
        // classic driver.
        let mut classic = toystore_workload(StrategyKind::ViewInspection, 7);
        let mut fleet = toystore_fleet(
            StrategyKind::ViewInspection,
            FleetConfig::reliable(1, RoutingMode::RoundRobin),
            7,
        );
        for _ in 0..100 {
            let na = classic.begin_request(0);
            let nb = fleet.begin_request(0);
            assert_eq!(na, nb);
            for i in 0..na {
                let ca = classic.execute_op(0, i);
                let cb = fleet.execute_op(0, i);
                assert_eq!(ca.dssp_cpu, cb.dssp_cpu);
                assert_eq!(ca.reply_bytes, cb.reply_bytes);
                assert_eq!(ca.home_trip.is_some(), cb.home_trip.is_some());
                assert_eq!(cb.proxy, 0);
            }
        }
        assert_eq!(classic.dssp().stats(), fleet.fleet().rollup_stats());
    }

    #[test]
    fn exposure_shape_mismatch_panics() {
        let app = toystore::toystore();
        let db = Database::new();
        let bad = Exposures {
            updates: vec![ExposureLevel::Stmt; 99],
            queries: vec![ExposureLevel::View; 99],
        };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            DsspWorkload::new(&app, db, IdSpaces::default(), bad, 1.0, 0)
        }));
        assert!(r.is_err());
    }
}
