//! Properties of the leakage audit plane (DESIGN.md §15):
//!
//! * **lattice monotonicity** — raising any single template's exposure
//!   level never decreases any ledger counter, and blind-everywhere
//!   meters exactly zero revealed bytes;
//! * **causal explain chains** — every reveal event explains as a
//!   time-ordered request → decision-path → exposure-level → bytes
//!   chain, rooted at exactly one request;
//! * **inertness** — a proxy with no audit plane attached behaves
//!   byte-identically to an audited one (same telemetry, same simulated
//!   run), so the meter can ride in production probes for free;
//! * **sink health** — journal write failures surface as counters in
//!   the `leakage` export instead of vanishing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scs_apps::{
    report, run_audited_trial, run_trial, toystore, BenchApp, DsspWorkload, Fidelity, IdSpaces,
};
use scs_core::{ExposureLevel, Exposures};
use scs_storage::Database;
use scs_telemetry::{shared_audit, Json};
use std::collections::BTreeMap;

fn toystore_workload(exposures: Exposures, seed: u64) -> DsspWorkload {
    let app = toystore::toystore();
    let mut db = Database::new();
    for s in &app.schemas {
        db.create_table(s.clone()).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    toystore::populate(&mut db, 50, 30, &mut rng);
    let mut ids = IdSpaces::default();
    ids.declare("toys", 50);
    ids.declare("customers", 30);
    ids.declare("credit_card", 15);
    DsspWorkload::new(&app, db, ids, exposures, 1.0, seed)
}

/// Drives `requests` full client requests through the proxy, outside
/// the simulator — the op stream depends only on the seed, so two
/// workloads at different exposure assignments see identical ops.
fn drive(w: &mut DsspWorkload, requests: usize) {
    use scs_netsim::Workload;
    for _ in 0..requests {
        let n = w.begin_request(0);
        for i in 0..n {
            w.execute_op(0, i);
        }
    }
}

/// Runs an audited workload and returns the leakage summary.
fn audited_summary(exposures: Exposures, seed: u64, requests: usize) -> Json {
    let mut w = toystore_workload(exposures, seed);
    w.dssp_mut().attach_audit(shared_audit(1), 0);
    drive(&mut w, requests);
    let doc = w.dssp().audit().unwrap().lock().unwrap().summary_json();
    doc
}

/// Flattens every numeric field to a stable path → value map. Array
/// elements are keyed by their `template`/`tenant`/`replica` identity
/// (not position) so ledgers line up across runs that touched
/// different template subsets.
fn flatten(j: &Json, prefix: String, out: &mut BTreeMap<String, f64>) {
    match j {
        Json::Num(n) => {
            out.insert(prefix, *n);
        }
        Json::Obj(kv) => {
            for (k, v) in kv {
                flatten(v, format!("{prefix}/{k}"), out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                let key = v
                    .get("template")
                    .and_then(Json::as_u64)
                    .map(|t| t.to_string())
                    .or_else(|| v.get("tenant").and_then(Json::as_str).map(str::to_string))
                    .or_else(|| {
                        v.get("replica")
                            .and_then(Json::as_u64)
                            .map(|r| r.to_string())
                    })
                    .unwrap_or_else(|| i.to_string());
                flatten(v, format!("{prefix}/{key}"), out);
            }
        }
        _ => {}
    }
}

fn counters(doc: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    flatten(doc, String::new(), &mut out);
    out
}

/// Asserts every baseline counter holds or grows in `raised`.
fn assert_monotone(base: &BTreeMap<String, f64>, raised: &BTreeMap<String, f64>, what: &str) {
    for (key, b) in base {
        let r = raised.get(key).copied().unwrap_or(0.0);
        assert!(
            r >= *b,
            "{what}: ledger counter {key} fell from {b} to {r} — \
             raising an exposure level must never shrink measured leakage"
        );
    }
}

const REQUESTS: usize = 250;
const SEED: u64 = 41;

#[test]
fn blind_everywhere_meters_exactly_zero_bytes() {
    let app = toystore::toystore();
    let exposures = Exposures {
        updates: vec![ExposureLevel::Blind; app.updates.len()],
        queries: vec![ExposureLevel::Blind; app.queries.len()],
    };
    let doc = audited_summary(exposures, SEED, REQUESTS);
    assert_eq!(doc.get("revealed_bytes").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("reveal_events").and_then(Json::as_u64), Some(0));
    // The plane still counted arrivals — zero leakage is a measurement,
    // not an absence of one.
    assert!(doc.get("requests").and_then(Json::as_u64).unwrap() > 0);
}

#[test]
fn leakage_is_monotone_in_the_exposure_lattice() {
    let app = toystore::toystore();
    let (nu, nq) = (app.updates.len(), app.queries.len());
    let mid = Exposures {
        updates: vec![ExposureLevel::Template; nu],
        queries: vec![ExposureLevel::Template; nq],
    };
    let base = counters(&audited_summary(mid.clone(), SEED, REQUESTS));

    // Raising any single update template one step never shrinks a counter.
    for i in 0..nu {
        let mut e = mid.clone();
        e.updates[i] = ExposureLevel::Stmt;
        let raised = counters(&audited_summary(e, SEED, REQUESTS));
        assert_monotone(&base, &raised, &format!("update {i} template->stmt"));
    }
    // Likewise any single query template, through both higher levels.
    for j in 0..nq {
        for to in [ExposureLevel::Stmt, ExposureLevel::View] {
            let mut e = mid.clone();
            e.queries[j] = to;
            let raised = counters(&audited_summary(e, SEED, REQUESTS));
            assert_monotone(&base, &raised, &format!("query {j} -> {}", to.as_str()));
        }
    }

    // And the uniform chain is monotone end to end: blind <= template
    // <= stmt <= stmt+view-queries.
    let uniform = |e_u: ExposureLevel, e_q: ExposureLevel| Exposures {
        updates: vec![e_u; nu],
        queries: vec![e_q; nq],
    };
    let blind = counters(&audited_summary(
        uniform(ExposureLevel::Blind, ExposureLevel::Blind),
        SEED,
        REQUESTS,
    ));
    let stmt = counters(&audited_summary(
        uniform(ExposureLevel::Stmt, ExposureLevel::Stmt),
        SEED,
        REQUESTS,
    ));
    let view = counters(&audited_summary(
        uniform(ExposureLevel::Stmt, ExposureLevel::View),
        SEED,
        REQUESTS,
    ));
    assert_monotone(&blind, &base, "uniform blind -> template");
    assert_monotone(&base, &stmt, "uniform template -> stmt");
    assert_monotone(&stmt, &view, "uniform stmt -> view queries");
}

#[test]
fn explain_chains_are_causal_and_singly_rooted() {
    let app = toystore::toystore();
    let exposures = Exposures {
        updates: vec![ExposureLevel::Stmt; app.updates.len()],
        queries: vec![ExposureLevel::View; app.queries.len()],
    };
    let mut w = toystore_workload(exposures, SEED);
    w.dssp_mut().attach_audit(shared_audit(1), 0);
    drive(&mut w, 200);

    let audit = w.dssp().audit().unwrap();
    let log = audit.lock().unwrap();
    assert!(!log.events().is_empty(), "run produced no reveal events");

    let root_seqs: Vec<u64> = log.roots().iter().map(|r| r.seq).collect();
    for ev in log.events() {
        // Exactly one request root owns this event.
        assert_eq!(
            root_seqs.iter().filter(|&&s| s == ev.request).count(),
            1,
            "event {} not reachable from exactly one request root",
            ev.seq
        );
        let doc = log.explain_reveal(ev.seq).expect("every event explains");
        let chain = doc.get("chain").and_then(Json::as_arr).unwrap();
        let steps: Vec<&str> = chain
            .iter()
            .map(|s| s.get("step").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(
            steps,
            ["request", "decision_path", "exposure_level", "reveal"],
            "chain shape for event {}",
            ev.seq
        );
        // Time-ordered: the request root precedes (or coincides with)
        // the reveal, and steps never go backwards.
        let ats: Vec<u64> = chain
            .iter()
            .map(|s| s.get("at_micros").and_then(Json::as_u64).unwrap())
            .collect();
        assert!(
            ats.windows(2).all(|p| p[0] <= p[1]),
            "chain for event {} is not time-ordered: {ats:?}",
            ev.seq
        );
        // The terminal step carries the bytes the ledger charged.
        assert_eq!(
            chain[3].get("bytes").and_then(Json::as_u64),
            Some(ev.stamp.bytes)
        );
    }
    // A seq past the journal explains to nothing, not to garbage.
    assert!(log.explain_reveal(u64::MAX).is_none());
}

#[test]
fn audit_plane_is_inert_when_disabled() {
    // Same seed, same ops; one proxy audited, one not. Everything the
    // proxy exports apart from the `leakage` section must be identical.
    let app = toystore::toystore();
    let exposures = Exposures {
        updates: vec![ExposureLevel::Stmt; app.updates.len()],
        queries: vec![ExposureLevel::View; app.queries.len()],
    };
    let mut plain = toystore_workload(exposures.clone(), SEED);
    let mut audited = toystore_workload(exposures, SEED);
    audited.dssp_mut().attach_audit(shared_audit(1), 0);
    drive(&mut plain, 300);
    drive(&mut audited, 300);

    let strip_leakage = |doc: Json| -> Json {
        match doc {
            Json::Obj(kv) => Json::Obj(kv.into_iter().filter(|(k, _)| k != "leakage").collect()),
            other => other,
        }
    };
    let a = strip_leakage(report::dssp_telemetry_json(plain.dssp()));
    let b = strip_leakage(report::dssp_telemetry_json(audited.dssp()));
    assert_eq!(a, b, "attaching the audit plane changed proxy behavior");

    let enabled = report::leakage_json(audited.dssp());
    assert_eq!(enabled.get("enabled").and_then(Json::as_bool), Some(true));
    assert!(
        enabled
            .get("revealed_bytes")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let disabled = report::leakage_json(plain.dssp());
    assert_eq!(disabled.get("enabled").and_then(Json::as_bool), Some(false));
}

#[test]
fn audited_simulation_runs_are_equivalent_to_plain_ones() {
    // The netsim pinning: an audited trial's simulated run is
    // op-for-op identical to the unaudited one.
    let fid = Fidelity {
        duration_secs: 10,
        warmup_secs: 2,
        max_users: 64,
        resolution: 128,
    };
    let exposures = {
        let def = BenchApp::Auction.def();
        Exposures {
            updates: vec![ExposureLevel::Stmt; def.updates.len()],
            queries: vec![ExposureLevel::View; def.queries.len()],
        }
    };
    let plain = run_trial(BenchApp::Auction, &exposures, 24, fid, SEED);
    let (metered, audit) = run_audited_trial(BenchApp::Auction, &exposures, 24, fid, SEED);
    assert_eq!(plain.ops_executed, metered.ops_executed);
    assert_eq!(plain.requests_completed, metered.requests_completed);
    assert_eq!(plain.response_times, metered.response_times);
    assert_eq!(plain.hit_rate, metered.hit_rate);
    assert!(audit.lock().unwrap().revealed_bytes() > 0);
}

#[test]
fn journal_failures_surface_in_the_leakage_export() {
    struct Broken;
    impl std::io::Write for Broken {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("sink down"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let app = toystore::toystore();
    // Template-level queries key cache entries by sealed parameters,
    // so the crypto meter has envelope traffic to count.
    let exposures = Exposures {
        updates: vec![ExposureLevel::Stmt; app.updates.len()],
        queries: vec![ExposureLevel::Template; app.queries.len()],
    };
    let mut w = toystore_workload(exposures, SEED);
    w.dssp_mut().attach_audit(shared_audit(1), 0);
    w.dssp()
        .audit()
        .unwrap()
        .lock()
        .unwrap()
        .attach_journal(Box::new(Broken));
    drive(&mut w, 100);

    let doc = report::leakage_json(w.dssp());
    let journal = doc.get("journal").unwrap();
    assert_eq!(journal.get("active").and_then(Json::as_bool), Some(true));
    assert!(
        journal.get("write_errors").and_then(Json::as_u64).unwrap() > 0,
        "journal write failures must be counted, not swallowed"
    );
    assert_eq!(journal.get("lines").and_then(Json::as_u64), Some(0));
    // The ledger itself is unaffected by the sick sink.
    assert!(doc.get("revealed_bytes").and_then(Json::as_u64).unwrap() > 0);
    // And the crypto meter rode along.
    let crypto = doc.get("crypto").unwrap();
    assert!(crypto.get("seals").and_then(Json::as_u64).unwrap() > 0);
}
