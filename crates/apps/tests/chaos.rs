//! Ground-truth chaos property tests (the ISSUE's acceptance gate).
//!
//! Random fault schedules — message drop/delay/duplication, link outages,
//! proxy crashes — run against the oracle in `scs_apps::chaos`:
//!
//! 1. no served result is ever stale beyond the lease window;
//! 2. with every fault surface disabled, the fault-tolerant pipeline is
//!    byte-identical to the classic synchronous pipeline;
//! 3. fault/recovery telemetry is nonzero exactly when faults were
//!    injected.
//!
//! Case count is environment-tunable: the CI chaos job sets
//! `SCS_CHAOS_CASES` to run an elevated sweep on a fixed seed.

use proptest::prelude::*;
use scs_apps::{run_chaos, run_classic, ChaosConfig, OutageSpec};
use scs_dssp::{RecoveryMode, RetryPolicy, StrategyKind};
use scs_netsim::{FaultSpec, MS};

fn chaos_cases() -> u32 {
    std::env::var("SCS_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Property 1: under an arbitrary fault schedule, nothing served is
    /// stale beyond the lease.
    #[test]
    fn random_fault_schedules_never_exceed_the_lease(
        seed in 0u64..1_000_000,
        ops in 300usize..800,
        drop_pct in 0u32..=30,
        dup_pct in 0u32..=20,
        delay_pct in 0u32..=50,
        max_delay_ms in 1u64..80,
        lease_ms in 50u64..400,
        strategy_ix in 0usize..4,
        recovery_ix in 0usize..2,
        with_outage in 0u32..2,
        with_crashes in 0u32..2,
    ) {
        let lease = lease_ms * MS;
        let cfg = ChaosConfig {
            seed,
            ops,
            op_spacing_micros: MS,
            lease_micros: Some(lease),
            recovery: if recovery_ix == 0 {
                RecoveryMode::FlushAffected
            } else {
                RecoveryMode::FlushAll
            },
            strategy: StrategyKind::ALL[strategy_ix],
            channel_faults: FaultSpec {
                drop_probability: drop_pct as f64 / 100.0,
                duplicate_probability: dup_pct as f64 / 100.0,
                delay_probability: delay_pct as f64 / 100.0,
                max_delay_micros: max_delay_ms * MS,
                base_latency_micros: MS,
            },
            outage: (with_outage == 1).then_some(OutageSpec {
                mean_up_micros: 1_500 * MS,
                mean_down_micros: 80 * MS,
            }),
            scripted_outages: None,
            crash_mean_interval_micros: (with_crashes == 1).then_some(500 * MS),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_micros: 5 * MS,
                max_backoff_micros: 40 * MS,
                timeout_micros: 100 * MS,
                jitter: false,
            },
            timeseries_bucket_micros: None,
            load: None,
            overload: None,
        };
        let report = run_chaos(&cfg);
        prop_assert_eq!(
            report.stale_beyond_lease, 0,
            "stale-beyond-lease serve under faults (seed {})", seed
        );
        prop_assert!(
            report.max_observed_staleness_micros <= lease,
            "staleness {} exceeds lease {} (seed {})",
            report.max_observed_staleness_micros, lease, seed
        );
        // Within-lease hits may serve during outages, but a miss with the
        // home down must surface as unavailable, never as stale data —
        // which the oracle check above already proves; here we check the
        // accounting is consistent.
        prop_assert_eq!(
            report.queries_served + report.queries_unavailable
                + report.updates_applied + report.updates_unavailable
                + report.updates_rejected,
            report.outcomes.len() as u64
        );
    }

    /// Property 2: all fault surfaces off ⇒ byte-identical responses to
    /// the classic pipeline, and zero fault telemetry.
    #[test]
    fn disabled_faults_reproduce_the_classic_pipeline(
        seed in 0u64..1_000_000,
        ops in 100usize..400,
    ) {
        let cfg = ChaosConfig::faultless(seed, ops);
        let chaos = run_chaos(&cfg);
        let classic = run_classic(&cfg);
        prop_assert_eq!(&chaos.outcomes, &classic.outcomes);
        prop_assert_eq!(chaos.counters.total(), 0);
        prop_assert_eq!(classic.counters.total(), 0);
        prop_assert_eq!(chaos.stale_beyond_lease, 0);
        prop_assert_eq!(chaos.max_observed_staleness_micros, 0);
    }

    /// Property 3: when injection is on, the run records fault handling
    /// (and whenever the channel actually misbehaved, the proxy's
    /// counters show the response).
    #[test]
    fn injected_faults_show_up_in_telemetry(seed in 0u64..1_000_000) {
        let report = run_chaos(&ChaosConfig::chaotic(seed, 600));
        prop_assert!(
            report.counters.total() > 0,
            "chaotic schedule produced zero fault telemetry (seed {})", seed
        );
        if report.channel.dropped > 0 {
            // A dropped notification is either detected (an epoch gap on a
            // later message) or outlived by the lease; detection shows up
            // as gaps unless the stream went quiet first.
            prop_assert!(
                report.counters.epoch_gaps > 0
                    || report.counters.restarts > 0
                    || report.counters.lease_expirations > 0,
                "drops left no trace (seed {})", seed
            );
        }
    }
}
