//! Freshness-plane property tests against the chaos oracle (this PR's
//! acceptance gate):
//!
//! 1. under random fault schedules the plane's stale-age-at-serve never
//!    exceeds the lease, and its beyond-lease count agrees with the
//!    ground-truth oracle's verdict;
//! 2. the plane's commit stamps reproduce the oracle's master history
//!    timeline exactly (same epochs, same sim times);
//! 3. for a concrete chaotic run, the explain engine's causal chains
//!    are time-ordered and their `committed` steps land on the oracle's
//!    master-history timestamps.

use proptest::prelude::*;
use scs_apps::{run_chaos, ChaosConfig};
use scs_netsim::{FaultSpec, MS};
use scs_telemetry::Json;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Properties 1 + 2: lease-bounded staleness cross-checked against
    /// the oracle, and commit stamps matching the master history.
    #[test]
    fn plane_staleness_is_lease_bounded_and_commits_match_the_oracle(
        seed in 0u64..1_000_000,
        ops in 300usize..700,
        drop_pct in 0u32..=25,
        dup_pct in 0u32..=20,
        delay_pct in 0u32..=50,
        max_delay_ms in 1u64..60,
        lease_ms in 50u64..400,
    ) {
        let lease = lease_ms * MS;
        let mut cfg = ChaosConfig::chaotic(seed, ops);
        cfg.lease_micros = Some(lease);
        cfg.channel_faults = FaultSpec {
            drop_probability: drop_pct as f64 / 100.0,
            duplicate_probability: dup_pct as f64 / 100.0,
            delay_probability: delay_pct as f64 / 100.0,
            max_delay_micros: max_delay_ms * MS,
            base_latency_micros: MS,
        };
        let report = run_chaos(&cfg);
        let prov = report.provenance.as_ref().expect("chaos runs carry the plane");
        let p = prov.lock().unwrap();
        let rl = p.replica(0);

        // The oracle (full master value history) and the plane (epoch
        // stamps) measure staleness independently; both must agree that
        // nothing left the lease window.
        prop_assert_eq!(report.stale_beyond_lease, 0, "oracle verdict (seed {})", seed);
        prop_assert_eq!(rl.stale_beyond_lease, 0, "plane verdict (seed {})", seed);
        prop_assert!(
            rl.stale_age.max.unwrap_or(0) <= lease,
            "plane recorded stale age {:?} beyond the lease {} (seed {})",
            rl.stale_age.max, lease, seed
        );
        for ev in rl.serve_events() {
            prop_assert!(ev.within_lease, "journaled over-age serve at t={}", ev.at_micros);
            prop_assert!(ev.age_micros <= lease);
        }
        prop_assert_eq!(
            rl.serves,
            rl.fresh_serves + rl.stale_within_lease + rl.stale_beyond_lease
        );

        // Commit stamps ARE the master history: epoch e committed at the
        // instant the oracle snapshotted master state e.
        prop_assert_eq!(
            p.commits().len() as u64,
            report.updates_applied,
            "one commit stamp per applied update"
        );
        prop_assert_eq!(
            report.master_history_micros.len() as u64,
            report.updates_applied + 1,
            "oracle history: initial state + one entry per update"
        );
        for c in p.commits() {
            prop_assert_eq!(
                report.master_history_micros.get(c.epoch as usize).copied(),
                Some(c.at_micros),
                "commit stamp for epoch {} disagrees with the oracle timeline",
                c.epoch
            );
        }
        // Conservation holds at the end of the stream too.
        prop_assert!(p.conservation(0, final_epoch(&p)).balanced());
    }
}

/// The replica's final epoch, recovered from the journal (the chaos
/// harness does not expose the proxy after the run): the largest
/// `epoch_after` any arrival reached.
fn final_epoch(p: &scs_telemetry::ProvenanceLog) -> u64 {
    p.replica(0)
        .arrivals
        .iter()
        .map(|a| a.epoch_after)
        .max()
        .unwrap_or(0)
}

/// Property 3: on a fixed chaotic run, the explain chains are causal
/// (time-ordered) and pinned to the oracle's master history.
#[test]
fn explain_chains_are_causal_and_match_the_master_history() {
    let report = run_chaos(&ChaosConfig::chaotic(17, 1_500));
    let prov = report
        .provenance
        .as_ref()
        .expect("chaos runs carry the plane");
    let p = prov.lock().unwrap();
    let rl = p.replica(0);

    let chain_of = |doc: &Json| -> Vec<Json> {
        doc.get("chain")
            .and_then(Json::as_arr)
            .expect("explain docs carry a chain")
            .to_vec()
    };
    let step_at = |s: &Json| s.get("at_micros").and_then(Json::as_u64).unwrap();
    let step_name = |s: &Json| s.get("step").and_then(Json::as_str).unwrap().to_string();
    let assert_causal = |chain: &[Json]| {
        assert!(!chain.is_empty(), "empty causal chain");
        // Each step in the chain happens at or after... no: the chain
        // lists store (earlier) then the commit→flush→send→outcome leg;
        // the propagation leg itself must be monotone in time.
        let leg: Vec<&Json> = chain
            .iter()
            .filter(|s| {
                matches!(
                    step_name(s).as_str(),
                    "committed" | "flushed" | "sent" | "delivered" | "served" | "missed"
                )
            })
            .collect();
        for w in leg.windows(2) {
            assert!(
                step_at(w[0]) <= step_at(w[1]),
                "chain leg not time-ordered: {} at {} then {} at {}",
                step_name(w[0]),
                step_at(w[0]),
                step_name(w[1]),
                step_at(w[1])
            );
        }
    };
    // Every `committed` step anywhere must land on the oracle timeline.
    let assert_commits_match = |chain: &[Json]| {
        for s in chain.iter().filter(|s| step_name(s) == "committed") {
            let epoch = s.get("epoch").and_then(Json::as_u64).unwrap() as usize;
            assert_eq!(
                report.master_history_micros.get(epoch).copied(),
                Some(step_at(s)),
                "committed step for epoch {epoch} disagrees with the oracle"
            );
        }
    };

    // why-age-t: the stalest journaled serve.
    let stale = rl
        .serve_events()
        .iter()
        .filter(|e| e.pending_epoch.is_some())
        .max_by_key(|e| e.age_micros)
        .expect("a chaotic run serves at least one stale-within-lease hit");
    let doc = p
        .explain_serve(0, stale.query_template, stale.at_micros)
        .expect("journaled serve explains");
    assert_eq!(
        doc.get("age_micros").and_then(Json::as_u64),
        Some(stale.age_micros)
    );
    let chain = chain_of(&doc);
    assert_causal(&chain);
    assert_commits_match(&chain);
    // The age is exactly now - commit(pending epoch), per the oracle.
    let pending = stale.pending_epoch.unwrap() as usize;
    let commit_at = report.master_history_micros[pending];
    assert_eq!(stale.age_micros, stale.at_micros - commit_at);

    // why-miss: the first post-invalidation miss.
    let miss = rl
        .miss_events()
        .iter()
        .find(|e| !e.expired)
        .expect("a chaotic run records misses");
    let doc = p
        .explain_miss(0, miss.query_template, miss.at_micros)
        .expect("journaled miss explains");
    let chain = chain_of(&doc);
    assert_causal(&chain);
    assert_commits_match(&chain);

    // why-degraded, when the outage schedule produced one.
    if let Some(ev) = rl.degraded_events().first() {
        let doc = p
            .explain_degraded(0, ev.query_template, ev.at_micros)
            .expect("journaled degraded serve explains");
        assert_causal(&chain_of(&doc));
    }
}
