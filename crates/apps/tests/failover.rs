//! Failover property tests (this PR's acceptance gate).
//!
//! Scripted home-tier crash schedules — crash mid-update, crash
//! mid-fanout-flush, double failover, lagging-standby promotion over a
//! lossy ship stream, and a partitioned zombie primary — run against
//! the external oracles in `scs_apps::failover`:
//!
//! 1. under sync-quorum replication, **no acked write is ever lost**
//!    (the external ack ledger agrees with the group's account, and
//!    both are zero);
//! 2. under async replication the lost tail is exactly accounted: the
//!    group's `lost_acked` matches the externally-journaled acked
//!    epochs above every promotion barrier;
//! 3. no served result is ever stale beyond the lease, failovers and
//!    fencing included;
//! 4. the surviving primary's state equals the oracle's replay of the
//!    surviving commit history byte-for-byte (zombie divergence and
//!    rolled-back tails cannot hide);
//! 5. the invalidation conservation ledger balances for every proxy
//!    replica across every failover.
//!
//! Case count is environment-tunable: the CI failover job sets
//! `SCS_FAILOVER_CASES` to run an elevated sweep.

use proptest::prelude::*;
use scs_apps::{run_failover, FailoverConfig, FailoverReport};
use scs_dssp::{HomeGroup, HomeServer, ReplicationConfig, ReplicationMode};
use scs_sqlkit::Value;
use scs_storage::{ColumnType, Database, TableSchema};

fn failover_cases() -> u32 {
    std::env::var("SCS_FAILOVER_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// The invariants every scenario must satisfy, regardless of mode.
fn assert_core_invariants(name: &str, seed: u64, r: &FailoverReport) {
    assert_eq!(
        r.stale_beyond_lease, 0,
        "{}: stale-beyond-lease serve (seed {})",
        name, seed
    );
    assert!(
        r.ledger_consistent,
        "{}: group durability account disagrees with the external ledger (seed {})",
        name, seed
    );
    assert!(
        r.durability_ok,
        "{}: surviving state diverged from the oracle replay (seed {})",
        name, seed
    );
    assert!(
        r.conservation_balanced,
        "{}: conservation ledger unbalanced across failover (seed {})",
        name, seed
    );
    assert_eq!(
        r.lost_acked_total, r.external_lost_acked_total,
        "{}: lost-acked accounting mismatch (seed {})",
        name, seed
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(failover_cases()))]

    /// Every crash schedule, async mode: failovers happen, the lost
    /// tail is exactly accounted, and freshness + durability oracles
    /// hold.
    #[test]
    fn async_crash_schedules_stay_accounted(
        seed in 0u64..1_000_000,
        ops in 400usize..800,
        scenario_ix in 0usize..4,
    ) {
        let (name, cfg) = match scenario_ix {
            0 => ("crash_mid_update", FailoverConfig::crash_mid_update(seed, ops)),
            1 => ("crash_mid_fanout", FailoverConfig::crash_mid_fanout(seed, ops)),
            2 => ("double_failover", FailoverConfig::double_failover(seed, ops)),
            _ => ("lagging_standby", FailoverConfig::lagging_standby(seed, ops)),
        };
        let r = run_failover(&cfg);
        let expected_failovers = if scenario_ix == 2 { 2 } else { 1 };
        prop_assert_eq!(r.failovers.len(), expected_failovers, "{} (seed {})", name, seed);
        prop_assert!(
            r.queries_unavailable + r.updates_unavailable > 0,
            "{}: crash produced no unavailability at all (seed {})", name, seed
        );
        // The outage is bounded: promotion happens within the lease
        // plus one heartbeat of slack per failover.
        let bound = r.failovers.len() as u64
            * (cfg.replication.lease_micros + 2 * cfg.replication.heartbeat_micros);
        prop_assert!(
            r.unavailable_micros_total <= bound,
            "{}: tier down {}µs, bound {}µs (seed {})",
            name, r.unavailable_micros_total, bound, seed
        );
        assert_core_invariants(name, seed, &r);
    }

    /// The same schedules under sync-quorum: zero acked writes lost,
    /// ever, no matter how far the promoted standby lagged.
    #[test]
    fn sync_quorum_never_loses_an_acked_write(
        seed in 0u64..1_000_000,
        ops in 400usize..800,
        scenario_ix in 0usize..4,
    ) {
        let (name, cfg) = match scenario_ix {
            0 => ("crash_mid_update", FailoverConfig::crash_mid_update(seed, ops)),
            1 => ("crash_mid_fanout", FailoverConfig::crash_mid_fanout(seed, ops)),
            2 => ("double_failover", FailoverConfig::double_failover(seed, ops)),
            _ => ("lagging_standby", FailoverConfig::lagging_standby(seed, ops)),
        };
        let r = run_failover(&cfg.sync());
        prop_assert_eq!(
            r.lost_acked_total, 0,
            "{}: sync-quorum lost an acked write (seed {})", name, seed
        );
        prop_assert_eq!(r.external_lost_acked_total, 0);
        prop_assert!(!r.failovers.is_empty(), "{} (seed {})", name, seed);
        assert_core_invariants(name, seed, &r);
    }

    /// The zombie scenario: stale-term writes are fenced at every
    /// standby, the divergent branch is discarded on rejoin, and none
    /// of it reaches the surviving state or the caches. The lossy
    /// variant ships over a dropping/duplicating/delaying pipe, so a
    /// zombie record can reach a standby *before* the new primary's
    /// first post-promotion ship — the reordering race that a lazy
    /// (record-carried) term fence would lose.
    #[test]
    fn zombie_writes_are_fenced_and_discarded(
        seed in 0u64..1_000_000,
        ops in 400usize..800,
        sync in any::<bool>(),
        lossy in any::<bool>(),
    ) {
        let mut cfg = FailoverConfig::zombie(seed, ops);
        if sync {
            cfg = cfg.sync();
        }
        if lossy {
            cfg = cfg.lossy();
        }
        let r = run_failover(&cfg);
        prop_assert_eq!(r.failovers.len(), 1, "seed {}", seed);
        prop_assert_eq!(r.zombie_writes_applied, 5, "seed {}", seed);
        if !lossy {
            // Over a lossless pipe every stale-term send reaches a
            // standby and is fenced; a lossy pipe may legitimately
            // drop all of them before any standby sees one.
            prop_assert!(
                r.fenced_records > 0,
                "no stale-term record was fenced (seed {})", seed
            );
        }
        prop_assert!(
            r.divergence_discarded >= r.zombie_writes_applied,
            "zombie branch not discarded wholesale (seed {})", seed
        );
        assert_core_invariants("zombie", seed, &r);
    }
}

/// Satellite regression: an out-of-band `mutate_database` write lands
/// in the WAL, replicates, survives a primary crash + failover, and
/// surfaces to the proxies as exactly one recoverable stream gap.
#[test]
fn out_of_band_mutation_survives_crash_and_costs_one_gap() {
    let schema = TableSchema::builder("kv")
        .column("k", ColumnType::Int)
        .column("v", ColumnType::Int)
        .primary_key(&["k"])
        .build()
        .expect("static schema");
    let mut db = Database::new();
    db.create_table(schema).expect("fresh database");
    db.insert_row("kv", vec![Value::Int(1), Value::Int(10)])
        .expect("static row");

    let mut g = HomeGroup::new(
        HomeServer::new(db),
        ReplicationConfig::group(ReplicationMode::Async, 2),
    );
    let pipe = g.register_pipe(0);
    assert_eq!(pipe, 0);

    // The out-of-band write: no Update statement, no invalidation
    // message — a direct master mutation (schema migration, manual
    // repair). It must consume a WAL epoch as a checkpoint record.
    let epoch_before = g.epoch();
    g.primary_mut().mutate_database(|db| {
        db.insert_row("kv", vec![Value::Int(2), Value::Int(20)])
            .expect("fresh key");
    });
    let ack = g.commit(0);
    assert!(ack.acked);
    assert_eq!(g.epoch(), epoch_before + 1, "mutation consumed an epoch");

    // Replicate, then kill the primary before it ever fans out.
    g.tick(10_000);
    g.crash_primary(20_000);
    let mut now = 20_000;
    let fo = loop {
        now += 5_000;
        if let Some(fo) = g.tick(now) {
            break fo;
        }
        assert!(now < 1_000_000, "no promotion");
    };
    assert_eq!(fo.lost_records, 0, "the mutation had replicated");

    // The write survived the crash byte-for-byte.
    let q = scs_sqlkit::Query::bind(
        0,
        std::sync::Arc::new(scs_sqlkit::parse_query("SELECT v FROM kv WHERE k = ?").unwrap()),
        vec![Value::Int(2)],
    )
    .unwrap();
    let res = g.primary().database().execute(&q).expect("valid query");
    assert_eq!(res.rows, vec![vec![Value::Int(20)]]);

    // The proxy stream: the mutation's epoch never produced an
    // invalidation message, and the promotion barrier opened past it —
    // a proxy synced before the mutation sees exactly one gap
    // (epoch_before → barrier) and recovers over it with one flush.
    assert_eq!(fo.barrier_epoch, epoch_before + 2);
}
