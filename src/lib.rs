//! # dssp-scale — facade crate
//!
//! Reproduction of *Simultaneous Scalability and Security for Data-Intensive
//! Web Applications* (Manjhi et al., SIGMOD 2006). This crate re-exports the
//! workspace's sub-crates under stable module names; see each crate for
//! in-depth documentation, and `DESIGN.md` / `EXPERIMENTS.md` at the
//! repository root for the system inventory and the experiment index.
//!
//! * [`sqlkit`] — query/update template language (§2.1 model).
//! * [`storage`] — in-memory relational engine (home-server substrate).
//! * [`crypto`] — deterministic encryption *simulation*.
//! * [`core`] — static analysis: IPM characterization and the
//!   scalability-conscious security design methodology (§3–4).
//! * [`dssp`] — the DSSP prototype: cache + invalidation strategies (§2.2).
//! * [`netsim`] — discrete-event scalability simulator (§5.2 methodology).
//! * [`apps`] — benchmark applications: toystore, auction, bboard, bookstore.
//!
//! ## Example: the methodology in five lines
//!
//! ```
//! use dssp_scale::apps::{analysis_matrix, BenchApp};
//! use dssp_scale::core::{compulsory_exposures, reduce_exposures, SensitivityPolicy};
//!
//! let app = BenchApp::Bookstore.def();
//! let matrix = analysis_matrix(&app); // Step 2a: IPM characterization
//! let policy = SensitivityPolicy::new(app.sensitive_attrs.iter().cloned());
//! let mandated = compulsory_exposures( // Step 1: the data-privacy law
//!     &app.update_templates(), &app.query_templates(), &app.catalog(), &policy);
//! let exposures = reduce_exposures(&matrix, &mandated); // Step 2b: greedy
//! assert_eq!(exposures.encrypted_query_results(), 22); // 20 free + 2 mandated
//! ```

pub use scs_apps as apps;
pub use scs_core as core;
pub use scs_crypto as crypto;
pub use scs_dssp as dssp;
pub use scs_netsim as netsim;
pub use scs_sqlkit as sqlkit;
pub use scs_storage as storage;
